"""Setup shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments whose
setuptools lacks the ``wheel`` package required for PEP 660 editable
installs.
"""

from setuptools import setup

setup()
