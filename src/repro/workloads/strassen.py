"""Strassen matrix-multiplication parallel task graphs (Section IV-C).

One level of Strassen's algorithm multiplies two matrices split into four
blocks each via seven block multiplications:

.. code-block:: text

    M1 = (A11 + A22)(B11 + B22)     M5 = (A11 + A12) B22
    M2 = (A21 + A22) B11            M6 = (A21 - A11)(B11 + B12)
    M3 =  A11 (B12 - B22)           M7 = (A12 - A22)(B21 + B22)
    M4 =  A22 (B21 - B11)

    C11 = M1 + M4 - M5 + M7         C12 = M3 + M5
    C21 = M2 + M4                   C22 = M1 - M2 + M3 + M6

The resulting PTG has a partition source, ten block additions
(S1..S10), seven multiplications (M1..M7), four combinations (C11..C22)
and an assembly sink — 23 tasks over 5 precedence levels.  A recursive
variant replaces each multiplication task with a nested Strassen DAG
(``depth > 1``), used by scalability studies.

Costs follow the block sizes: with a dataset of ``d`` doubles per input
matrix, each block holds ``d/4`` doubles; additions cost ``a * d/4`` FLOP
(stencil pattern), multiplications ``(d/4)^{3/2}`` FLOP (matmul pattern).
The parallelization factor ``alpha`` is drawn per task as usual.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_generator
from ..exceptions import GraphError
from ..graph import PTG, PTGBuilder
from .complexities import (
    ALPHA_MAX,
    A_MAX,
    A_MIN,
    MAX_DATA_SIZE,
    MIN_DATA_SIZE,
)

__all__ = ["generate_strassen", "strassen_task_count"]

#: (multiplication, [operand add-tasks]) structure; indices into the S list.
_MULT_OPERANDS = {
    "M1": ["S1", "S2"],
    "M2": ["S3"],  # uses raw B11
    "M3": ["S4"],  # uses raw A11
    "M4": ["S5"],  # uses raw A22
    "M5": ["S6"],  # uses raw B22
    "M6": ["S7", "S8"],
    "M7": ["S9", "S10"],
}

_COMBINE_TERMS = {
    "C11": ["M1", "M4", "M5", "M7"],
    "C12": ["M3", "M5"],
    "C21": ["M2", "M4"],
    "C22": ["M1", "M2", "M3", "M6"],
}


def strassen_task_count(depth: int = 1) -> int:
    """Tasks of the Strassen PTG with ``depth`` recursion levels.

    ``count(1) = 23``; each extra level replaces every multiplication task
    with a full sub-DAG: ``count(k) = 16 + 7 * count(k-1)``.
    """
    if depth < 1:
        raise GraphError(f"depth must be >= 1, got {depth}")
    count = 23
    for _ in range(depth - 1):
        count = 16 + 7 * count
    return count


def _add_strassen_level(
    b: PTGBuilder,
    prefix: str,
    entry: int,
    d: float,
    depth: int,
    rng: np.random.Generator,
) -> int:
    """Build one Strassen level below ``entry``; returns the sink index."""

    def draw_alpha() -> float:
        return float(rng.uniform(0.0, ALPHA_MAX))

    def draw_a() -> float:
        return float(rng.uniform(A_MIN, A_MAX))

    block_d = max(2.0, d / 4.0)

    adds: dict[str, int] = {}
    for i in range(1, 11):
        name = f"S{i}"
        adds[name] = b.add_task(
            f"{prefix}{name}",
            work=draw_a() * block_d,
            alpha=draw_alpha(),
            data_size=block_d,
            kind="strassen-add",
        )
        b.add_edge(entry, adds[name])

    mults: dict[str, int] = {}
    for mname, operands in _MULT_OPERANDS.items():
        if depth > 1:
            # recursive variant: the multiplication is itself a Strassen DAG
            head = b.add_task(
                f"{prefix}{mname}-split",
                work=draw_a() * block_d,
                alpha=draw_alpha(),
                data_size=block_d,
                kind="strassen-split",
            )
            for sname in operands:
                b.add_edge(adds[sname], head)
            b.add_edge(entry, head)
            tail = _add_strassen_level(
                b, f"{prefix}{mname}.", head, block_d, depth - 1, rng
            )
            mults[mname] = tail
        else:
            mults[mname] = b.add_task(
                f"{prefix}{mname}",
                work=block_d**1.5,
                alpha=draw_alpha(),
                data_size=block_d,
                kind="strassen-mult",
            )
            for sname in operands:
                b.add_edge(adds[sname], mults[mname])
            # multiplications that consume a raw input block depend on the
            # partition task directly
            if len(operands) < 2:
                b.add_edge(entry, mults[mname])

    combines: dict[str, int] = {}
    for cname, terms in _COMBINE_TERMS.items():
        combines[cname] = b.add_task(
            f"{prefix}{cname}",
            work=draw_a() * block_d,
            alpha=draw_alpha(),
            data_size=block_d,
            kind="strassen-combine",
        )
        for mname in terms:
            b.add_edge(mults[mname], combines[cname])

    sink = b.add_task(
        f"{prefix}assemble",
        work=draw_a() * d,
        alpha=draw_alpha(),
        data_size=d,
        kind="strassen-assemble",
    )
    for cname in combines:
        b.add_edge(combines[cname], sink)
    return sink


def generate_strassen(
    rng: np.random.Generator | int | None = None,
    depth: int = 1,
    data_size: float | None = None,
    name: str | None = None,
) -> PTG:
    """Generate one Strassen PTG with random task complexities.

    Parameters
    ----------
    rng:
        Random source for dataset size, iteration factors and alphas.
    depth:
        Recursion depth; the paper's evaluation uses one level (23 tasks).
    data_size:
        Total input dataset in doubles; drawn log-uniformly up to the
        paper's 125e6 bound when omitted.
    """
    if depth < 1:
        raise GraphError(f"depth must be >= 1, got {depth}")
    rng = ensure_generator(rng, "workloads", "strassen")
    if data_size is None:
        data_size = float(
            np.exp(
                rng.uniform(
                    np.log(MIN_DATA_SIZE), np.log(MAX_DATA_SIZE)
                )
            )
        )
    b = PTGBuilder(name or f"strassen-d{depth}")
    a0 = float(rng.uniform(A_MIN, A_MAX))
    entry = b.add_task(
        "partition",
        work=a0 * data_size,
        alpha=float(rng.uniform(0.0, ALPHA_MAX)),
        data_size=data_size,
        kind="strassen-split",
    )
    _add_strassen_level(b, "", entry, data_size, depth, rng)
    ptg = b.build()
    if depth == 1:
        assert ptg.num_tasks == strassen_task_count(1)
    return ptg
