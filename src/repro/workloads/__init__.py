"""Workload generators — the paper's application PTGs (Section IV-C).

Public API:

* :func:`generate_fft` — FFT PTGs (sizes 2/4/8/16 → 5/15/39/95 tasks);
* :func:`generate_strassen` — Strassen matrix-multiplication PTGs;
* :func:`generate_daggen`, :class:`DaggenParams` — DAGGEN-style random
  layered/irregular PTGs;
* :mod:`~repro.workloads.complexities` — the a*d / a*d*log d / d^1.5 task
  cost patterns;
* :func:`paper_corpus` and per-class corpus builders — the full 932-PTG
  evaluation set.
"""

from .complexities import (
    ALPHA_MAX,
    A_MAX,
    A_MIN,
    MAX_DATA_SIZE,
    MIN_DATA_SIZE,
    ComplexityPattern,
    TaskSpec,
    flop_count,
    sample_task_spec,
    sample_task_specs,
)
from .corpus import (
    Corpus,
    fft_corpus,
    irregular_corpus,
    layered_corpus,
    paper_corpus,
    strassen_corpus,
)
from .daggen import DaggenParams, generate_daggen
from .fft import FFT_LEVELS, fft_task_count, generate_fft
from .strassen import generate_strassen, strassen_task_count
from .workflows import generate_montage, generate_pipeline_ensemble

__all__ = [
    "ComplexityPattern",
    "TaskSpec",
    "flop_count",
    "sample_task_spec",
    "sample_task_specs",
    "MAX_DATA_SIZE",
    "MIN_DATA_SIZE",
    "ALPHA_MAX",
    "A_MIN",
    "A_MAX",
    "FFT_LEVELS",
    "fft_task_count",
    "generate_fft",
    "generate_strassen",
    "strassen_task_count",
    "DaggenParams",
    "generate_daggen",
    "generate_montage",
    "generate_pipeline_ensemble",
    "Corpus",
    "paper_corpus",
    "fft_corpus",
    "strassen_corpus",
    "layered_corpus",
    "irregular_corpus",
]
