"""FFT parallel task graphs (paper Section IV-C).

The Fast Fourier Transform PTG (Hall et al.; Cormen et al.) of input size
``n`` (a power of two) consists of two parts:

1. a binary *recursive-call tree* with ``2n - 1`` tasks: the source splits
   the problem, each internal node splits further, down to ``n`` leaves;
2. ``log2(n)`` *butterfly layers* of ``n`` tasks each; butterfly stage
   ``k`` (1-based) node ``j`` depends on nodes ``j`` and ``j XOR 2^{k-1}``
   of the previous stage (the first stage reads from the tree leaves).

Total task count: ``(2n - 1) + n log2(n)``, matching the paper exactly —
"FFT PTGs with 2, 4, 8, and 16 levels … lead to 5, 15, 39, or 95 tasks":

>>> from repro.workloads.fft import fft_task_count
>>> [fft_task_count(n) for n in (2, 4, 8, 16)]
[5, 15, 39, 95]

Each task receives a random dataset size and parallelization factor from
:mod:`repro.workloads.complexities`, so two generated FFT PTGs share a
shape but differ in task complexities, exactly as the paper's DAG
generator does.
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_generator
from ..exceptions import GraphError
from ..graph import PTG, PTGBuilder
from .complexities import sample_task_spec

__all__ = ["fft_task_count", "generate_fft", "FFT_LEVELS"]

#: The FFT sizes used in the paper's evaluation.
FFT_LEVELS = (2, 4, 8, 16)


def _check_size(n: int) -> int:
    n = int(n)
    if n < 2 or (n & (n - 1)) != 0:
        raise GraphError(
            f"FFT size must be a power of two >= 2, got {n}"
        )
    return n


def fft_task_count(n: int) -> int:
    """Number of tasks of the FFT PTG of size ``n``: (2n-1) + n*log2(n)."""
    n = _check_size(n)
    return (2 * n - 1) + n * int(np.log2(n))


def generate_fft(
    n: int,
    rng: np.random.Generator | int | None = None,
    name: str | None = None,
) -> PTG:
    """Generate one FFT PTG of size ``n`` with random task complexities.

    Parameters
    ----------
    n:
        FFT input size (power of two); the paper calls this the number of
        "levels" (2, 4, 8 or 16).
    rng:
        Random source for the per-task complexity draws.
    name:
        Graph label; defaults to ``fft-<n>``.
    """
    n = _check_size(n)
    rng = ensure_generator(rng, "workloads", "fft")
    stages = int(np.log2(n))
    b = PTGBuilder(name or f"fft-{n}")

    def add(node_name: str, kind: str) -> int:
        spec = sample_task_spec(rng)
        return b.add_task(
            node_name,
            work=spec.work,
            alpha=spec.alpha,
            data_size=spec.data_size,
            kind=kind,
        )

    # --- recursive-call tree: level r has 2^r nodes, r = 0..stages -------
    tree: list[list[int]] = []
    for r in range(stages + 1):
        row = [
            add(f"split-{r}-{j}", "fft-split") for j in range(2**r)
        ]
        tree.append(row)
        if r > 0:
            for j, node in enumerate(row):
                b.add_edge(tree[r - 1][j // 2], node)

    # --- butterfly stages: each of size n --------------------------------
    prev = tree[stages]  # the n leaves feed the first butterfly stage
    for k in range(1, stages + 1):
        stride = 2 ** (k - 1)
        row = [
            add(f"bfly-{k}-{j}", "fft-butterfly") for j in range(n)
        ]
        for j, node in enumerate(row):
            b.add_edge(prev[j], node)
            b.add_edge(prev[j ^ stride], node)
        prev = row

    ptg = b.build()
    assert ptg.num_tasks == fft_task_count(n)
    return ptg
