"""Scientific-workflow-shaped PTGs.

The paper's introduction motivates PTG scheduling with scientific
workflows ("parallel task graphs arise when parallel programs are
combined to larger applications, e.g., scientific workflows").  Its
evaluation uses FFT/Strassen/DAGGEN graphs; this module adds generators
for the two canonical workflow shapes from the workflow-scheduling
literature, so downstream users can evaluate schedulers on
realistically-shaped applications:

* :func:`generate_montage` — a Montage-like mosaicking workflow:
  a wide fan of per-tile projection tasks, a quadratic-ish layer of
  pairwise background-fit tasks, a concentration phase (model fitting),
  a second fan of background corrections, and a final co-addition
  reduce.  Shape: wide → wider → narrow → wide → 1.
* :func:`generate_pipeline_ensemble` — an ensemble of independent
  k-stage pipelines with a common setup source and a final aggregation
  sink (parameter sweeps, uncertainty quantification).  Shape: 1 →
  m parallel chains of depth k → 1.

Task complexities follow the paper's sampling rules
(:mod:`repro.workloads.complexities`).
"""

from __future__ import annotations

import numpy as np

from .._rng import ensure_generator
from ..exceptions import GraphError
from ..graph import PTG, PTGBuilder
from .complexities import ComplexityPattern, sample_task_spec

__all__ = ["generate_montage", "generate_pipeline_ensemble"]


def _add(b: PTGBuilder, rng, name: str, kind: str, pattern=None) -> int:
    spec = sample_task_spec(rng, pattern=pattern)
    return b.add_task(
        name,
        work=spec.work,
        alpha=spec.alpha,
        data_size=spec.data_size,
        kind=kind,
    )


def generate_montage(
    tiles: int = 8,
    rng: np.random.Generator | int | None = None,
    name: str | None = None,
) -> PTG:
    """A Montage-like mosaicking workflow over ``tiles`` input tiles.

    Structure (per the Montage application DAG): ``tiles`` projection
    tasks feed overlap-difference tasks (one per adjacent tile pair),
    which concentrate into a single background-model fit; per-tile
    background corrections then fan out again and a final co-addition
    collects everything.  Total tasks: ``3 * tiles + 1``.
    """
    if tiles < 2:
        raise GraphError(f"montage needs >= 2 tiles, got {tiles}")
    rng = ensure_generator(rng, "workloads", "montage")
    b = PTGBuilder(name or f"montage-{tiles}")

    project = [
        _add(b, rng, f"mProject-{i}", "montage-project",
             ComplexityPattern.STENCIL)
        for i in range(tiles)
    ]
    # pairwise difference of adjacent tiles (ring of overlaps)
    diffs = []
    for i in range(tiles - 1):
        d = _add(b, rng, f"mDiff-{i}", "montage-diff",
                 ComplexityPattern.STENCIL)
        b.add_edge(project[i], d)
        b.add_edge(project[i + 1], d)
        diffs.append(d)
    fit = _add(b, rng, "mBgModel", "montage-fit",
               ComplexityPattern.SORT)
    for d in diffs:
        b.add_edge(d, fit)
    corrections = []
    for i in range(tiles):
        c = _add(b, rng, f"mBackground-{i}", "montage-correct",
                 ComplexityPattern.STENCIL)
        b.add_edge(fit, c)
        b.add_edge(project[i], c)
        corrections.append(c)
    add = _add(b, rng, "mAdd", "montage-coadd",
               ComplexityPattern.MATMUL)
    for c in corrections:
        b.add_edge(c, add)
    return b.build()


def generate_pipeline_ensemble(
    pipelines: int = 6,
    depth: int = 4,
    rng: np.random.Generator | int | None = None,
    name: str | None = None,
) -> PTG:
    """An ensemble of ``pipelines`` independent ``depth``-stage chains.

    One setup source fans out to every pipeline; a final aggregation
    task joins them.  Total tasks: ``pipelines * depth + 2``.
    """
    if pipelines < 1:
        raise GraphError(
            f"need >= 1 pipeline, got {pipelines}"
        )
    if depth < 1:
        raise GraphError(f"depth must be >= 1, got {depth}")
    rng = ensure_generator(rng, "workloads", "ensemble")
    b = PTGBuilder(name or f"ensemble-{pipelines}x{depth}")
    setup = _add(b, rng, "setup", "ensemble-setup")
    ends = []
    for p in range(pipelines):
        prev = setup
        for s in range(depth):
            t = _add(b, rng, f"p{p}-s{s}", "ensemble-stage")
            b.add_edge(prev, t)
            prev = t
        ends.append(prev)
    agg = _add(b, rng, "aggregate", "ensemble-aggregate")
    for e in ends:
        b.add_edge(e, agg)
    return b.build()
