"""DAGGEN-style random parallel task graphs (paper Section IV-C).

The paper generates synthetic PTGs with Suter's DAGGEN tool, parameterized
by four shape controls.  DAGGEN itself is an external C program; we
reimplement its generation process (documented in DESIGN.md as a
substitution) with the semantics the paper describes:

``width`` (0, 1]
    Maximum task parallelism: "a small value leads to a chain of tasks and
    large values lead to fork-join graphs".  We draw the mean number of
    tasks per precedence level as ``max(1, round(width * n / levels_ref))``
    using DAGGEN's convention that the expected level width is
    ``width * sqrt(n)``.
``regularity`` [0, 1]
    Uniformity of the number of tasks per level: per-level counts are
    perturbed around the mean by up to ``(1 - regularity) * 100 %``.
``density`` [0, 1]
    Number of edges between two levels: each task draws its number of
    parents as ``1 + Binomial(w_prev - 1, density)`` where ``w_prev`` is
    the size of the eligible parent pool.
``jump`` {0, 1, 2, 4}
    Maximum number of levels an edge may *skip*.  ``jump = 0`` produces
    **layered** graphs (edges only between adjacent levels and similar
    task cost per layer); ``jump >= 1`` produces **irregular** graphs
    whose edges may span up to ``jump + 1`` levels.

Every task receives a random complexity from
:mod:`repro.workloads.complexities`.  For layered graphs the paper
additionally requires "the number of operations of tasks in one layer is
similar": we draw one dataset size per layer and jitter it by ±10 % per
task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_generator
from ..exceptions import GraphError
from ..graph import PTG, PTGBuilder
from .complexities import (
    ComplexityPattern,
    MAX_DATA_SIZE,
    MIN_DATA_SIZE,
    sample_task_spec,
)

__all__ = ["DaggenParams", "generate_daggen"]


@dataclass(frozen=True)
class DaggenParams:
    """Shape parameters for one random PTG (see module docstring)."""

    num_tasks: int
    width: float = 0.5
    regularity: float = 0.5
    density: float = 0.5
    jump: int = 0

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise GraphError(
                f"num_tasks must be >= 1, got {self.num_tasks}"
            )
        if not (0.0 < self.width <= 1.0):
            raise GraphError(f"width must lie in (0, 1], got {self.width}")
        if not (0.0 <= self.regularity <= 1.0):
            raise GraphError(
                f"regularity must lie in [0, 1], got {self.regularity}"
            )
        if not (0.0 <= self.density <= 1.0):
            raise GraphError(
                f"density must lie in [0, 1], got {self.density}"
            )
        if self.jump < 0:
            raise GraphError(f"jump must be >= 0, got {self.jump}")

    @property
    def layered(self) -> bool:
        """True when edges may only connect adjacent levels."""
        return self.jump == 0

    def label(self) -> str:
        """Compact textual form used in graph names and reports."""
        return (
            f"n{self.num_tasks}-w{self.width:g}-r{self.regularity:g}"
            f"-d{self.density:g}-j{self.jump}"
        )


def _level_sizes(
    params: DaggenParams, rng: np.random.Generator
) -> list[int]:
    """Partition ``num_tasks`` into per-level counts.

    Mean level width follows DAGGEN's ``width * sqrt(n)`` convention,
    perturbed per level by the regularity parameter.
    """
    n = params.num_tasks
    mean_width = max(1.0, params.width * np.sqrt(n))
    spread = 1.0 - params.regularity
    sizes: list[int] = []
    remaining = n
    while remaining > 0:
        jitter = rng.uniform(1.0 - spread, 1.0 + spread)
        w = int(round(mean_width * jitter))
        w = max(1, min(w, remaining))
        sizes.append(w)
        remaining -= w
    if len(sizes) == 1 and n > 1:
        # degenerate single-level graph: force at least two levels so the
        # graph has dependencies at all
        head = sizes[0] // 2
        sizes = [head, sizes[0] - head]
    return sizes


def generate_daggen(
    params: DaggenParams,
    rng: np.random.Generator | int | None = None,
    name: str | None = None,
) -> PTG:
    """Generate one random PTG according to ``params``.

    Guarantees: exactly ``params.num_tasks`` tasks; every non-first-level
    task has at least one parent (the graph is a single connected DAG per
    level chain); for ``jump = 0`` every edge connects adjacent levels.
    """
    rng = ensure_generator(rng, "workloads", "daggen")
    sizes = _level_sizes(params, rng)
    b = PTGBuilder(name or f"daggen-{params.label()}")

    levels: list[list[int]] = []
    for li, size in enumerate(sizes):
        if params.layered:
            # one dataset size per layer, jittered +-10% per task, so all
            # tasks of a layer have similar cost (paper's layered property)
            layer_d = float(
                np.exp(
                    rng.uniform(
                        np.log(MIN_DATA_SIZE), np.log(MAX_DATA_SIZE)
                    )
                )
            )
            layer_pattern = rng.choice(list(ComplexityPattern))
        row: list[int] = []
        for ti in range(size):
            if params.layered:
                spec = sample_task_spec(rng, pattern=layer_pattern)
                d = layer_d * float(rng.uniform(0.9, 1.1))
                spec = type(spec)(
                    pattern=spec.pattern,
                    data_size=d,
                    a=spec.a,
                    alpha=spec.alpha,
                )
            else:
                spec = sample_task_spec(rng)
            row.append(
                b.add_task(
                    f"t{li}-{ti}",
                    work=spec.work,
                    alpha=spec.alpha,
                    data_size=spec.data_size,
                    kind=spec.kind,
                )
            )
        levels.append(row)

    # --- edges ------------------------------------------------------------
    max_span = 1 + params.jump  # how many levels an edge may cross
    has_child: set[int] = set()
    for li in range(1, len(levels)):
        lo = max(0, li - max_span)
        pool = [v for lj in range(lo, li) for v in levels[lj]]
        for v in levels[li]:
            n_parents = 1 + int(
                rng.binomial(max(0, len(pool) - 1), params.density)
            )
            n_parents = min(n_parents, len(pool))
            chosen = rng.choice(
                len(pool), size=n_parents, replace=False
            )
            for c in set(int(x) for x in chosen):
                b.add_edge(pool[c], v)
                has_child.add(pool[c])
        # Keep the level structure honest: every task of the previous
        # level must have at least one child, otherwise it would be a
        # spurious extra sink.  (DAGGEN enforces the same property.)
        for u in levels[li - 1]:
            if u not in has_child:
                v = levels[li][int(rng.integers(len(levels[li])))]
                b.add_edge(u, v)
                has_child.add(u)

    return b.build()
