"""Task-complexity sampling (paper Section IV-C, "Choosing Task
Complexities").

A task operates on a dataset of ``d`` doubles (8 bytes each), e.g. a
``sqrt(d) x sqrt(d)`` matrix.  All processors have at least 1 GB of
memory, which bounds ``d`` by 125e6.  The FLOP count of a task follows one
of three computational patterns:

1. ``a * d``            — stencil computation,
2. ``a * d * log2(d)``  — sorting an array,
3. ``d^{3/2}``          — multiplying two ``sqrt(d) x sqrt(d)`` matrices,

where ``a`` is drawn uniformly from ``[2^6, 2^9]`` to model multiple
iterations.  The non-parallelizable fraction ``alpha`` is drawn uniformly
from ``[0, 0.25]`` ("very scalable tasks").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from .._rng import ensure_generator

__all__ = [
    "ComplexityPattern",
    "TaskSpec",
    "MAX_DATA_SIZE",
    "ALPHA_MAX",
    "A_MIN",
    "A_MAX",
    "flop_count",
    "sample_task_spec",
    "sample_task_specs",
]

#: Upper bound on the dataset size in doubles (1 GB of 8-byte doubles).
MAX_DATA_SIZE = 125e6

#: Smallest dataset the generators draw; keeps log2(d) well-defined and
#: tasks non-trivial.  (The paper only specifies the upper bound.)
MIN_DATA_SIZE = 1e4

#: Upper bound of the uniform alpha distribution ("very scalable tasks").
ALPHA_MAX = 0.25

#: Iteration-count multiplier range [2^6, 2^9].
A_MIN = 2.0**6
A_MAX = 2.0**9


class ComplexityPattern(enum.Enum):
    """The three computational patterns of Section IV-C."""

    STENCIL = "stencil"  # a * d
    SORT = "sort"  # a * d * log2(d)
    MATMUL = "matmul"  # d^{3/2}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def flop_count(pattern: ComplexityPattern, d: float, a: float) -> float:
    """FLOP count for dataset size ``d`` under ``pattern``.

    ``a`` is ignored for the MATMUL pattern (the paper applies the
    iteration factor only to the first two patterns; ``d^{3/2}`` is used
    as-is).
    """
    if d <= 1:
        raise ValueError(f"data size must be > 1, got {d}")
    if pattern is ComplexityPattern.STENCIL:
        return a * d
    if pattern is ComplexityPattern.SORT:
        return a * d * math.log2(d)
    if pattern is ComplexityPattern.MATMUL:
        return d**1.5
    raise ValueError(f"unknown pattern {pattern!r}")  # pragma: no cover


@dataclass(frozen=True)
class TaskSpec:
    """Sampled cost parameters for one task."""

    pattern: ComplexityPattern
    data_size: float
    a: float
    alpha: float

    @property
    def work(self) -> float:
        """FLOP count implied by the sampled parameters."""
        return flop_count(self.pattern, self.data_size, self.a)

    @property
    def kind(self) -> str:
        """Task kind label carried into the PTG."""
        return self.pattern.value


def sample_task_spec(
    rng: np.random.Generator | int | None = None,
    pattern: ComplexityPattern | None = None,
    max_data_size: float = MAX_DATA_SIZE,
    min_data_size: float = MIN_DATA_SIZE,
) -> TaskSpec:
    """Draw one task specification.

    ``pattern=None`` picks one of the three patterns uniformly.  ``d`` is
    drawn log-uniformly between the bounds (datasets span four orders of
    magnitude; a linear draw would make almost every task huge), ``a``
    uniformly from ``[2^6, 2^9]`` and ``alpha`` uniformly from
    ``[0, 0.25]``.
    """
    rng = ensure_generator(rng, "workloads", "complexities")
    if pattern is None:
        pattern = rng.choice(list(ComplexityPattern))
    d = float(
        np.exp(
            rng.uniform(np.log(min_data_size), np.log(max_data_size))
        )
    )
    a = float(rng.uniform(A_MIN, A_MAX))
    alpha = float(rng.uniform(0.0, ALPHA_MAX))
    return TaskSpec(pattern=pattern, data_size=d, a=a, alpha=alpha)


def sample_task_specs(
    n: int,
    rng: np.random.Generator | int | None = None,
    pattern: ComplexityPattern | None = None,
) -> list[TaskSpec]:
    """Draw ``n`` independent task specifications."""
    rng = ensure_generator(rng, "workloads", "complexities")
    return [sample_task_spec(rng, pattern=pattern) for _ in range(n)]
