"""The paper's experimental PTG corpora (Section IV-C).

The evaluation uses four PTG classes:

* **FFT** — 400 graphs, 100 each of sizes 2/4/8/16 (5/15/39/95 tasks);
* **Strassen** — 100 graphs (23 tasks each);
* **layered** — 108 random DAGGEN graphs: sizes {20, 50, 100} x width
  {0.2, 0.5, 0.8} x regularity {0.2, 0.8} x density {0.2, 0.8} x jump {0},
  3 instances per combination (3*3*2*2*1*3 = 108);
* **irregular** — 324 random DAGGEN graphs: the same grid with jump
  {1, 2, 4}, 3 instances per combination (3*3*2*2*3*3 = 324).

``scale`` shrinks every corpus proportionally for test/CI runs while
preserving the parameter coverage (at ``scale < 1`` at least one instance
per parameter combination survives).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import ensure_generator
from ..graph import PTG
from .daggen import DaggenParams, generate_daggen
from .fft import FFT_LEVELS, generate_fft
from .strassen import generate_strassen

__all__ = [
    "Corpus",
    "fft_corpus",
    "strassen_corpus",
    "layered_corpus",
    "irregular_corpus",
    "paper_corpus",
    "SIZES",
    "WIDTHS",
    "REGULARITIES",
    "DENSITIES",
    "LAYERED_JUMPS",
    "IRREGULAR_JUMPS",
]

SIZES = (20, 50, 100)
WIDTHS = (0.2, 0.5, 0.8)
REGULARITIES = (0.2, 0.8)
DENSITIES = (0.2, 0.8)
LAYERED_JUMPS = (0,)
IRREGULAR_JUMPS = (1, 2, 4)
_INSTANCES_PER_COMBO = 3


@dataclass
class Corpus:
    """A named collection of PTGs grouped by class."""

    fft: list[PTG] = field(default_factory=list)
    strassen: list[PTG] = field(default_factory=list)
    layered: list[PTG] = field(default_factory=list)
    irregular: list[PTG] = field(default_factory=list)

    def by_class(self, cls: str) -> list[PTG]:
        """The PTGs of one class (``fft``/``strassen``/``layered``/``irregular``)."""
        try:
            return getattr(self, cls)
        except AttributeError:
            raise KeyError(f"unknown PTG class {cls!r}") from None

    @property
    def classes(self) -> tuple[str, ...]:
        """All class labels, in the paper's figure order."""
        return ("fft", "strassen", "layered", "irregular")

    def __len__(self) -> int:
        return (
            len(self.fft)
            + len(self.strassen)
            + len(self.layered)
            + len(self.irregular)
        )

    def summary(self) -> str:
        """One-line size description."""
        return (
            f"Corpus(fft={len(self.fft)}, strassen={len(self.strassen)}, "
            f"layered={len(self.layered)}, irregular={len(self.irregular)})"
        )


def _count(full: int, scale: float) -> int:
    return max(1, int(round(full * scale)))


def fft_corpus(
    rng: np.random.Generator | int | None = None, scale: float = 1.0
) -> list[PTG]:
    """FFT graphs: ``scale * 100`` instances per size in {2, 4, 8, 16}."""
    rng = ensure_generator(rng, "corpus", "fft")
    per_size = _count(100, scale)
    out: list[PTG] = []
    for n in FFT_LEVELS:
        for i in range(per_size):
            out.append(generate_fft(n, rng=rng, name=f"fft-{n}-{i}"))
    return out


def strassen_corpus(
    rng: np.random.Generator | int | None = None, scale: float = 1.0
) -> list[PTG]:
    """Strassen graphs: ``scale * 100`` instances."""
    rng = ensure_generator(rng, "corpus", "strassen")
    return [
        generate_strassen(rng=rng, name=f"strassen-{i}")
        for i in range(_count(100, scale))
    ]


def _daggen_corpus(
    jumps: tuple[int, ...],
    label: str,
    rng: np.random.Generator,
    scale: float,
    sizes: tuple[int, ...] = SIZES,
) -> list[PTG]:
    instances = _count(_INSTANCES_PER_COMBO, scale)
    out: list[PTG] = []
    for n in sizes:
        for w in WIDTHS:
            for r in REGULARITIES:
                for d in DENSITIES:
                    for j in jumps:
                        params = DaggenParams(
                            num_tasks=n,
                            width=w,
                            regularity=r,
                            density=d,
                            jump=j,
                        )
                        for i in range(instances):
                            out.append(
                                generate_daggen(
                                    params,
                                    rng=rng,
                                    name=(
                                        f"{label}-{params.label()}-{i}"
                                    ),
                                )
                            )
    return out


def layered_corpus(
    rng: np.random.Generator | int | None = None,
    scale: float = 1.0,
    sizes: tuple[int, ...] = SIZES,
) -> list[PTG]:
    """Layered random graphs (jump = 0); 108 instances at full scale."""
    rng = ensure_generator(rng, "corpus", "layered")
    return _daggen_corpus(LAYERED_JUMPS, "layered", rng, scale, sizes)


def irregular_corpus(
    rng: np.random.Generator | int | None = None,
    scale: float = 1.0,
    sizes: tuple[int, ...] = SIZES,
) -> list[PTG]:
    """Irregular random graphs (jump in {1, 2, 4}); 324 at full scale."""
    rng = ensure_generator(rng, "corpus", "irregular")
    return _daggen_corpus(IRREGULAR_JUMPS, "irregular", rng, scale, sizes)


def paper_corpus(
    seed: int | None = None, scale: float = 1.0
) -> Corpus:
    """The full evaluation corpus of the paper (932 PTGs at scale 1).

    ``scale < 1`` shrinks each class proportionally, preserving coverage
    of every parameter combination — used by tests and quick benchmark
    runs.
    """
    return Corpus(
        fft=fft_corpus(ensure_generator(seed, "corpus", "fft"), scale),
        strassen=strassen_corpus(
            ensure_generator(seed, "corpus", "strassen"), scale
        ),
        layered=layered_corpus(
            ensure_generator(seed, "corpus", "layered"), scale
        ),
        irregular=irregular_corpus(
            ensure_generator(seed, "corpus", "irregular"), scale
        ),
    )
