"""Deterministic chaos injection for the fitness-evaluation engine.

Two attack surfaces, matching the two layers of the evaluation stack:

* :class:`ChaosEvaluator` wraps a built evaluator (serial, pool or
  memoized) in the *driver* process and injects faults on a per-batch
  schedule (:class:`ChaosPlan`): kill a live pool worker, delay the
  dispatch, raise an exception, corrupt a returned fitness to NaN, or
  trip a stop event to simulate an operator interrupt.

* Picklable fault hooks (:class:`FlakyChunkFault`,
  :class:`WorkerKillFault`, :class:`AlwaysFailFault`,
  :class:`SleepFault`) ride into pool *worker* processes via
  :class:`~repro.core.evaluator.ProcessPoolEvaluator`'s ``fault_hook``
  parameter and detonate before a chunk is evaluated.  Cross-process
  fault counting uses ``O_CREAT | O_EXCL`` marker files, the only
  atomic coordination primitive that survives worker restarts.

Everything is deterministic: faults fire at planned batch/chunk
indices, never at random moments, so a chaos test reproduces exactly.
Batch indices in an EMTS run: batch 0 evaluates the heuristic seeds,
batch 1 the initial population, batch ``k >= 2`` the offspring of
generation ``k - 1``.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.evaluator import FitnessEvaluator, ProcessPoolEvaluator

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosEvaluator",
    "FlakyChunkFault",
    "WorkerKillFault",
    "ProcessorCrashFault",
    "AlwaysFailFault",
    "SleepFault",
    "kill_one_worker",
    "sample_indices",
]


class ChaosError(RuntimeError):
    """The exception type raised by every injected fault.

    A distinct type so tests can assert that a propagated failure is
    the *injected* one and not collateral damage.
    """


def sample_indices(
    rng: np.random.Generator, n: int, rate: float
) -> frozenset:
    """Independently select each index in ``range(n)`` with ``rate``.

    The shared sampling primitive behind :meth:`ChaosPlan.sampled` and
    :meth:`repro.online.FaultPlan.sampled`: one uniform draw per index,
    kept when it falls below ``rate``.  A rate of zero consumes *no*
    randomness, so adding a new fault type to a plan never perturbs the
    draws of the existing ones.
    """
    if rate <= 0.0:
        return frozenset()
    draws = rng.random(n)
    return frozenset(int(i) for i in np.nonzero(draws < rate)[0])


def _find_pool(evaluator) -> ProcessPoolEvaluator | None:
    """Locate the ProcessPoolEvaluator inside a wrapped evaluator stack."""
    seen: set[int] = set()
    obj = evaluator
    while obj is not None and id(obj) not in seen:
        seen.add(id(obj))
        if isinstance(obj, ProcessPoolEvaluator):
            return obj
        obj = getattr(obj, "inner", None)
    return None


def kill_one_worker(evaluator, timeout: float = 10.0) -> int | None:
    """SIGKILL one live worker of the evaluator's process pool.

    Walks ``.inner`` wrappers to find the
    :class:`~repro.core.evaluator.ProcessPoolEvaluator`, starts its pool
    if necessary, and kills the first worker process.  Returns the
    killed PID, or ``None`` when the stack contains no pool (serial
    evaluators have no workers to kill — a no-op by design, so one
    chaos plan runs unchanged against every backend).

    Blocks (up to ``timeout`` seconds) until the executor has *noticed*
    the death and flagged itself broken.  Without this wait the fault
    is nondeterministic: a surviving worker can drain the next batch
    before the pool is marked broken, and no recovery happens at all.
    """
    pool = _find_pool(evaluator)
    if pool is None:
        return None
    executor = pool._ensure_executor()
    processes = list(getattr(executor, "_processes", {}).values())
    if not processes:
        return None
    victim = processes[0]
    os.kill(victim.pid, signal.SIGKILL)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if getattr(executor, "_broken", True):
            break
        time.sleep(0.005)
    return victim.pid


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic fault schedule, keyed by evaluation-batch index.

    Attributes
    ----------
    kill_batches:
        Before dispatching these batches, SIGKILL one pool worker
        (no-op for serial backends).
    delay_batches:
        Sleep ``delay_seconds`` before dispatching these batches.
    raise_batches:
        Raise :class:`ChaosError` instead of dispatching these batches.
    nan_batches:
        Corrupt the first fitness value of these batches to NaN after
        evaluation (models a poisoned result reaching the driver).
    corrupt_batches:
        Multiply the first *finite* fitness value of these batches by
        ``corrupt_factor`` after evaluation — a silently wrong makespan,
        the exact failure mode a miscompiled or bit-flipped scheduling
        kernel would produce.  Undetectable without differential
        verification (the value stays plausible), which is what
        :class:`repro.verify.VerifyingEvaluator` exists to catch.
    corrupt_factor:
        Multiplier applied by ``corrupt_batches`` (close to 1.0 on
        purpose: a *near*-correct value is the hardest corruption).
    delay_seconds:
        Length of each injected delay.
    straggler_batches:
        Sleep ``straggler_seconds`` *after* evaluating these batches —
        the results are correct but arrive late, a straggling worker
        rather than a slow dispatch.  Together with ``delay_batches``
        this brackets a batch's latency from both sides.
    straggler_seconds:
        Length of each injected straggler stall.
    stop_after_batch:
        After completing this batch index, set the evaluator's stop
        event — simulates an operator interrupt at a deterministic
        point of the run.
    """

    kill_batches: frozenset = frozenset()
    delay_batches: frozenset = frozenset()
    raise_batches: frozenset = frozenset()
    nan_batches: frozenset = frozenset()
    corrupt_batches: frozenset = frozenset()
    corrupt_factor: float = 1.01
    delay_seconds: float = 0.01
    straggler_batches: frozenset = frozenset()
    straggler_seconds: float = 0.01
    stop_after_batch: int | None = None

    @classmethod
    def sampled(
        cls,
        rng: np.random.Generator | int,
        num_batches: int,
        kill_rate: float = 0.0,
        delay_rate: float = 0.0,
        raise_rate: float = 0.0,
        nan_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        corrupt_factor: float = 1.01,
        delay_seconds: float = 0.01,
        straggler_rate: float = 0.0,
        straggler_seconds: float = 0.01,
    ) -> "ChaosPlan":
        """Draw a random (but seed-reproducible) plan.

        Each batch index in ``range(num_batches)`` is independently
        assigned each fault type with the given rate.  Pass an integer
        seed to make the plan a pure function of the seed.  Zero-rate
        fault types consume no randomness, so a plan sampled before the
        straggler fault existed reproduces unchanged.
        """
        gen = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        return cls(
            kill_batches=sample_indices(gen, num_batches, kill_rate),
            delay_batches=sample_indices(gen, num_batches, delay_rate),
            raise_batches=sample_indices(gen, num_batches, raise_rate),
            nan_batches=sample_indices(gen, num_batches, nan_rate),
            corrupt_batches=sample_indices(
                gen, num_batches, corrupt_rate
            ),
            corrupt_factor=corrupt_factor,
            delay_seconds=delay_seconds,
            straggler_batches=sample_indices(
                gen, num_batches, straggler_rate
            ),
            straggler_seconds=straggler_seconds,
        )


@dataclass
class ChaosEvaluator:
    """Wrap a fitness evaluator and execute a :class:`ChaosPlan`.

    Implements the same interface as the wrapped evaluator (``evaluate``,
    ``genome_key``, ``stats``, ``close``) so it drops into
    :meth:`repro.core.emts.EMTS.schedule` via ``evaluator_wrapper`` or
    anywhere a :class:`~repro.core.evaluator.FitnessEvaluator` goes.
    Counts batches in ``batches_seen`` and faults actually fired in
    ``faults_injected``.
    """

    inner: FitnessEvaluator
    plan: ChaosPlan = field(default_factory=ChaosPlan)
    stop_event: object | None = None
    batches_seen: int = 0
    faults_injected: int = 0

    @property
    def stats(self):
        """The wrapped evaluator's counters (chaos adds none of its own)."""
        return self.inner.stats

    def genome_key(self, genome: np.ndarray) -> bytes:
        """Delegate cache-key computation to the wrapped evaluator."""
        return self.inner.genome_key(genome)

    def _pre_batch(self) -> int:
        """Fire dispatch-side faults; returns this batch's plan index."""
        index = self.batches_seen
        self.batches_seen += 1
        if index in self.plan.delay_batches:
            self.faults_injected += 1
            time.sleep(self.plan.delay_seconds)
        if index in self.plan.raise_batches:
            self.faults_injected += 1
            raise ChaosError(
                f"injected driver-side failure at batch {index}"
            )
        if index in self.plan.kill_batches:
            if kill_one_worker(self.inner) is not None:
                self.faults_injected += 1
        return index

    def _post_batch(
        self, index: int, values: list[float]
    ) -> list[float]:
        """Apply result-side faults and the stop trigger."""
        if index in self.plan.straggler_batches:
            self.faults_injected += 1
            time.sleep(self.plan.straggler_seconds)
        if index in self.plan.nan_batches and values:
            self.faults_injected += 1
            values = list(values)
            values[0] = float("nan")
        if index in self.plan.corrupt_batches and values:
            values = list(values)
            for i, v in enumerate(values):
                if np.isfinite(v):
                    # a plausible-but-wrong makespan, as a corrupted
                    # compiled kernel would return it
                    values[i] = v * self.plan.corrupt_factor
                    self.faults_injected += 1
                    break
        if (
            self.plan.stop_after_batch is not None
            and index >= self.plan.stop_after_batch
            and self.stop_event is not None
        ):
            self.stop_event.set()
        return values

    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        """Evaluate one batch, detonating any faults planned for it."""
        index = self._pre_batch()
        values = self.inner.evaluate(genomes, abort_above=abort_above)
        return self._post_batch(index, values)

    def evaluate_batch(
        self,
        genome_block: np.ndarray,
        abort_above: float | None = None,
    ) -> list[float]:
        """Block-path analogue of :meth:`evaluate`, same fault plan.

        Block and list submissions draw from one shared batch-index
        sequence, so a plan written against batch indices fires at the
        same points whichever entry point the driver uses.
        """
        index = self._pre_batch()
        values = self.inner.evaluate_batch(
            genome_block, abort_above=abort_above
        )
        return self._post_batch(index, values)

    def __call__(self, genome: np.ndarray) -> float:
        """Single-genome convenience entry point."""
        return self.evaluate([genome])[0]

    def close(self) -> None:
        """Release the wrapped evaluator's resources."""
        self.inner.close()


# ----------------------------------------------------------------------
# Picklable in-worker fault hooks.  Instances travel to pool workers via
# ProcessPoolEvaluator(fault_hook=...) and run before every chunk.
# Marker files under O_CREAT|O_EXCL give an atomic cross-process fault
# budget: each created marker claims exactly one fault, even when the
# pool is rebuilt and workers race for the next slot.


@dataclass
class FlakyChunkFault:
    """Fail the first ``failures`` chunk evaluations, then behave.

    Exercises the retry path: each failing call claims one marker file
    in ``marker_dir`` and raises :class:`ChaosError`; once all budget
    markers exist the hook is a no-op and evaluation proceeds normally.
    """

    marker_dir: str
    failures: int = 1

    def _claim(self) -> int | None:
        for i in range(self.failures):
            path = os.path.join(self.marker_dir, f"chaos-fault-{i}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return i
        return None

    def __call__(self, genome_block) -> None:
        """Raise for the first ``failures`` chunks seen pool-wide."""
        slot = self._claim()
        if slot is not None:
            raise ChaosError(
                f"injected worker failure {slot + 1}/{self.failures}"
            )


@dataclass
class WorkerKillFault(FlakyChunkFault):
    """SIGKILL the worker process itself for the first ``failures`` chunks.

    Unlike an exception (which the pool reports cleanly), a killed
    worker takes the whole :class:`ProcessPoolExecutor` down with
    ``BrokenProcessPool`` — the harshest failure mode the recovery path
    must survive.  The hook is inert in the driver process (where the
    serial fallback also runs it): only pool workers ever die.
    """

    driver_pid: int = field(default_factory=os.getpid)

    def __call__(self, genome_block) -> None:
        """Kill this worker for the first ``failures`` chunks pool-wide."""
        if os.getpid() == self.driver_pid:
            return
        if self._claim() is not None:
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass
class ProcessorCrashFault:
    """SIGKILL the worker that claims specific *global chunk ordinals*.

    Where :class:`WorkerKillFault` kills on the first ``failures``
    chunks regardless of position, this hook numbers every chunk the
    pool dispatches (atomically, via one marker file per ordinal) and
    crashes whichever worker draws an ordinal in ``at_chunks`` — the
    pool-level analogue of :class:`repro.online.ProcessorCrash`, which
    fells a processor at a planned moment of the execution.  A killed
    chunk is re-dispatched by the recovery path and claims a *new*
    ordinal, so the crash fires exactly once per planned ordinal.
    Inert in the driver process (serial fallback survives).
    """

    marker_dir: str
    at_chunks: frozenset = frozenset()
    driver_pid: int = field(default_factory=os.getpid)

    def _next_ordinal(self) -> int:
        """Atomically claim and return the next global chunk number."""
        i = 0
        while True:
            path = os.path.join(self.marker_dir, f"chaos-chunk-{i}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                i += 1
                continue
            os.close(fd)
            return i

    def __call__(self, genome_block) -> None:
        """Die when this worker drew one of the planned chunk ordinals."""
        if os.getpid() == self.driver_pid:
            return
        if self._next_ordinal() in self.at_chunks:
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass
class AlwaysFailFault:
    """Raise :class:`ChaosError` on every chunk — retries must exhaust.

    Drives the evaluator to its terminal
    :class:`~repro.exceptions.EvaluationError`; serial fallback fails
    too because the hook also runs in-process.
    """

    message: str = "injected permanent failure"

    def __call__(self, genome_block) -> None:
        """Unconditionally raise."""
        raise ChaosError(self.message)


@dataclass
class SleepFault(FlakyChunkFault):
    """Hang the first ``failures`` chunks for ``seconds``.

    With a ``chunk_timeout`` configured, the driver observes a timeout
    and retries; without one the run just slows down.
    """

    seconds: float = 5.0

    def __call__(self, genome_block) -> None:
        """Sleep for the first ``failures`` chunks seen pool-wide."""
        if self._claim() is not None:
            time.sleep(self.seconds)
