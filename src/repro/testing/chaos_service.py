"""Service-level chaos: fault-injecting proxy, spool corruptors, daemon
harness.

:mod:`repro.testing.chaos` attacks the *evaluation* layer (worker
kills, NaN fitness).  This module attacks the layer above it — the
network and the disk that the scheduling service depends on:

* :class:`ChaosProxy` — a tiny threaded TCP proxy between a client and
  a ``repro-emts serve`` daemon that injects faults per connection:
  refuse, delay, truncate the response mid-body, or forward the
  request and then RST the client before relaying the response (the
  canonical "POST landed, ack lost" ambiguity that idempotency keys
  exist to resolve).  :class:`ServiceClient` opens one connection per
  request, so connection ordinals map 1:1 onto requests and a
  :class:`ProxyPlan` is an exact per-request fault schedule.

* :func:`corrupt_record` — deterministic spool corruptors (truncate,
  tamper, zero-fill, partial-rename debris) for exercising the
  quarantine path of :meth:`repro.service.jobs.JobStore.recover`.

* :class:`ServiceDaemon` — a subprocess harness around ``repro-emts
  serve`` with crash-point env plumbing and hard-kill support, for
  kill-restart recovery tests and the recovery bench.

Everything here is stdlib-only and seeded: a chaos run is exactly
reproducible from its plan.
"""

from __future__ import annotations

import os
import random
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import ReproError
from ..util.crash import CRASH_ENV_VAR

__all__ = [
    "ProxyPlan",
    "ChaosProxy",
    "corrupt_record",
    "CORRUPTION_MODES",
    "ServiceDaemon",
    "DaemonStartupError",
]


class DaemonStartupError(ReproError):
    """The daemon subprocess died or never announced its port."""


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProxyPlan:
    """Per-connection fault schedule for :class:`ChaosProxy`.

    Connections are numbered from 0 in accept order.  Because the
    stdlib client reconnects for every request, ordinal *n* is request
    *n* — plans read as "fault the third submit", not "fault some
    bytes eventually".
    """

    #: Refuse these connections outright (accept + immediate close
    #: before reading the request) — looks like a dead daemon.
    drop_connections: frozenset[int] = frozenset()
    #: Forward the request upstream, read the full response, then send
    #: an RST to the client instead of relaying it.  The server state
    #: has changed; the client cannot know.  The worst failure mode.
    reset_after_request: frozenset[int] = frozenset()
    #: Relay only the first ``truncate_bytes`` bytes of the response,
    #: then close — a mid-body network partition.
    truncate_response: frozenset[int] = frozenset()
    truncate_bytes: int = 40
    #: Sleep this long before forwarding the request — latency spike.
    delay_connections: frozenset[int] = frozenset()
    delay_seconds: float = 0.2

    def __post_init__(self) -> None:
        if self.truncate_bytes < 0:
            raise ValueError(
                f"truncate_bytes must be >= 0, got {self.truncate_bytes}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    @classmethod
    def sampled(
        cls,
        connections: int,
        *,
        seed: int,
        drop_rate: float = 0.0,
        reset_rate: float = 0.0,
        truncate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.2,
    ) -> "ProxyPlan":
        """Draw a random-but-reproducible plan over ``connections``.

        Each ordinal suffers at most one fault; rates are applied in
        drop → reset → truncate → delay order.
        """
        rng = random.Random(seed)
        drop: set[int] = set()
        reset: set[int] = set()
        trunc: set[int] = set()
        delay: set[int] = set()
        for i in range(connections):
            roll = rng.random()
            if roll < drop_rate:
                drop.add(i)
            elif roll < drop_rate + reset_rate:
                reset.add(i)
            elif roll < drop_rate + reset_rate + truncate_rate:
                trunc.add(i)
            elif roll < drop_rate + reset_rate + truncate_rate + delay_rate:
                delay.add(i)
        return cls(
            drop_connections=frozenset(drop),
            reset_after_request=frozenset(reset),
            truncate_response=frozenset(trunc),
            delay_connections=frozenset(delay),
            delay_seconds=delay_seconds,
        )


def _read_http_message(sock: socket.socket) -> bytes:
    """Read one HTTP/1.1 message (headers + Content-Length body).

    Sufficient for the service protocol: every request and response the
    stdlib client/daemon exchange carries an explicit Content-Length
    (no chunked encoding), and one connection carries one exchange.
    """
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    match = re.search(
        rb"^content-length:\s*(\d+)\s*$",
        head,
        re.IGNORECASE | re.MULTILINE,
    )
    length = int(match.group(1)) if match else 0
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


def _rst_close(sock: socket.socket) -> None:
    """Close with an RST instead of a FIN (SO_LINGER timeout 0)."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
    except OSError:
        pass
    sock.close()


class ChaosProxy:
    """Threaded TCP proxy injecting :class:`ProxyPlan` faults.

    Usage::

        with ChaosProxy(upstream_port, plan=plan) as proxy:
            client = RetryingServiceClient(port=proxy.port, ...)
            ...

    The proxy listens on ``127.0.0.1:0`` (OS-assigned); ``proxy.port``
    is the port to hand to the client.  Counters (``connections``,
    ``faults_injected``) are exposed for assertions.
    """

    def __init__(
        self,
        upstream_port: int,
        *,
        upstream_host: str = "127.0.0.1",
        plan: ProxyPlan | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.plan = plan if plan is not None else ProxyPlan()
        self.timeout = float(timeout)
        self.connections = 0
        self.faults_injected = 0
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._closing = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                ordinal = self.connections
                self.connections += 1
            thread = threading.Thread(
                target=self._handle,
                args=(client, ordinal),
                name=f"chaos-proxy-{ordinal}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _handle(self, client: socket.socket, ordinal: int) -> None:
        plan = self.plan
        try:
            client.settimeout(self.timeout)
            if ordinal in plan.drop_connections:
                with self._lock:
                    self.faults_injected += 1
                _rst_close(client)
                return
            if ordinal in plan.delay_connections:
                with self._lock:
                    self.faults_injected += 1
                time.sleep(plan.delay_seconds)
            request = _read_http_message(client)
            if not request:
                client.close()
                return
            upstream = socket.create_connection(
                (self.upstream_host, self.upstream_port),
                timeout=self.timeout,
            )
            try:
                upstream.sendall(request)
                response = _read_http_message(upstream)
            finally:
                upstream.close()
            if ordinal in plan.reset_after_request:
                # The upstream processed the request and answered; the
                # client never hears about it.  Exactly the ambiguity
                # idempotent retries must resolve.
                with self._lock:
                    self.faults_injected += 1
                _rst_close(client)
                return
            if ordinal in plan.truncate_response:
                with self._lock:
                    self.faults_injected += 1
                client.sendall(response[: plan.truncate_bytes])
                client.close()
                return
            client.sendall(response)
            client.close()
        except OSError:
            try:
                client.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
CORRUPTION_MODES = ("truncate", "tamper", "zero", "partial-rename")


def corrupt_record(path: Path | str, mode: str, *, seed: int = 0) -> Path:
    """Corrupt one spool record in a deterministic way.

    Modes
    -----
    ``truncate``
        Cut the file mid-JSON (first half of its bytes) — a crash
        during a non-atomic write or a torn filesystem.
    ``tamper``
        Flip bytes in the middle of the document so it stays the same
        size but no longer parses / carries garbage fields.
    ``zero``
        Replace the content with NUL bytes — what some filesystems
        leave after a power loss between metadata and data flush.
    ``partial-rename``
        Leave a ``.tmp`` sibling (the debris of a crash between the
        temp write and ``os.replace``) and remove the final record.

    Returns the path that now holds the corrupt artifact (the ``.tmp``
    sibling for ``partial-rename``, else ``path``).
    """
    path = Path(path)
    raw = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(raw[: max(1, len(raw) // 2)])
        return path
    if mode == "tamper":
        rng = random.Random(seed)
        data = bytearray(raw)
        mid = len(data) // 2
        for offset in range(mid, min(mid + 16, len(data))):
            data[offset] = rng.randrange(256)
        path.write_bytes(bytes(data))
        return path
    if mode == "zero":
        path.write_bytes(b"\x00" * len(raw))
        return path
    if mode == "partial-rename":
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(raw[: max(1, len(raw) - 7)])
        path.unlink()
        return tmp
    raise ValueError(
        f"unknown corruption mode {mode!r}; pick from {CORRUPTION_MODES}"
    )


# ----------------------------------------------------------------------
_LISTEN_RE = re.compile(r"listening on http://([\w.\-]+):(\d+)")


@dataclass
class ServiceDaemon:
    """``repro-emts serve`` as a managed subprocess.

    Starts the daemon on an OS-assigned port, parses the announced
    address from stdout, and supports both graceful stop (SIGTERM →
    drain) and hard kill (SIGKILL — the crash the recovery contract is
    about).  ``crash_point`` seeds ``REPRO_CRASH_POINT`` in the child's
    environment so a named detonation fires inside the daemon.
    """

    spool: Path
    workers: int = 1
    crash_point: str | None = None
    extra_args: tuple[str, ...] = ()
    env_overrides: dict[str, str] = field(default_factory=dict)
    startup_timeout: float = 30.0
    host: str = field(default="", init=False)
    port: int = field(default=0, init=False)
    proc: subprocess.Popen | None = field(default=None, init=False)

    # ------------------------------------------------------------------
    def start(self, wait_healthy: bool = True) -> "ServiceDaemon":
        if self.proc is not None and self.proc.poll() is None:
            raise DaemonStartupError("daemon already running")
        env = dict(os.environ)
        env.pop(CRASH_ENV_VAR, None)
        if self.crash_point:
            env[CRASH_ENV_VAR] = self.crash_point
        env.update(self.env_overrides)
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--service-workers",
            str(self.workers),
            "--spool",
            str(self.spool),
            *self.extra_args,
        ]
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + self.startup_timeout
        assert self.proc.stdout is not None
        while True:
            line = self.proc.stdout.readline()
            if line:
                match = _LISTEN_RE.search(line)
                if match:
                    self.host = match.group(1)
                    self.port = int(match.group(2))
                    break
            if self.proc.poll() is not None:
                raise DaemonStartupError(
                    f"daemon exited with {self.proc.returncode} "
                    "before announcing its port"
                )
            if time.monotonic() > deadline:
                self.kill()
                raise DaemonStartupError(
                    f"daemon did not announce its port within "
                    f"{self.startup_timeout:g}s"
                )
        # Drain remaining output in the background so the child never
        # blocks on a full stdout pipe.
        threading.Thread(
            target=self._drain_stdout, name="daemon-stdout", daemon=True
        ).start()
        if wait_healthy:
            self.wait_healthy()
        return self

    def _drain_stdout(self) -> None:
        proc = self.proc
        if proc is None or proc.stdout is None:
            return
        try:
            for _ in proc.stdout:
                pass
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    def wait_healthy(self, timeout: float = 30.0) -> float:
        """Block until ``/healthz`` answers; returns seconds waited."""
        from ..service.client import ServiceClient, ServiceUnavailable

        client = ServiceClient(self.host, self.port, timeout=5.0)
        start = time.monotonic()
        deadline = start + timeout
        while True:
            try:
                client.healthz()
                return time.monotonic() - start
            except ServiceUnavailable:
                if (
                    self.proc is not None
                    and self.proc.poll() is not None
                ):
                    raise DaemonStartupError(
                        f"daemon exited with {self.proc.returncode} "
                        "while waiting for /healthz"
                    ) from None
                if time.monotonic() > deadline:
                    raise DaemonStartupError(
                        f"daemon not healthy within {timeout:g}s"
                    ) from None
                time.sleep(0.05)

    # ------------------------------------------------------------------
    def kill(self) -> int | None:
        """SIGKILL — the crash. No drain, no flush, no goodbyes."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.kill()
        return self.wait()

    def terminate(self) -> int | None:
        """SIGTERM — graceful drain path."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        return self.wait()

    def wait(self, timeout: float = 60.0) -> int | None:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(timeout=10.0)

    @property
    def returncode(self) -> int | None:
        return self.proc.returncode if self.proc is not None else None

    def __enter__(self) -> "ServiceDaemon":
        if self.proc is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.kill()


# ----------------------------------------------------------------------
def spool_job_ids(spool: Path | str) -> set[str]:
    """The job ids currently persisted in a spool (crash-safe view)."""
    jobs_dir = Path(spool) / "jobs"
    if not jobs_dir.is_dir():
        return set()
    return {p.stem for p in jobs_dir.glob("*.json")}


def quarantined_files(spool: Path | str) -> list[Path]:
    """Records parked in ``spool/quarantine/`` by recovery.

    Flight-recorder sidecars (``*.flight.json``) are evidence written
    *beside* quarantined records, not quarantined records themselves.
    """
    qdir = Path(spool) / "quarantine"
    if not qdir.is_dir():
        return []
    return sorted(
        p for p in qdir.iterdir() if not p.name.endswith(".flight.json")
    )


def wait_for(
    predicate, timeout: float = 30.0, interval: float = 0.05
) -> bool:
    """Poll ``predicate`` until truthy or the timeout expires."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())
