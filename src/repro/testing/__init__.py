"""Fault-injection utilities for exercising the resilient EMTS stack.

The production claim of the fault-tolerant evaluation engine — worker
crashes, hangs and bad fitness values never change the optimization
outcome — is only as good as the harness that attacks it.  This
subpackage provides that harness: :mod:`repro.testing.chaos` wraps any
fitness evaluator with a deterministic fault schedule (worker kills,
raised exceptions, NaN fitness, delays) and ships picklable fault hooks
that detonate *inside* pool worker processes.

:mod:`repro.testing.chaos_service` raises the attack one layer: a
fault-injecting TCP proxy between client and daemon (drops, resets
after the request landed, truncated responses, delays), deterministic
spool-record corruptors, and a subprocess harness for kill-restart
recovery tests with named crash points.

Deliberately dependency-free and deterministic: every fault fires at a
planned batch index or connection ordinal, so a chaos test is exactly
reproducible.
"""

from .chaos import (
    AlwaysFailFault,
    ChaosError,
    ChaosEvaluator,
    ChaosPlan,
    FlakyChunkFault,
    ProcessorCrashFault,
    SleepFault,
    WorkerKillFault,
    kill_one_worker,
    sample_indices,
)
from .chaos_service import (
    CORRUPTION_MODES,
    ChaosProxy,
    DaemonStartupError,
    ProxyPlan,
    ServiceDaemon,
    corrupt_record,
    quarantined_files,
    spool_job_ids,
)

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosEvaluator",
    "FlakyChunkFault",
    "WorkerKillFault",
    "ProcessorCrashFault",
    "AlwaysFailFault",
    "SleepFault",
    "kill_one_worker",
    "sample_indices",
    "ProxyPlan",
    "ChaosProxy",
    "corrupt_record",
    "CORRUPTION_MODES",
    "ServiceDaemon",
    "DaemonStartupError",
    "spool_job_ids",
    "quarantined_files",
]
