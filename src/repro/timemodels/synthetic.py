"""Model 2 — synthetic non-monotone model (paper Section IV-B, Algorithm 1).

Model 2 starts from Amdahl's law (Model 1) and penalizes "awkward"
processor counts to imitate the PDGEMM behaviour of Figure 1, where
execution time is *not* monotonically decreasing in the number of
processors.

The paper presents the model twice and the two presentations disagree:

* **Algorithm 1 (pseudo code)**::

      T(v, p) = Model 1
      if p > 1:
          if p % 2 == 1:        T *= 1.3        # odd counts
          elif sqrt(p) integer: T *= 1.1        # even perfect squares

* **Prose**: "slightly increases the execution time … if the number of
  processors is not a multiple of 2 **or if this number has no integer
  square root**" — i.e. the 1.1 penalty should hit even *non*-squares.

We implement the pseudo code literally by default (it is the only fully
specified definition) and expose ``prose_variant=True`` for the prose
reading (penalize even non-squares instead).  Both are non-monotone and
both defeat the monotonicity assumption of the CPA-family heuristics in
the same qualitative way, which is all the experiments rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .amdahl import AmdahlModel
from .base import ExecutionTimeModel

if TYPE_CHECKING:  # pragma: no cover
    from ..graph import PTG, Task
    from ..platform import Cluster

__all__ = ["SyntheticModel", "penalty_factors"]

#: Multiplicative penalty for an odd processor count (> 1).
ODD_PENALTY = 1.3
#: Multiplicative penalty applied to the square-root branch.
SQUARE_PENALTY = 1.1


def _is_perfect_square(p: np.ndarray) -> np.ndarray:
    root = np.rint(np.sqrt(p.astype(np.float64))).astype(np.int64)
    return root * root == p


def penalty_factors(
    max_p: int, prose_variant: bool = False
) -> np.ndarray:
    """Model 2 penalty factor for every ``p`` in ``1..max_p``.

    Returns an array ``f`` of length ``max_p`` with ``f[p-1]`` the factor
    multiplied onto the Model 1 time.
    """
    p = np.arange(1, max_p + 1, dtype=np.int64)
    f = np.ones(max_p, dtype=np.float64)
    parallel = p > 1
    odd = parallel & (p % 2 == 1)
    f[odd] = ODD_PENALTY
    square = _is_perfect_square(p)
    if prose_variant:
        # prose: penalize even counts *without* an integer square root
        target = parallel & ~odd & ~square
    else:
        # Algorithm 1 as printed: penalize even perfect squares
        target = parallel & ~odd & square
    f[target] = SQUARE_PENALTY
    return f


class SyntheticModel(ExecutionTimeModel):
    """The paper's Model 2: Amdahl plus block-size penalties.

    Parameters
    ----------
    prose_variant:
        Select the prose reading of the 1.1 penalty (see module docstring).
    """

    monotone = False

    def __init__(self, prose_variant: bool = False) -> None:
        self.prose_variant = bool(prose_variant)
        self.name = (
            "model2-synthetic-prose"
            if self.prose_variant
            else "model2-synthetic"
        )
        self._amdahl = AmdahlModel()

    def penalty(self, p: int) -> float:
        """The Model 2 penalty factor for one processor count."""
        if p <= 1:
            return 1.0
        if p % 2 == 1:
            return ODD_PENALTY
        is_square = int(np.rint(np.sqrt(p))) ** 2 == p
        if self.prose_variant:
            return SQUARE_PENALTY if not is_square else 1.0
        return SQUARE_PENALTY if is_square else 1.0

    def time(self, task: "Task", p: int, cluster: "Cluster") -> float:
        base = self._amdahl.time(task, p, cluster)
        return self._check_time(base * self.penalty(p), task, p)

    def build_table(self, ptg: "PTG", cluster: "Cluster") -> np.ndarray:
        base = self._amdahl.build_table(ptg, cluster)
        factors = penalty_factors(
            cluster.num_processors, self.prose_variant
        )
        return base * factors[None, :]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SyntheticModel(prose_variant={self.prose_variant})"
