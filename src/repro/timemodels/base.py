"""Execution-time model interface and the precomputed time table.

Every scheduling algorithm in this library — the CPA-family heuristics and
the EMTS evolutionary optimizer — only ever needs the execution time of
task ``v`` on ``p`` processors, ``T(v, p)``.  Because a PTG/platform pair
is fixed for the duration of one scheduling run while allocations are
queried millions of times inside the EA's fitness loop, we follow the
HPC-Python guidance (vectorize the hot path, precompute outside the loop)
and materialize the full ``V x P`` table once per run:

>>> import numpy as np
>>> from repro.graph import chain
>>> from repro.platform import chti
>>> from repro.timemodels import AmdahlModel, TimeTable
>>> table = TimeTable.build(AmdahlModel(), chain([4.3e9, 8.6e9]), chti())
>>> table.shape
(2, 20)
>>> float(table.time(0, 1))
1.0

A table of 100 tasks x 120 processors is under 100 KiB, so this trades a
negligible amount of memory for an O(V) fitness-side lookup via
:meth:`TimeTable.times_for`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import AllocationError, ModelError, TimeModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..graph import PTG, Task
    from ..platform import Cluster

__all__ = ["ExecutionTimeModel", "TimeTable"]


class ExecutionTimeModel(abc.ABC):
    """Predicts the execution time of a moldable task.

    Subclasses implement :meth:`time`; the default :meth:`build_table`
    loops over tasks and processor counts, but concrete models override it
    with a fully vectorized construction when possible (Amdahl and the
    synthetic model both do).
    """

    #: Short identifier used in reports and experiment records.
    name: str = "model"

    #: True when T(v, p) is guaranteed non-increasing in p.  The CPA-family
    #: heuristics were designed under this assumption; EMTS does not need it.
    monotone: bool = True

    @abc.abstractmethod
    def time(self, task: "Task", p: int, cluster: "Cluster") -> float:
        """Execution time (seconds) of ``task`` on ``p`` processors."""

    def build_table(self, ptg: "PTG", cluster: "Cluster") -> np.ndarray:
        """``(V, P)`` array with entry ``[v, p-1] = T(task v, p)``."""
        P = cluster.num_processors
        out = np.empty((ptg.num_tasks, P), dtype=np.float64)
        for v, task in enumerate(ptg.tasks):
            for p in range(1, P + 1):
                out[v, p - 1] = self.time(task, p, cluster)
        return out

    def _check_p(self, p: int, cluster: "Cluster") -> None:
        if not cluster.valid_allocation(p):
            raise ModelError(
                f"{self.name}: allocation p={p} outside "
                f"[1, {cluster.num_processors}]"
            )

    def _check_time(self, value: float, task: "Task", p: int) -> float:
        """Reject an unusable prediction before it can propagate.

        A NaN, infinite, or non-positive ``T(v, p)`` would silently
        poison every makespan computed from it; every concrete model
        funnels its :meth:`time` result through this guard.
        """
        if not np.isfinite(value) or value <= 0.0:
            raise TimeModelError(
                f"model {self.name!r} predicts T({task.name!r}, "
                f"p={p}) = {value!r}; execution times must be finite "
                "and strictly positive",
                task=task.name,
                p=p,
                model=self.name,
            )
        return float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TimeTable:
    """Precomputed execution times for one (model, PTG, cluster) triple.

    The table is the *only* thing the allocation heuristics and the EMTS
    fitness function touch, which is what makes EMTS "independent of the
    execution time model" (paper Section III): swap the model, rebuild the
    table, and every algorithm downstream is unchanged.
    """

    __slots__ = ("ptg", "cluster", "model_name", "_table", "_kernel")

    def __init__(
        self,
        ptg: "PTG",
        cluster: "Cluster",
        table: np.ndarray,
        model_name: str = "custom",
    ) -> None:
        table = np.asarray(table, dtype=np.float64)
        expected = (ptg.num_tasks, cluster.num_processors)
        if table.shape != expected:
            raise ModelError(
                f"time table has shape {table.shape}, expected {expected}"
            )
        bad = ~np.isfinite(table) | (table <= 0)
        if bad.any():
            v, col = (int(i) for i in np.argwhere(bad)[0])
            raise TimeModelError(
                f"model {model_name!r} produced T("
                f"{ptg.task(v).name!r}, p={col + 1}) = "
                f"{table[v, col]!r}; time-table entries must be "
                "finite and strictly positive",
                task=ptg.task(v).name,
                p=col + 1,
                model=model_name,
            )
        self.ptg = ptg
        self.cluster = cluster
        self.model_name = model_name
        self._table = table
        self._table.setflags(write=False)
        # compiled scheduling kernel, built lazily by
        # repro.mapping.kernel.kernel_for and reused across every
        # fitness evaluation against this table
        self._kernel = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, model: ExecutionTimeModel, ptg: "PTG", cluster: "Cluster"
    ) -> "TimeTable":
        """Materialize the table for ``model`` on ``(ptg, cluster)``."""
        return cls(
            ptg, cluster, model.build_table(ptg, cluster), model.name
        )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(V, P)``."""
        return self._table.shape

    @property
    def num_tasks(self) -> int:
        """Number of tasks ``V``."""
        return self._table.shape[0]

    @property
    def num_processors(self) -> int:
        """Number of processors ``P``."""
        return self._table.shape[1]

    @property
    def array(self) -> np.ndarray:
        """The raw read-only ``(V, P)`` array."""
        return self._table

    def time(self, v: int, p: int) -> float:
        """``T(v, p)`` for a single task/allocation pair."""
        if not (1 <= p <= self.num_processors):
            raise AllocationError(
                f"allocation p={p} outside [1, {self.num_processors}]"
            )
        return float(self._table[v, p - 1])

    def times_for(self, alloc: np.ndarray) -> np.ndarray:
        """Vectorized ``T(v, alloc[v])`` for a full allocation vector.

        This is the innermost operation of the EA fitness function.
        ``alloc`` must contain values in ``[1, P]``.
        """
        alloc = np.asarray(alloc)
        return self._table[np.arange(self.num_tasks), alloc - 1]

    def gains(self, alloc: np.ndarray) -> np.ndarray:
        """Per-task benefit of one more processor.

        ``gains[v] = T(v, alloc[v]) - T(v, alloc[v]+1)``; tasks already at
        ``P`` get ``-inf`` (cannot grow).  Used by the CPA-family
        allocation loops.  Under a non-monotone model entries may be
        negative — that is exactly the situation the paper studies.
        """
        alloc = np.asarray(alloc)
        idx = np.arange(self.num_tasks)
        cur = self._table[idx, alloc - 1]
        grown = np.minimum(alloc, self.num_processors - 1)
        nxt = self._table[idx, grown]
        out = cur - nxt
        out[alloc >= self.num_processors] = -np.inf
        return out

    def work_area(self, alloc: np.ndarray) -> float:
        """Total processor-time area ``sum_v alloc[v] * T(v, alloc[v])``."""
        alloc = np.asarray(alloc, dtype=np.float64)
        return float(np.sum(alloc * self.times_for(alloc.astype(np.int64))))

    def average_area(self, alloc: np.ndarray) -> float:
        """``T_A = work_area / P`` — CPA's average-area bound."""
        return self.work_area(alloc) / self.num_processors

    def is_monotone(self) -> bool:
        """Check (empirically, on this table) that T is non-increasing."""
        return bool(np.all(np.diff(self._table, axis=1) <= 1e-12))

    def best_allocation(self, v: int) -> int:
        """The processor count minimizing ``T(v, .)`` (ties: smallest p)."""
        return int(np.argmin(self._table[v])) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeTable(model={self.model_name!r}, ptg={self.ptg.name!r}, "
            f"cluster={self.cluster.name!r}, shape={self.shape})"
        )
