"""Tabulated (empirical) execution-time models.

The key claim of the paper is that EMTS "can be used with any underlying
model for predicting the execution time of moldable tasks".  The strongest
demonstration of that claim is a model that is not a formula at all but a
lookup table of *measured* runtimes — exactly what one obtains from
benchmarking a real code such as PDGEMM at several processor counts.

:class:`TabulatedModel` stores per-``kind`` measurement series and
interpolates between measured processor counts.  Measurements scale with
the task's sequential time so one measured curve can serve many task
sizes: the stored series is interpreted as *normalized* time
``T(p)/T(1)`` (an "inefficiency curve").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..exceptions import ModelError
from .base import ExecutionTimeModel

if TYPE_CHECKING:  # pragma: no cover
    from ..graph import Task
    from ..platform import Cluster

__all__ = ["TabulatedModel", "MeasurementSeries"]


class MeasurementSeries:
    """One normalized measurement curve ``p -> T(p)/T(1)``.

    Parameters
    ----------
    procs:
        Strictly increasing processor counts; must start at 1.
    normalized_times:
        ``T(p)/T(1)`` at each measured count; ``normalized_times[0]`` must
        be 1 (the sequential reference).
    """

    __slots__ = ("procs", "values")

    def __init__(
        self, procs: Sequence[int], normalized_times: Sequence[float]
    ) -> None:
        procs_arr = np.asarray(procs, dtype=np.int64)
        vals = np.asarray(normalized_times, dtype=np.float64)
        if procs_arr.ndim != 1 or procs_arr.shape != vals.shape:
            raise ModelError(
                "procs and normalized_times must be 1-D arrays of equal "
                "length"
            )
        if procs_arr.size == 0:
            raise ModelError("measurement series must be non-empty")
        if procs_arr[0] != 1:
            raise ModelError(
                "measurement series must include the sequential point p=1"
            )
        if np.any(np.diff(procs_arr) <= 0):
            raise ModelError("processor counts must be strictly increasing")
        if not np.isclose(vals[0], 1.0):
            raise ModelError(
                f"normalized time at p=1 must be 1.0, got {vals[0]}"
            )
        if np.any(vals <= 0) or not np.all(np.isfinite(vals)):
            raise ModelError("normalized times must be finite and positive")
        self.procs = procs_arr
        self.values = vals

    def interpolate(self, p: np.ndarray | int) -> np.ndarray | float:
        """Piecewise-linear interpolation of the normalized time at ``p``.

        Beyond the last measured point the curve is extended flat (the
        conservative assumption: no further speedup).
        """
        return np.interp(
            p, self.procs.astype(np.float64), self.values
        )

    @classmethod
    def from_absolute(
        cls, procs: Sequence[int], times: Sequence[float]
    ) -> "MeasurementSeries":
        """Build a series from absolute measured times (normalizes by T(1))."""
        times_arr = np.asarray(times, dtype=np.float64)
        if times_arr.size == 0 or times_arr[0] <= 0:
            raise ModelError("need a positive sequential measurement first")
        return cls(procs, times_arr / times_arr[0])


class TabulatedModel(ExecutionTimeModel):
    """Empirical model built from measured normalized curves.

    Parameters
    ----------
    series:
        Mapping from task ``kind`` to its :class:`MeasurementSeries`.
    default:
        Series used for kinds not present in ``series``; if ``None``,
        unknown kinds raise :class:`ModelError`.
    monotone:
        Declare whether the supplied curves are monotone; purely
        informational (heuristics may consult it for warnings).
    """

    def __init__(
        self,
        series: Mapping[str, MeasurementSeries],
        default: MeasurementSeries | None = None,
        monotone: bool = False,
        name: str = "tabulated",
    ) -> None:
        if not series and default is None:
            raise ModelError("need at least one measurement series")
        self.series = dict(series)
        self.default = default
        self.monotone = bool(monotone)
        self.name = name

    def _series_for(self, kind: str) -> MeasurementSeries:
        s = self.series.get(kind, self.default)
        if s is None:
            known = ", ".join(sorted(self.series))
            raise ModelError(
                f"no measurement series for task kind {kind!r} and no "
                f"default (known kinds: {known})"
            )
        return s

    def time(self, task: "Task", p: int, cluster: "Cluster") -> float:
        self._check_p(p, cluster)
        seq = cluster.sequential_time(task.work)
        return self._check_time(
            seq * float(self._series_for(task.kind).interpolate(p)),
            task,
            p,
        )

    def build_table(self, ptg, cluster: "Cluster") -> np.ndarray:
        P = cluster.num_processors
        p = np.arange(1, P + 1, dtype=np.float64)
        seq = ptg.work / cluster.speed_flops
        # group tasks by kind so each curve is interpolated only once
        curves: dict[str, np.ndarray] = {}
        out = np.empty((ptg.num_tasks, P), dtype=np.float64)
        for v, task in enumerate(ptg.tasks):
            if task.kind not in curves:
                curves[task.kind] = np.asarray(
                    self._series_for(task.kind).interpolate(p)
                )
            out[v] = seq[v] * curves[task.kind]
        return out
