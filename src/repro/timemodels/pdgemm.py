"""PDGEMM-like analytic model — the motivation behind Figure 1.

The paper motivates its non-monotonicity argument with measured timings of
ScaLAPACK's parallel matrix multiplication PDGEMM on the Cray XT4 at LBNL
(Figure 1): execution time drops with more processors *on average*, but
spikes at processor counts that do not factor into a near-square process
grid or that clash with internal block sizes.

We do not have the Cray (or its traces), so — per the substitution rule —
we model the mechanism that produces those spikes.  PDGEMM distributes an
``n x n`` matrix block-cyclically over an ``r x c`` process grid with
``r * c = p`` and performs a SUMMA-style multiply.  Cost model:

* compute: ``2 n^3 / (p * F)`` with per-processor speed ``F``;
* communication: each processor broadcasts/receives panels of its row and
  column blocks, ``~ 8 n^2 (1/r + 1/c) / BW`` bytes overall;
* imbalance: an elongated grid (aspect ratio ``max(r,c)/min(r,c) > 1``)
  multiplies the compute term by ``1 + imbalance * (aspect - 1)``.

For prime ``p`` the only grid is ``1 x p`` — a huge aspect ratio — which
reproduces the spikes at odd/prime processor counts seen in Figure 1,
while near-square factorizations (4, 16, 24 = 4x6, ...) stay fast.  The
model is qualitative by design: the paper itself stresses that the Cray
timings "were not directly transferred" to the simulated clusters either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ModelError
from .base import ExecutionTimeModel

if TYPE_CHECKING:  # pragma: no cover
    from ..graph import Task
    from ..platform import Cluster

__all__ = ["best_grid", "pdgemm_time", "PdgemmLikeModel"]


def best_grid(p: int) -> tuple[int, int]:
    """The factorization ``r x c = p`` with minimal aspect ratio, r <= c."""
    if p < 1:
        raise ModelError(f"processor count must be >= 1, got {p}")
    best = (1, p)
    for r in range(1, int(np.sqrt(p)) + 1):
        if p % r == 0:
            best = (r, p // r)  # r increases, so the last hit is squarest
    return best


def pdgemm_time(
    n: int,
    p: int,
    speed_flops: float = 8.0e9,
    bandwidth: float = 2.0e9,
    latency: float = 2.0e-5,
    imbalance: float = 0.35,
) -> float:
    """Modelled PDGEMM wall time for an ``n x n`` double matrix on ``p`` procs.

    Parameters
    ----------
    n:
        Matrix dimension.
    p:
        Number of processors.
    speed_flops:
        Per-processor floating-point speed (FLOP/s).
    bandwidth:
        Effective network bandwidth (bytes/s).
    latency:
        Per-message latency (s); each of the ``~sqrt(p)`` SUMMA steps pays
        one broadcast per grid row and column.
    imbalance:
        Compute inflation per unit of grid-aspect excess.
    """
    if n < 1:
        raise ModelError(f"matrix dimension must be >= 1, got {n}")
    r, c = best_grid(p)
    aspect = c / r
    compute = 2.0 * n**3 / (p * speed_flops)
    compute *= 1.0 + imbalance * (aspect - 1.0)
    if p > 1:
        comm_bytes = 8.0 * n * n * (1.0 / r + 1.0 / c)
        steps = max(r, c)
        comm = comm_bytes / bandwidth + latency * steps * np.log2(p + 1)
    else:
        comm = 0.0
    return float(compute + comm)


class PdgemmLikeModel(ExecutionTimeModel):
    """Schedulable execution-time model with PDGEMM-style non-monotonicity.

    Task ``work`` is interpreted as matrix-multiply FLOP (``2 n^3``), from
    which the matrix dimension is recovered; the grid/communication model
    of :func:`pdgemm_time` then yields ``T(v, p)``.  This gives EMTS a
    third, *structurally different* non-monotone model to optimize against
    (used by the ablation benchmarks).
    """

    name = "pdgemm-like"
    monotone = False

    def __init__(
        self,
        bandwidth: float = 2.0e9,
        latency: float = 2.0e-5,
        imbalance: float = 0.35,
    ) -> None:
        if bandwidth <= 0:
            raise ModelError(f"bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise ModelError(f"latency must be >= 0, got {latency}")
        if imbalance < 0:
            raise ModelError(f"imbalance must be >= 0, got {imbalance}")
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.imbalance = float(imbalance)

    def time(self, task: "Task", p: int, cluster: "Cluster") -> float:
        self._check_p(p, cluster)
        n = max(1, int(round((task.work / 2.0) ** (1.0 / 3.0))))
        return self._check_time(
            pdgemm_time(
                n,
                p,
                speed_flops=cluster.speed_flops,
                bandwidth=self.bandwidth,
                latency=self.latency,
                imbalance=self.imbalance,
            ),
            task,
            p,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PdgemmLikeModel(bandwidth={self.bandwidth:g}, "
            f"latency={self.latency:g}, imbalance={self.imbalance:g})"
        )
