"""Execution-time models for moldable parallel tasks (paper Section IV-B).

Public API:

* :class:`ExecutionTimeModel` — the model protocol;
* :class:`TimeTable` — the precomputed ``V x P`` lookup every scheduler
  uses (this is what makes EMTS model-agnostic);
* :class:`AmdahlModel` — the paper's monotone **Model 1**;
* :class:`SyntheticModel` — the paper's non-monotone **Model 2**
  (Algorithm 1);
* :class:`DowneyModel` — Downey's speedup model (mentioned in related
  work);
* :class:`TabulatedModel` — empirical measured-curve model;
* :class:`PdgemmLikeModel` / :func:`pdgemm_time` — the PDGEMM-style model
  behind Figure 1.
"""

from .amdahl import AmdahlModel, amdahl_time
from .base import ExecutionTimeModel, TimeTable
from .downey import DowneyModel, downey_speedup
from .pdgemm import PdgemmLikeModel, best_grid, pdgemm_time
from .synthetic import SyntheticModel, penalty_factors
from .tabulated import MeasurementSeries, TabulatedModel

__all__ = [
    "ExecutionTimeModel",
    "TimeTable",
    "AmdahlModel",
    "amdahl_time",
    "SyntheticModel",
    "penalty_factors",
    "DowneyModel",
    "downey_speedup",
    "TabulatedModel",
    "MeasurementSeries",
    "PdgemmLikeModel",
    "pdgemm_time",
    "best_grid",
]
