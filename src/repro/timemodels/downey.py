"""Downey's speedup model for moldable jobs.

The paper's related-work section notes that most PTG scheduling algorithms
predict task runtimes either with Amdahl's law or with Downey's model
[Downey, *A Model for Speedup of Parallel Programs*, UCB/CSD-97-933].  We
include Downey's model so that every model family the paper mentions is
available; it also serves as a second *monotone* model for ablations.

Downey characterizes a job by its average parallelism ``A`` and the
variance of parallelism ``sigma``.  The speedup ``S(n)`` on ``n``
processors is

for ``sigma <= 1`` (low variance)::

    S(n) = A*n / (A + sigma/2 * (n - 1))                1 <= n <= A
    S(n) = A*n / (sigma*(A - 1/2) + n*(1 - sigma/2))    A <= n <= 2A - 1
    S(n) = A                                            n >= 2A - 1

for ``sigma >= 1`` (high variance)::

    S(n) = n*A*(sigma + 1) / (sigma*(n + A - 1) + A)    1 <= n <= A + A*sigma - sigma
    S(n) = A                                            otherwise

and the execution time is ``T(v, n) = T(v, 1) / S(n)``.

Per-task parameters come from the task's ``alpha`` by default (mapping the
Amdahl fraction to an equivalent average parallelism ``A = 1/alpha`` when
``alpha > 0``), or can be fixed globally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ModelError
from .base import ExecutionTimeModel

if TYPE_CHECKING:  # pragma: no cover
    from ..graph import PTG, Task
    from ..platform import Cluster

__all__ = ["DowneyModel", "downey_speedup"]


def downey_speedup(
    n: np.ndarray | int, A: float, sigma: float
) -> np.ndarray | float:
    """Downey's speedup ``S(n)`` (vectorized over ``n``).

    Parameters
    ----------
    n:
        Processor count(s), ``>= 1``.
    A:
        Average parallelism, ``>= 1``.
    sigma:
        Variance of parallelism, ``>= 0``.
    """
    if A < 1.0:
        raise ModelError(f"average parallelism A must be >= 1, got {A}")
    if sigma < 0.0:
        raise ModelError(f"sigma must be >= 0, got {sigma}")
    n_arr = np.asarray(n, dtype=np.float64)
    s = np.empty_like(n_arr)
    if sigma <= 1.0:
        low = n_arr <= A
        mid = (n_arr > A) & (n_arr <= 2.0 * A - 1.0)
        high = n_arr > 2.0 * A - 1.0
        s[low] = (A * n_arr[low]) / (A + (sigma / 2.0) * (n_arr[low] - 1.0))
        denom = sigma * (A - 0.5) + n_arr[mid] * (1.0 - sigma / 2.0)
        s[mid] = (A * n_arr[mid]) / denom
        s[high] = A
    else:
        knee = A + A * sigma - sigma
        low = n_arr <= knee
        s[low] = (
            n_arr[low]
            * A
            * (sigma + 1.0)
            / (sigma * (n_arr[low] + A - 1.0) + A)
        )
        s[~low] = A
    # speedup can never drop below 1 (a moldable job never runs slower than
    # sequentially in Downey's model)
    np.maximum(s, 1.0, out=s)
    if np.isscalar(n):
        return float(s)
    return s


class DowneyModel(ExecutionTimeModel):
    """Execution-time model based on Downey's speedup curves.

    Parameters
    ----------
    sigma:
        Variance of parallelism shared by all tasks (Downey's second
        parameter).
    parallelism_from_alpha:
        When True (default), a task's average parallelism is derived from
        its Amdahl fraction as ``A = 1/alpha`` (``alpha = 0`` maps to
        "embarrassingly parallel", ``A = infinity``, realized as ``A = P``).
        When False, ``fixed_parallelism`` is used for every task.
    fixed_parallelism:
        Average parallelism used when ``parallelism_from_alpha=False``.
    """

    name = "downey"
    monotone = True

    def __init__(
        self,
        sigma: float = 0.5,
        parallelism_from_alpha: bool = True,
        fixed_parallelism: float = 32.0,
    ) -> None:
        if sigma < 0:
            raise ModelError(f"sigma must be >= 0, got {sigma}")
        if fixed_parallelism < 1:
            raise ModelError(
                f"fixed_parallelism must be >= 1, got {fixed_parallelism}"
            )
        self.sigma = float(sigma)
        self.parallelism_from_alpha = bool(parallelism_from_alpha)
        self.fixed_parallelism = float(fixed_parallelism)

    def _avg_parallelism(self, alpha: float, P: int) -> float:
        if not self.parallelism_from_alpha:
            return min(self.fixed_parallelism, float(max(P, 1)))
        if alpha <= 0.0:
            return float(P)
        return max(1.0, min(1.0 / alpha, float(P)))

    def time(self, task: "Task", p: int, cluster: "Cluster") -> float:
        self._check_p(p, cluster)
        seq = cluster.sequential_time(task.work)
        A = self._avg_parallelism(task.alpha, cluster.num_processors)
        return self._check_time(
            seq / float(downey_speedup(p, A, self.sigma)), task, p
        )

    def build_table(self, ptg: "PTG", cluster: "Cluster") -> np.ndarray:
        P = cluster.num_processors
        n = np.arange(1, P + 1, dtype=np.float64)
        seq = ptg.work / cluster.speed_flops
        out = np.empty((ptg.num_tasks, P), dtype=np.float64)
        for v in range(ptg.num_tasks):
            A = self._avg_parallelism(float(ptg.alpha[v]), P)
            out[v] = seq[v] / downey_speedup(n, A, self.sigma)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DowneyModel(sigma={self.sigma}, parallelism_from_alpha="
            f"{self.parallelism_from_alpha})"
        )
