"""Model 1 — Amdahl's law (paper Section IV-B).

With ``T(v, 1)`` the sequential execution time of task ``v`` and ``alpha``
its non-parallelizable code fraction, the parallel execution time on ``p``
processors is

.. math::  T(v, p) = \\left(\\alpha + \\frac{1 - \\alpha}{p}\\right) T(v, 1)

Each PTG node carries its own ``alpha`` value, so two nodes with different
``alpha`` follow different performance curves — exactly as the paper's
simulator does.  ``T(v, 1)`` is derived from the task's FLOP count and the
cluster's per-processor GFLOPS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import ExecutionTimeModel

if TYPE_CHECKING:  # pragma: no cover
    from ..graph import PTG, Task
    from ..platform import Cluster

__all__ = ["AmdahlModel", "amdahl_time"]


def amdahl_time(seq_time: float, alpha: float, p: int | np.ndarray):
    """Amdahl execution time for sequential time ``seq_time``.

    Vectorized over ``p``.
    """
    return (alpha + (1.0 - alpha) / p) * seq_time


class AmdahlModel(ExecutionTimeModel):
    """Monotonically decreasing execution-time model (the paper's Model 1).

    This is the assumption baked into the CPA-family heuristics; the
    paper's first experiment (Figure 4) evaluates EMTS under it to show
    the EA is competitive even on the heuristics' home turf.
    """

    name = "model1-amdahl"
    monotone = True

    def time(self, task: "Task", p: int, cluster: "Cluster") -> float:
        self._check_p(p, cluster)
        seq = cluster.sequential_time(task.work)
        return self._check_time(
            float(amdahl_time(seq, task.alpha, p)), task, p
        )

    def build_table(self, ptg: "PTG", cluster: "Cluster") -> np.ndarray:
        # Fully vectorized: outer product of per-task sequential times with
        # the per-p Amdahl factors.
        p = np.arange(1, cluster.num_processors + 1, dtype=np.float64)
        seq = ptg.work / cluster.speed_flops  # (V,)
        alpha = ptg.alpha  # (V,)
        # (V, 1) * (V, P) via broadcasting
        factors = alpha[:, None] + (1.0 - alpha[:, None]) / p[None, :]
        return seq[:, None] * factors
