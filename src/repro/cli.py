"""Command-line interface: ``python -m repro`` / ``repro-emts``.

Subcommands:

``generate``
    Generate a PTG (fft / strassen / daggen) and save it as JSON or DOT.
``schedule``
    Schedule a PTG file (or a generated one) with a chosen algorithm and
    print the resulting makespan, allocations and optionally a Gantt
    chart.
``figure``
    Regenerate one of the paper's figures (1-6) and print/save its data.
``online``
    Execute a schedule reactively under injected faults (crashes,
    transient failures, stragglers) with frontier rescheduling and an
    optional deadline.
``runtime``
    Run the Section V runtime measurement (experiment E7).
``corpus``
    Summarize (and optionally save) the paper's evaluation corpus.
``report-trace``
    Summarize a structured JSONL trace written by ``--trace``.

Global ``--log-level`` / ``--log-json`` flags configure the package's
logging (see :mod:`repro.obs.log`); ``schedule`` and ``campaign`` accept
``--trace`` / ``--metrics-out`` to record structured observability data.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .allocation import AllocationHeuristic
from .core import EMTS, SEED_REGISTRY, emts5, emts10, make_allocator
from .exceptions import CheckpointError, ConfigurationError, TraceError
from .graph import PTG, load_ptg, ptg_to_dot, save_ptg
from .mapping import ascii_gantt, map_allocations, save_svg_gantt
from .obs import LOG_LEVELS, MetricsRegistry, configure_logging
from .platform import Cluster, by_name
from .timemodels import (
    AmdahlModel,
    DowneyModel,
    ExecutionTimeModel,
    SyntheticModel,
    TimeTable,
)
from .workloads import (
    DaggenParams,
    generate_daggen,
    generate_fft,
    generate_strassen,
    paper_corpus,
)

__all__ = ["main", "build_parser"]

_MODELS = {
    "model1": AmdahlModel,
    "amdahl": AmdahlModel,
    "model2": SyntheticModel,
    "synthetic": SyntheticModel,
    "downey": DowneyModel,
}


def _run_profiled(func, args) -> int:
    """Run ``func(args)`` under :mod:`cProfile`.

    Binary stats go to ``args.profile`` (loadable with ``pstats`` or
    ``snakeviz``); the top cumulative-time entries are printed so the
    hot path is visible without extra tooling.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        rc = func(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(25)
        print()
        print(stream.getvalue().rstrip())
        print(f"wrote profile stats -> {args.profile}")
    return rc


def _make_model(name: str) -> ExecutionTimeModel:
    try:
        return _MODELS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise SystemExit(
            f"unknown model {name!r}; known models: {known}"
        ) from None


def _make_algorithm(
    name: str,
    workers: int = 0,
    fitness_cache: bool = True,
    verify: str = "off",
    islands: int = 0,
    migration_interval: int = 1,
):
    name = name.lower()
    overrides = dict(
        workers=workers,
        fitness_cache=fitness_cache,
        verify=verify,
        islands=islands,
        migration_interval=migration_interval,
    )
    try:
        if name == "emts5":
            return emts5(**overrides)
        if name == "emts10":
            return emts10(**overrides)
    except ConfigurationError as exc:
        raise SystemExit(f"configuration error: {exc}") from exc
    if name in SEED_REGISTRY:
        return make_allocator(name)
    known = ", ".join(["emts5", "emts10"] + sorted(SEED_REGISTRY))
    raise SystemExit(f"unknown algorithm {name!r}; known: {known}")


def _generate_ptg(args) -> PTG:
    if args.kind == "fft":
        return generate_fft(args.size, rng=args.seed)
    if args.kind == "strassen":
        return generate_strassen(rng=args.seed)
    if args.kind == "daggen":
        return generate_daggen(
            DaggenParams(
                num_tasks=args.size,
                width=args.width,
                regularity=args.regularity,
                density=args.density,
                jump=args.jump,
            ),
            rng=args.seed,
        )
    raise SystemExit(f"unknown PTG kind {args.kind!r}")


# ----------------------------------------------------------------------
def _cmd_generate(args) -> int:
    ptg = _generate_ptg(args)
    out = Path(args.output)
    if out.suffix == ".dot":
        out.write_text(ptg_to_dot(ptg), encoding="utf-8")
    else:
        save_ptg(ptg, out)
    print(
        f"wrote {ptg.name}: {ptg.num_tasks} tasks, {ptg.num_edges} "
        f"edges -> {out}"
    )
    return 0


def _cmd_schedule(args) -> int:
    if args.ptg:
        ptg = load_ptg(args.ptg)
    else:
        ptg = _generate_ptg(args)
    cluster: Cluster = by_name(args.platform)
    model = _make_model(args.model)
    table = TimeTable.build(model, ptg, cluster)
    verify = getattr(args, "verify", "off")
    algorithm = _make_algorithm(
        args.algorithm,
        workers=args.workers,
        fitness_cache=not args.no_fitness_cache,
        verify=verify,
        islands=getattr(args, "islands", 0),
        migration_interval=getattr(args, "migration_interval", 1),
    )

    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    max_wall_time = getattr(args, "max_wall_time", None)
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not isinstance(algorithm, EMTS) and (
        checkpoint or resume or max_wall_time is not None
    ):
        raise SystemExit(
            "--checkpoint/--resume/--max-wall-time only apply to EMTS "
            f"algorithms, not {args.algorithm!r}"
        )
    if not isinstance(algorithm, EMTS) and (trace or metrics_out):
        raise SystemExit(
            "--trace/--metrics-out only apply to EMTS algorithms, "
            f"not {args.algorithm!r}"
        )

    if isinstance(algorithm, EMTS):
        registry = MetricsRegistry() if metrics_out else None
        try:
            result = algorithm.schedule(
                ptg,
                cluster,
                table,
                rng=args.seed,
                checkpoint_path=checkpoint,
                resume_from=resume,
                max_wall_time=max_wall_time,
                handle_signals=True,
                trace=trace,
                metrics=registry,
            )
        except CheckpointError as exc:
            raise SystemExit(f"checkpoint error: {exc}") from exc
        except TraceError as exc:
            raise SystemExit(f"trace error: {exc}") from exc
        schedule = result.schedule
        print(f"algorithm : {algorithm.name}")
        for name, ms in sorted(result.seed_makespans.items()):
            print(f"seed {name:<15s}: {ms:.6g} s")
        print(f"makespan  : {result.makespan:.6g} s")
        print(f"opt. time : {result.elapsed_seconds:.3f} s")
        print(f"evals     : {result.evaluations}")
        if result.evaluation_stats is not None:
            print(f"evaluator : {result.evaluation_stats.summary()}")
        if result.interrupted:
            gens = result.log.generations - 1
            where = (
                f"; resume with --resume {checkpoint}"
                if checkpoint
                else ""
            )
            print(
                f"interrupted: stopped after generation {gens} of "
                f"{result.config.generations} (best-so-far result)"
                f"{where}"
            )
        if trace:
            print(
                f"wrote trace -> {trace} "
                f"(summarize with: repro-emts report-trace {trace})"
            )
        if registry is not None:
            out = registry.dump(metrics_out)
            print(f"wrote metrics -> {out}")
    else:
        assert isinstance(algorithm, AllocationHeuristic)
        alloc = algorithm.allocate(ptg, table)
        schedule = map_allocations(ptg, table, alloc)
        print(f"algorithm : {algorithm.name}")
        print(f"makespan  : {schedule.makespan:.6g} s")
        if verify != "off":
            from .exceptions import VerificationError
            from .verify import differential_check

            try:
                report = differential_check(
                    ptg, table, alloc, expected=schedule.makespan
                )
            except VerificationError as exc:
                raise SystemExit(
                    f"verification FAILED ({exc.kind}): {exc}"
                ) from exc
            print(f"verified  : {report}")
    print(f"utilization: {schedule.utilization:.1%}")
    if args.gantt:
        print()
        print(ascii_gantt(schedule))
    if args.svg:
        save_svg_gantt(schedule, args.svg)
        print(f"wrote Gantt SVG -> {args.svg}")
    return 0


def _cmd_online(args) -> int:
    from .obs import Tracer
    from .online import FaultPlan, ReactionPolicy, execute_online

    if args.ptg:
        ptg = load_ptg(args.ptg)
    else:
        ptg = _generate_ptg(args)
    cluster: Cluster = by_name(args.platform)
    model = _make_model(args.model)
    table = TimeTable.build(model, ptg, cluster)
    algorithm = _make_algorithm(args.algorithm)
    if isinstance(algorithm, EMTS):
        planned = algorithm.schedule(
            ptg, cluster, table, rng=args.seed
        ).schedule
    else:
        assert isinstance(algorithm, AllocationHeuristic)
        alloc = algorithm.allocate(ptg, table)
        planned = map_allocations(ptg, table, alloc)

    rates = (args.crash_rate, args.failure_rate, args.straggler_rate)
    if any(r < 0 or r > 1 for r in rates):
        raise SystemExit("fault rates must be within [0, 1]")
    try:
        if any(rates):
            plan = FaultPlan.sampled(
                args.fault_seed,
                ptg.num_tasks,
                cluster.num_processors,
                horizon=planned.makespan,
                crash_rate=args.crash_rate,
                failure_rate=args.failure_rate,
                straggler_rate=args.straggler_rate,
                straggler_factor=args.straggler_factor,
                max_retries=args.max_retries,
            )
        else:
            plan = FaultPlan(max_retries=args.max_retries)
        policy = ReactionPolicy(
            budget_evaluations=args.reaction_budget
        )
    except ConfigurationError as exc:
        raise SystemExit(f"configuration error: {exc}") from exc

    deadline = args.deadline
    if args.deadline_factor is not None:
        if deadline is not None:
            raise SystemExit(
                "--deadline and --deadline-factor are mutually "
                "exclusive"
            )
        deadline = args.deadline_factor * planned.makespan

    tracer = Tracer(args.trace) if args.trace else None
    registry = MetricsRegistry() if args.metrics_out else None
    try:
        result = execute_online(
            planned,
            table,
            plan=plan,
            policy=policy,
            deadline=deadline,
            rng=args.seed,
            tracer=tracer,
            metrics=registry,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"configuration error: {exc}") from exc
    finally:
        if tracer is not None:
            tracer.close()

    print(f"algorithm : {algorithm.name}")
    print(f"planned   : {result.planned_makespan:.6g} s")
    faults = plan.summary()
    print(
        f"faults    : {faults['crashes']} crashes, "
        f"{faults['failures']} failures, "
        f"{faults['stragglers']} stragglers "
        f"({result.faults_injected} injected, "
        f"{result.retries} retries)"
    )
    rungs = (
        ", ".join(
            f"{name} x{count}"
            for name, count in sorted(result.rungs.items())
        )
        or "none"
    )
    print(
        f"replans   : {result.reschedules} ({rungs}); "
        f"budget used {result.budget_used}"
        f"/{policy.budget_evaluations}"
    )
    if result.deadline is not None:
        print(f"deadline  : {result.deadline:.6g} s")
    print(f"makespan  : {result.makespan:.6g} s")
    print(f"outcome   : {result.outcome}")
    if result.reason:
        print(f"reason    : {result.reason}")
    if result.schedule is not None:
        print(f"verified  : {result.verified}")
    if args.trace:
        print(
            f"wrote trace -> {args.trace} "
            f"(summarize with: repro-emts report-trace {args.trace})"
        )
    if registry is not None:
        out = registry.dump(args.metrics_out)
        print(f"wrote metrics -> {out}")
    if result.outcome == "deadline-missed":
        return EXIT_DEADLINE_MISSED
    if result.outcome == "aborted":
        return EXIT_ABORTED
    return 0


def _cmd_figure(args) -> int:
    from .experiments import figures as F

    if str(args.number).lower() == "all":
        for n in range(1, 7):
            print(f"\n===== Figure {n} =====")
            sub_args = argparse.Namespace(**vars(args))
            sub_args.number = n
            _cmd_figure(sub_args)
        return 0
    try:
        n = int(args.number)
    except ValueError:
        raise SystemExit(
            f"figure must be a number 1-6 or 'all', got "
            f"{args.number!r}"
        ) from None
    out_dir = Path(args.output_dir) if args.output_dir else None
    if n == 1:
        print(F.generate_figure1().render())
    elif n == 2:
        print(F.generate_figure2().render())
    elif n == 3:
        print(F.generate_figure3(samples=args.samples).render())
    elif n == 4:
        fig = F.generate_figure4(seed=args.seed, scale=args.scale)
        print(fig.render())
    elif n == 5:
        fig = F.generate_figure5(seed=args.seed, scale=args.scale)
        print(fig.render())
    elif n == 6:
        fig = F.generate_figure6(seed=args.seed)
        print(fig.render())
        if out_dir:
            paths = fig.save_svgs(out_dir)
            print(f"wrote {paths[0]} and {paths[1]}")
    else:
        raise SystemExit(f"no figure {n}; the paper has figures 1-6")
    return 0


def _cmd_runtime(args) -> int:
    from .experiments import measure_runtimes

    report = measure_runtimes(
        seed=args.seed,
        repetitions=args.repetitions,
        workers=args.workers,
        fitness_cache=not args.no_fitness_cache,
        verify=getattr(args, "verify", "off"),
    )
    print(report.render())
    return 0


def _cmd_scalability(args) -> int:
    from .experiments import run_scalability_sweep
    from .workloads import DaggenParams, generate_daggen

    ptgs = [
        generate_daggen(
            DaggenParams(
                num_tasks=args.size,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=(args.seed or 0) + i,
        )
        for i in range(args.instances)
    ]
    sizes = tuple(int(s) for s in args.sizes.split(","))
    sweep = run_scalability_sweep(ptgs, sizes=sizes, seed=args.seed)
    print(sweep.render())
    trend = (
        "non-decreasing"
        if sweep.trend_is_nondecreasing()
        else "NOT monotone"
    )
    print(f"trend across platform sizes: {trend}")
    return 0


def _cmd_convergence(args) -> int:
    from .experiments import run_convergence_study
    from .workloads import DaggenParams, generate_daggen

    ptgs = [
        generate_daggen(
            DaggenParams(
                num_tasks=args.size,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=(args.seed or 0) + i,
        )
        for i in range(args.instances)
    ]
    overrides = dict(
        workers=args.workers,
        fitness_cache=not args.no_fitness_cache,
        verify=getattr(args, "verify", "off"),
        islands=getattr(args, "islands", 0),
        migration_interval=getattr(args, "migration_interval", 1),
    )
    study = run_convergence_study(
        ptgs,
        by_name(args.platform),
        _make_model(args.model),
        [emts5(**overrides), emts10(**overrides)],
        seed=args.seed,
    )
    print(study.render())
    print(study.evaluation_summary())
    for variant in ("emts5", "emts10"):
        print(
            f"final mean improvement over seeds ({variant}): "
            f"{study.final_improvement(variant):.3f}x"
        )
    return 0


def _cmd_campaign(args) -> int:
    from .exceptions import CampaignError
    from .experiments import campaign_status
    from .experiments import figures as F

    if args.status:
        try:
            status = campaign_status(args.out)
        except CampaignError as exc:
            raise SystemExit(str(exc)) from exc
        print(
            f"campaign {args.out}: {status['done']} done, "
            f"{status['quarantined']} quarantined, "
            f"{status['pending']} pending "
            f"(of {len(status['trials'])} trials)"
        )
        for key, state in status["status"].items():
            if state != "done":
                print(f"  {state:<12s} {key}")
        return 0

    def progress(key: str, state: str) -> None:
        if not args.quiet:
            print(f"[{state:>11s}] {key}")

    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    registry = MetricsRegistry() if metrics_out else None
    try:
        if args.figure == 4:
            fig = F.generate_figure4(
                seed=args.seed,
                scale=args.scale,
                campaign_dir=args.out,
                trial_timeout=args.trial_timeout,
                progress=progress,
                trace=trace,
                metrics=registry,
                verify=getattr(args, "verify", "off"),
            )
            print(fig.render())
        elif args.figure == 5:
            fig5 = F.generate_figure5(
                seed=args.seed,
                scale=args.scale,
                campaign_dir=args.out,
                trial_timeout=args.trial_timeout,
                progress=progress,
                trace=trace,
                metrics=registry,
                verify=getattr(args, "verify", "off"),
            )
            print(fig5.render())
        else:
            raise SystemExit(
                f"campaigns exist for figures 4 and 5, not "
                f"{args.figure}"
            )
    except CampaignError as exc:
        raise SystemExit(str(exc)) from exc
    except TraceError as exc:
        raise SystemExit(f"trace error: {exc}") from exc
    if trace:
        print(
            f"wrote trace -> {trace} "
            f"(summarize with: repro-emts report-trace {trace})"
        )
    if registry is not None:
        out = registry.dump(metrics_out)
        print(f"wrote metrics -> {out}")
    print(
        f"campaign state persisted under {args.out}; re-running the "
        "same command resumes it"
    )
    return 0


def _cmd_report_trace(args) -> int:
    try:
        if args.service:
            from .obs.assemble import render_service_report

            print(render_service_report(args.trace))
        else:
            from .obs import render_trace_report

            print(render_trace_report(args.trace))
    except TraceError as exc:
        raise SystemExit(f"trace error: {exc}") from exc
    return 0


def _cmd_corpus(args) -> int:
    corpus = paper_corpus(seed=args.seed, scale=args.scale)
    print(corpus.summary())
    sizes = {
        cls: sorted({p.num_tasks for p in corpus.by_class(cls)})
        for cls in corpus.classes
    }
    for cls, sz in sizes.items():
        print(f"  {cls}: task counts {sz}")
    if args.output:
        from .graph import save_corpus

        all_ptgs = [
            p for cls in corpus.classes for p in corpus.by_class(cls)
        ]
        save_corpus(all_ptgs, args.output)
        print(f"wrote {len(all_ptgs)} PTGs -> {args.output}")
    return 0


# ----------------------------------------------------------------------
#: `submit` exit codes (sysexits-style so shell scripts can branch):
#: 75 = EX_TEMPFAIL, the queue rejected us and a retry may succeed;
#: 124 mirrors timeout(1) for jobs still pending at the deadline.
EXIT_QUEUE_FULL = 75
EXIT_TIMEOUT = 124

#: `online` exit codes: a run that misses its deadline or aborts
#: (retry budget exhausted / every processor lost) signals the outcome
#: distinctly so chaos harnesses can branch on it.
EXIT_DEADLINE_MISSED = 3
EXIT_ABORTED = 4


def _cmd_serve(args) -> int:
    from .service import serve

    spool = args.spool
    if spool is not None:
        Path(spool).mkdir(parents=True, exist_ok=True)
    trace_dir = args.trace_dir
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
    return serve(
        host=args.host,
        port=args.port,
        workers=args.service_workers,
        spool=spool,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        result_cache_size=args.result_cache_size,
        warm_max_problems=args.warm_problems,
        trace_dir=trace_dir,
    )


def _cmd_submit(args) -> int:
    import json as _json

    from .graph import ptg_to_dict
    from .service import (
        JobTimeout,
        QueueFullError,
        RetryingServiceClient,
        RetryPolicy,
        ServiceUnavailable,
    )
    from .exceptions import ServiceError

    if args.ptg:
        ptg = load_ptg(args.ptg)
    else:
        ptg = _generate_ptg(args)
    request = {
        "ptg": ptg_to_dict(ptg),
        "platform": args.platform,
        "model": args.model,
        "algorithm": args.algorithm,
        "seed": args.seed,
        "tenant": args.tenant,
        "priority": args.priority,
    }
    if args.generations is not None:
        request["generations"] = args.generations
    if args.max_wall_time is not None:
        request["max_wall_time"] = args.max_wall_time
    if args.idempotency_key:
        request["idempotency_key"] = args.idempotency_key
    policy = RetryPolicy(
        max_attempts=max(1, args.retries + 1),
        deadline=args.timeout,
    )
    client = RetryingServiceClient(
        host=args.host, port=args.port, policy=policy
    )
    try:
        doc = client.schedule(
            request,
            timeout=args.timeout,
            poll_interval=args.poll_interval,
        )
    except QueueFullError as exc:
        hint = (
            f" (retry after {exc.retry_after:g}s)"
            if exc.retry_after
            else ""
        )
        print(f"rejected: {exc}{hint}", file=sys.stderr)
        return EXIT_QUEUE_FULL
    except JobTimeout as exc:
        print(f"timed out: {exc}", file=sys.stderr)
        return EXIT_TIMEOUT
    except (ServiceUnavailable, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    job = doc.get("job", {})
    if job.get("state") == "failed":
        error = doc.get("error") or {}
        print(
            f"job {job.get('id')} failed: "
            f"{error.get('code')}: {error.get('message')}",
            file=sys.stderr,
        )
        return 1
    result = doc.get("result") or {}
    if args.output:
        Path(args.output).write_text(
            _json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"job {job.get('id')}: {job.get('state')} "
            f"(served from {job.get('served_from')})"
        )
        print(
            f"  {ptg.name}: makespan {result.get('makespan'):.6g} on "
            f"{request['platform']} "
            f"({result.get('generations')} generations, "
            f"{result.get('evaluations')} evaluations, "
            f"algorithm {result.get('algorithm')}, "
            f"seed {result.get('seed')})"
        )
    return 0


def _format_slo_rows(rows: list[dict]) -> str:
    lines = [
        f"{'slo':<22} {'objective':>9} {'compliance':>10} "
        f"{'budget':>7} {'burn(60s/600s)':>15} {'status':>8}"
    ]
    for row in rows:
        burns = row.get("burn_rates", {})
        burn = "/".join(
            f"{burns[k]:.2f}" for k in sorted(burns, key=lambda s: int(s[:-1]))
        ) or "-"
        status = (
            "ALERT"
            if row.get("alerting")
            else ("ok" if row.get("ok") else "VIOLATED")
        )
        lines.append(
            f"{row['name']:<22} {row['objective']:>9.4f} "
            f"{row['compliance']:>10.5f} "
            f"{row.get('budget_remaining', 0.0):>7.2f} {burn:>15} "
            f"{status:>8}"
        )
    return "\n".join(lines)


def _cmd_slo(args) -> int:
    """Evaluate SLOs: committed bench baselines or a live daemon."""
    import json as _json

    from .obs.slo import evaluate_bench

    failures = 0
    if args.bench:
        for path in args.bench:
            try:
                doc = _json.loads(Path(path).read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                print(f"{path}: unreadable: {exc}", file=sys.stderr)
                failures += 1
                continue
            rows = evaluate_bench(doc, path)
            if not rows:
                print(f"{path}: no SLO mapping (skipped)")
                continue
            print(f"{path}:")
            for row in rows:
                verdict = "ok" if row["ok"] else "VIOLATED"
                print(
                    f"  {row['name']:<28} value={row['value']:g} "
                    f"budget={row['budget']:g} {verdict}"
                )
                if not row["ok"]:
                    failures += 1
        return 1 if failures else 0

    from .service import ServiceClient
    from .exceptions import ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        stats = client.stats()
    except (ServiceError, OSError) as exc:
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return 1
    rows = stats.get("slo") or []
    if not rows:
        print("daemon reports no SLO data", file=sys.stderr)
        return 1
    print(_format_slo_rows(rows))
    bad = [r for r in rows if r.get("alerting") or not r.get("ok")]
    return 1 if bad else 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-emts",
        description=(
            "EMTS: evolutionary scheduling of parallel task graphs "
            "(reproduction of Hunold & Lepping, CLUSTER 2011)"
        ),
    )
    parser.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default="warning",
        help="verbosity of repro.* loggers (default: warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_ptg_options(p, require_kind=True):
        p.add_argument(
            "--kind",
            choices=["fft", "strassen", "daggen"],
            default="daggen" if not require_kind else None,
            required=require_kind,
            help="PTG family to generate",
        )
        p.add_argument(
            "--size",
            type=int,
            default=50,
            help="FFT size (power of two) or daggen task count",
        )
        p.add_argument("--width", type=float, default=0.5)
        p.add_argument("--regularity", type=float, default=0.5)
        p.add_argument("--density", type=float, default=0.5)
        p.add_argument("--jump", type=int, default=1)
        p.add_argument("--seed", type=int, default=None)

    def _worker_count(text):
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"worker count must be >= 0, got {value}"
            )
        return value

    def add_evaluator_options(p):
        p.add_argument(
            "--workers",
            type=_worker_count,
            default=0,
            help=(
                "fitness-evaluation worker processes "
                "(0/1 = serial, the default)"
            ),
        )
        p.add_argument(
            "--no-fitness-cache",
            action="store_true",
            help="disable makespan memoization of duplicate offspring",
        )
        p.add_argument(
            "--profile",
            metavar="PATH",
            default=None,
            help=(
                "run under cProfile, dump binary stats to PATH and "
                "print the top cumulative-time entries"
            ),
        )
        p.add_argument(
            "--verify",
            choices=["off", "sample", "full"],
            default="off",
            help=(
                "differentially verify makespans against every "
                "scheduling engine (sample = cheap spot checks, "
                "full = every evaluation)"
            ),
        )
        p.add_argument(
            "--islands",
            type=int,
            default=0,
            help=(
                "0 = classic panmictic EMTS (default); >= 1 runs the "
                "island model (mu single-parent islands with ring "
                "migration) in that many execution shards — the shard "
                "count never changes the result"
            ),
        )
        p.add_argument(
            "--migration-interval",
            type=int,
            default=1,
            metavar="G",
            help=(
                "generations between island ring migrations "
                "(island mode only; default 1)"
            ),
        )

    def add_obs_options(p):
        p.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help=(
                "write a structured JSONL run trace here (summarize "
                "with 'repro-emts report-trace PATH')"
            ),
        )
        p.add_argument(
            "--metrics-out",
            metavar="PATH",
            default=None,
            help=(
                "write the run's metrics registry here on exit "
                "(.prom = Prometheus exposition, otherwise JSON)"
            ),
        )

    g = sub.add_parser("generate", help="generate a PTG file")
    add_ptg_options(g)
    g.add_argument("output", help="output path (.json or .dot)")
    g.set_defaults(func=_cmd_generate)

    s = sub.add_parser("schedule", help="schedule a PTG")
    s.add_argument(
        "--ptg", help="PTG JSON file (omit to generate one)", default=None
    )
    add_ptg_options(s, require_kind=False)
    s.add_argument(
        "--platform",
        default="grelon",
        help="platform preset (chti | grelon)",
    )
    s.add_argument(
        "--model", default="model2", help="execution-time model"
    )
    s.add_argument(
        "--algorithm",
        default="emts5",
        help="emts5 | emts10 | mcpa | hcpa | cpa | ...",
    )
    s.add_argument(
        "--gantt", action="store_true", help="print an ASCII Gantt chart"
    )
    s.add_argument("--svg", default=None, help="write a Gantt SVG here")
    s.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "journal a resumable checkpoint here after every EMTS "
            "generation (EMTS algorithms only)"
        ),
    )
    s.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "resume an interrupted EMTS run from this checkpoint "
            "(bit-identical to an uninterrupted run)"
        ),
    )
    s.add_argument(
        "--max-wall-time",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "hard wall-clock budget; the run stops gracefully at the "
            "next generation boundary once it expires"
        ),
    )
    add_evaluator_options(s)
    add_obs_options(s)
    s.set_defaults(func=_cmd_schedule)

    o = sub.add_parser(
        "online",
        help=(
            "execute a schedule reactively under injected faults "
            "(crashes, failures, stragglers) with frontier "
            "rescheduling"
        ),
    )
    o.add_argument(
        "--ptg", help="PTG JSON file (omit to generate one)", default=None
    )
    add_ptg_options(o, require_kind=False)
    o.add_argument(
        "--platform",
        default="grelon",
        help="platform preset (chti | grelon)",
    )
    o.add_argument(
        "--model", default="model2", help="execution-time model"
    )
    o.add_argument(
        "--algorithm",
        default="mcpa",
        help="planner for the initial schedule (mcpa | hcpa | emts5 ...)",
    )
    o.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="per-processor crash probability (never kills them all)",
    )
    o.add_argument(
        "--failure-rate",
        type=float,
        default=0.0,
        help="per-task transient-failure probability",
    )
    o.add_argument(
        "--straggler-rate",
        type=float,
        default=0.0,
        help="per-task straggler probability",
    )
    o.add_argument(
        "--straggler-factor",
        type=float,
        default=2.0,
        help="duration inflation applied to straggling tasks",
    )
    o.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help=(
            "seed for sampling the fault plan (independent of --seed "
            "so the same faults can hit different plans)"
        ),
    )
    o.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="retries per task before the run aborts",
    )
    o.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="absolute completion deadline in simulated seconds",
    )
    o.add_argument(
        "--deadline-factor",
        type=float,
        default=None,
        metavar="F",
        help=(
            "deadline as a multiple of the planned makespan "
            "(e.g. 1.2 = 20%% slack)"
        ),
    )
    o.add_argument(
        "--reaction-budget",
        type=int,
        default=2048,
        metavar="EVALS",
        help=(
            "total frontier-mapper evaluations available for "
            "rescheduling; exhausting it degrades the reaction from "
            "evolution to repair to greedy patching"
        ),
    )
    add_obs_options(o)
    o.set_defaults(func=_cmd_online)

    f = sub.add_parser("figure", help="regenerate a paper figure")
    f.add_argument(
        "number", help="figure number (1-6) or 'all'"
    )
    f.add_argument("--seed", type=int, default=None)
    f.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="corpus scale for figures 4/5 (1.0 = full paper corpus)",
    )
    f.add_argument("--samples", type=int, default=200_000)
    f.add_argument("--output-dir", default=None)
    f.set_defaults(func=_cmd_figure)

    r = sub.add_parser(
        "runtime", help="measure EMTS run times (Section V)"
    )
    r.add_argument("--seed", type=int, default=None)
    r.add_argument("--repetitions", type=int, default=3)
    add_evaluator_options(r)
    r.set_defaults(func=_cmd_runtime)

    sc = sub.add_parser(
        "scalability",
        help="sweep EMTS's gain over MCPA across platform sizes",
    )
    sc.add_argument("--seed", type=int, default=None)
    sc.add_argument("--size", type=int, default=50)
    sc.add_argument("--instances", type=int, default=3)
    sc.add_argument(
        "--sizes",
        default="10,20,40,80,120,160",
        help="comma-separated processor counts",
    )
    sc.set_defaults(func=_cmd_scalability)

    cv = sub.add_parser(
        "convergence",
        help="best-vs-generation trajectories of EMTS5/EMTS10",
    )
    cv.add_argument("--seed", type=int, default=None)
    cv.add_argument("--size", type=int, default=50)
    cv.add_argument("--instances", type=int, default=3)
    cv.add_argument("--platform", default="grelon")
    cv.add_argument("--model", default="model2")
    add_evaluator_options(cv)
    cv.set_defaults(func=_cmd_convergence)

    ca = sub.add_parser(
        "campaign",
        help=(
            "run a figure sweep as a crash-only, resumable campaign "
            "(subprocess isolation, retries, quarantine)"
        ),
    )
    ca.add_argument(
        "--figure",
        type=int,
        default=4,
        choices=[4, 5],
        help="which relative-makespan figure to run",
    )
    ca.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help=(
            "campaign state directory; re-running with the same "
            "arguments resumes from it"
        ),
    )
    ca.add_argument("--seed", type=int, default=None)
    ca.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="corpus scale (1.0 = full paper corpus)",
    )
    ca.add_argument(
        "--trial-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="wall-clock limit per trial attempt",
    )
    ca.add_argument(
        "--verify",
        choices=["off", "sample", "full"],
        default="off",
        help=(
            "differentially verify makespans inside every EMTS trial "
            "(sample = cheap spot checks, full = every evaluation)"
        ),
    )
    ca.add_argument(
        "--status",
        action="store_true",
        help="report the campaign directory's progress and exit",
    )
    ca.add_argument(
        "--quiet", action="store_true", help="suppress per-trial lines"
    )
    add_obs_options(ca)
    ca.set_defaults(func=_cmd_campaign)

    rt = sub.add_parser(
        "report-trace",
        help="summarize a --trace JSONL file (runs, phases, campaigns)",
    )
    rt.add_argument(
        "trace",
        help=(
            "trace file written by --trace, or a service trace "
            "directory with --service"
        ),
    )
    rt.add_argument(
        "--service",
        action="store_true",
        help=(
            "treat TRACE as a daemon --trace-dir: join the per-process "
            "shards into causal span trees and render one request "
            "waterfall per job"
        ),
    )
    rt.set_defaults(func=_cmd_report_trace)

    c = sub.add_parser("corpus", help="build the evaluation corpus")
    c.add_argument("--seed", type=int, default=None)
    c.add_argument("--scale", type=float, default=1.0)
    c.add_argument("--output", default=None)
    c.set_defaults(func=_cmd_corpus)

    sv = sub.add_parser(
        "serve",
        help="run the scheduling-as-a-service HTTP daemon",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port; 0 picks a free one (printed on startup)",
    )
    sv.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="warm worker threads executing EMTS runs (default: 2)",
    )
    sv.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help=(
            "job spool directory: jobs and run checkpoints persist "
            "here, so a drained/crashed daemon resumes on restart "
            "(default: in-memory only)"
        ),
    )
    sv.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="global queue depth before 429 backpressure",
    )
    sv.add_argument(
        "--tenant-quota",
        type=int,
        default=64,
        help="max queued jobs per tenant before 429",
    )
    sv.add_argument(
        "--result-cache-size",
        type=int,
        default=256,
        help="entries in the cross-request result cache",
    )
    sv.add_argument(
        "--warm-problems",
        type=int,
        default=32,
        help="prepared problems kept warm per worker",
    )
    sv.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "distributed-tracing shard directory: the server and each "
            "worker attempt write JSONL span shards here, joined by "
            "`report-trace --service DIR` (default: tracing disabled)"
        ),
    )
    sv.set_defaults(func=_cmd_serve)

    so = sub.add_parser(
        "slo",
        help="evaluate service-level objectives (live daemon or bench files)",
    )
    so.add_argument("--host", default="127.0.0.1")
    so.add_argument("--port", type=int, default=8787)
    so.add_argument(
        "--bench",
        nargs="+",
        default=None,
        metavar="FILE",
        help=(
            "evaluate committed BENCH_*.json baselines against the "
            "pinned SLO budgets instead of querying a live daemon; "
            "exits non-zero if any baseline violates its budget"
        ),
    )
    so.set_defaults(func=_cmd_slo)

    sb = sub.add_parser(
        "submit",
        help="submit a scheduling job to a running daemon",
    )
    sb.add_argument("--host", default="127.0.0.1")
    sb.add_argument("--port", type=int, default=8787)
    sb.add_argument(
        "--ptg", help="PTG JSON file (omit to generate one)", default=None
    )
    add_ptg_options(sb, require_kind=False)
    sb.add_argument(
        "--platform",
        default="grelon",
        help="platform preset (chti | grelon)",
    )
    sb.add_argument(
        "--model", default="model2", help="execution-time model"
    )
    sb.add_argument(
        "--algorithm", default="emts5", help="emts5 | emts10"
    )
    sb.add_argument(
        "--generations",
        type=int,
        default=None,
        help="override the preset's generation budget",
    )
    sb.add_argument(
        "--max-wall-time",
        type=float,
        metavar="SECONDS",
        default=None,
        help="server-side wall-clock budget for the run",
    )
    sb.add_argument("--tenant", default="default")
    sb.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority 0 (default) .. 9 (highest)",
    )
    sb.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="give up after this many seconds (exit code 124)",
    )
    sb.add_argument(
        "--retries",
        type=int,
        default=5,
        help=(
            "retry transient failures (connection loss, 429/503) up to "
            "this many times with jittered backoff; 0 disables retries"
        ),
    )
    sb.add_argument(
        "--idempotency-key",
        default=None,
        metavar="KEY",
        help=(
            "explicit idempotency key for the submission (a fresh one "
            "is generated when omitted); resubmitting the same key "
            "returns the original job instead of enqueuing a duplicate"
        ),
    )
    sb.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        help="job status polling period in seconds",
    )
    sb.add_argument(
        "--json",
        action="store_true",
        help="print the full response document as JSON",
    )
    sb.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the response document to this file",
    )
    sb.set_defaults(func=_cmd_submit)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_output=args.log_json)
    try:
        if getattr(args, "profile", None):
            return _run_profiled(args.func, args)
        return args.func(args)
    except KeyboardInterrupt:  # pragma: no cover - timing dependent
        # EMTS runs trap SIGINT themselves; anything else (generation,
        # figures, heuristics) has no partial result worth saving
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
