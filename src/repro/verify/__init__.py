"""Independent schedule verification (:mod:`repro.verify`).

Public API:

* :class:`ScheduleVerifier` / :class:`VerificationReport` — check every
  structural invariant of a built :class:`~repro.mapping.Schedule`
  (precedence with exact durations, processor exclusivity, allocation
  sanity, finite times, makespan consistency) with a stable ``kind`` tag
  per violation (:data:`VIOLATION_KINDS`).
* :func:`differential_check` / :class:`DifferentialReport` — replay one
  allocation through every available scheduling engine (native C loop,
  numpy loop, reference mapper, discrete-event simulator) and fail
  loudly the moment any two disagree.
* :class:`VerifyingEvaluator` — wrap a fitness evaluator so its results
  are verified online, in ``"sample"`` or ``"full"`` mode
  (:data:`VERIFY_MODES`).
"""

from __future__ import annotations

from .differential import DifferentialReport, differential_check
from .evaluator import (
    DEFAULT_SAMPLE_INTERVAL,
    VERIFY_MODES,
    VerifyingEvaluator,
)
from .verifier import VIOLATION_KINDS, ScheduleVerifier, VerificationReport

__all__ = [
    "ScheduleVerifier",
    "VerificationReport",
    "VIOLATION_KINDS",
    "differential_check",
    "DifferentialReport",
    "VerifyingEvaluator",
    "VERIFY_MODES",
    "DEFAULT_SAMPLE_INTERVAL",
]
