"""Online verification of fitness evaluations.

:class:`VerifyingEvaluator` wraps any fitness evaluator (serial, pool,
memoized, or a chaos wrapper) and differentially verifies the makespans
it returns, behind the same ``verify={off,sample,full}`` knob the CLI
and :class:`~repro.core.config.EMTSConfig` expose:

* ``"off"`` — no wrapper is built at all (zero overhead);
* ``"sample"`` — every batch is scanned for NaN (a NaN is never a
  makespan), and one finite value per ``sample_interval`` submitted
  genomes is replayed through the full differential check.  Cheap
  enough to leave on in CI and in long campaigns;
* ``"full"`` — every finite value of every batch is differentially
  verified.  This is the chaos-suite setting: a corrupted kernel result
  cannot survive a single batch.

Rejected evaluations (``inf`` under ``abort_above``) are skipped — a
rejection is a bound-dependent marker, not a makespan — so verification
never perturbs the rejection strategy's semantics.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError, VerificationError
from ..graph import PTG
from ..timemodels import TimeTable
from .differential import differential_check

__all__ = ["VerifyingEvaluator", "VERIFY_MODES", "DEFAULT_SAMPLE_INTERVAL"]

#: Recognized verification modes, in increasing order of cost.
VERIFY_MODES = ("off", "sample", "full")

#: Default genome budget between sampled differential checks.  One full
#: differential replay (five engines, including the pure-Python
#: reference mapper and the discrete-event simulator) costs a few
#: milliseconds — roughly a hundred compiled fitness calls — so a check
#: every 4096 submissions keeps the overhead of ``verify="sample"``
#: under 5 % on the benchmark workload (measured ~3 % on the 100-task
#: daggen batch of ``benchmarks/test_evaluator_bench.py``).
DEFAULT_SAMPLE_INTERVAL = 4096


class VerifyingEvaluator:
    """Differentially verify the values another evaluator returns.

    Implements the same duck-typed interface as every evaluator wrapper
    (``evaluate``, ``genome_key``, ``stats``, ``close``), so it stacks
    on top of the memoization cache — or a chaos wrapper — transparently.

    Parameters
    ----------
    inner:
        The evaluator whose results are checked.
    ptg, table:
        The scheduling problem the genomes belong to.
    mode:
        ``"sample"`` or ``"full"`` (building the wrapper at all implies
        verification is on; ``create_evaluator`` handles ``"off"``).
    sample_interval:
        Submitted-genome budget between sampled checks.
    """

    def __init__(
        self,
        inner,
        ptg: PTG,
        table: TimeTable,
        mode: str = "sample",
        sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        if mode not in ("sample", "full"):
            raise ConfigurationError(
                f"VerifyingEvaluator mode must be 'sample' or 'full', "
                f"got {mode!r}"
            )
        if sample_interval < 1:
            raise ConfigurationError(
                f"sample_interval must be >= 1, got {sample_interval}"
            )
        self.inner = inner
        self.ptg = ptg
        self.table = table
        self.mode = mode
        self.sample_interval = int(sample_interval)
        #: Genomes differentially verified so far.
        self.verified = 0
        #: Divergences detected (the raise interrupts the run, so this
        #: is only ever observed > 0 by code that catches the error).
        self.divergences = 0
        #: Wall-clock seconds spent inside differential replays — the
        #: verification overhead a run's phase breakdown reports.
        self.verify_seconds = 0.0
        # sampling counter: the very first batch is always sampled, so
        # a corrupted kernel is caught at run start, not after hours
        self._budget = 0

    # -- evaluator interface -------------------------------------------
    @property
    def stats(self):
        """The wrapped evaluator's counters."""
        return self.inner.stats

    def genome_key(self, genome: np.ndarray) -> bytes:
        """Delegate cache-key computation to the wrapped stack.

        Walks ``.inner`` wrappers until one (a backend, usually) exposes
        ``genome_key`` — the memoization cache sits between this wrapper
        and the backend and does not re-export it.
        """
        obj = self.inner
        while obj is not None:
            key_fn = getattr(obj, "genome_key", None)
            if key_fn is not None:
                return key_fn(genome)
            obj = getattr(obj, "inner", None)
        raise AttributeError(
            "no evaluator in the wrapped stack exposes genome_key"
        )

    def close(self) -> None:
        """Release the wrapped evaluator's resources."""
        self.inner.close()

    def __enter__(self) -> "VerifyingEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __call__(self, genome: np.ndarray) -> float:
        """Single-genome convenience entry point."""
        return self.evaluate([genome])[0]

    # ------------------------------------------------------------------
    def _verify_one(self, genome: np.ndarray, value: float) -> None:
        t0 = time.perf_counter()
        try:
            differential_check(
                self.ptg, self.table, genome, expected=value
            )
        except VerificationError:
            self.divergences += 1
            raise
        finally:
            self.verify_seconds += time.perf_counter() - t0
        self.verified += 1

    def _post_check(self, genomes, values: list[float]) -> None:
        """NaN scan plus (sampled or full) differential replay.

        ``genomes`` is any sequence of genome rows — a list or a
        stacked ``(B, V)`` block — matching ``values`` positionally.
        """
        # NaN scan in every mode: no engine produces NaN, so one in the
        # result stream is corruption by definition (vectorized — this
        # runs on every batch, so it must cost next to nothing)
        arr = np.asarray(values, dtype=np.float64)
        nan_mask = np.isnan(arr)
        if nan_mask.any():
            self.divergences += 1
            i = int(np.flatnonzero(nan_mask)[0])
            raise VerificationError(
                f"evaluator returned NaN for genome {i} of the "
                f"batch — no scheduling engine produces NaN",
                kind="engine-divergence",
            )
        if self.mode == "full":
            for genome, value in zip(genomes, values):
                if np.isfinite(value):
                    self._verify_one(genome, value)
        else:
            self._budget -= len(values)
            if self._budget <= 0:
                for genome, value in zip(genomes, values):
                    if np.isfinite(value):
                        self._verify_one(genome, value)
                        self._budget = self.sample_interval
                        break

    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        """Evaluate through the wrapped backend, then verify.

        Raises :class:`~repro.exceptions.VerificationError` when a
        returned value is NaN, or when a (sampled or full) differential
        replay disagrees with the backend.
        """
        genomes = list(genomes)
        values = self.inner.evaluate(genomes, abort_above=abort_above)
        self._post_check(genomes, values)
        return values

    def evaluate_batch(
        self,
        genome_block: np.ndarray,
        abort_above: float | None = None,
    ) -> list[float]:
        """Block-path analogue of :meth:`evaluate`, same checks."""
        block = np.asarray(genome_block)
        values = self.inner.evaluate_batch(
            block, abort_above=abort_above
        )
        self._post_check(block, values)
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VerifyingEvaluator({self.inner!r}, mode={self.mode!r}, "
            f"verified={self.verified})"
        )
