"""Independent schedule verification.

A :class:`ScheduleVerifier` re-derives every invariant of a
:class:`~repro.mapping.Schedule` from first principles — directly from
the PTG's edge list, the platform's processor count and (when given) the
time table — without trusting any intermediate the scheduler produced.
It is deliberately redundant with :meth:`Schedule.validate`: the point
of a verifier is that it shares *no code path* with the engines it
checks, so a bug in the scheduler's bookkeeping cannot hide itself.

Checked invariants, each with a stable ``kind`` tag on the raised
:class:`~repro.exceptions.VerificationError`:

========================  ==============================================
kind                      invariant
========================  ==============================================
``graph-mismatch``        the schedule belongs to the verifier's PTG
``platform-mismatch``     ... and to its cluster
``non-finite``            all start/finish values are finite
``negative-start``        no task starts before t = 0
``negative-duration``     no task finishes before it starts
``allocation-empty``      every task occupies at least one processor
``allocation-duplicate``  no task lists a processor twice
``allocation-range``      processor indices lie in ``[0, P)``
``wrong-duration``        ``finish - start == T(v, s(v))`` (needs table)
``duration-short``        executed duration >= ``T(v, s(v))`` — only in
                          :meth:`ScheduleVerifier.verify_execution`,
                          where stragglers may legally inflate durations
``precedence``            successors start after predecessors finish
``overlap``               no processor runs two tasks at once
``makespan-mismatch``     the reported makespan matches the placements
========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import VerificationError
from ..graph import PTG
from ..mapping import Schedule
from ..platform import Cluster
from ..timemodels import TimeTable

__all__ = ["ScheduleVerifier", "VerificationReport", "VIOLATION_KINDS"]

#: Numerical slack for start/finish comparisons (same as the mapper's).
_EPS = 1e-9

#: Every ``kind`` tag :class:`ScheduleVerifier` can emit.
VIOLATION_KINDS = (
    "graph-mismatch",
    "platform-mismatch",
    "non-finite",
    "negative-start",
    "negative-duration",
    "allocation-empty",
    "allocation-duplicate",
    "allocation-range",
    "wrong-duration",
    "duration-short",
    "precedence",
    "overlap",
    "makespan-mismatch",
)


@dataclass(frozen=True)
class VerificationReport:
    """Summary of one successful verification pass."""

    tasks: int
    processors: int
    edges_checked: int
    intervals_checked: int
    makespan: float
    durations_checked: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dur = "with" if self.durations_checked else "without"
        return (
            f"verified {self.tasks} tasks on {self.processors} "
            f"processors ({self.edges_checked} precedence edges, "
            f"{self.intervals_checked} intervals, {dur} duration "
            f"check); makespan {self.makespan:.6g}"
        )


class ScheduleVerifier:
    """Checks every invariant of a schedule against its problem.

    Parameters
    ----------
    ptg:
        The task graph the schedule claims to implement.
    table:
        Optional precomputed time table.  When given, each task's
        recorded duration must equal ``T(v, s(v))`` and the platform is
        taken from the table; without it the duration check is skipped
        (the structural invariants still hold).
    cluster:
        The platform; required when ``table`` is ``None``, derived from
        the table otherwise.
    """

    def __init__(
        self,
        ptg: PTG,
        table: TimeTable | None = None,
        cluster: Cluster | None = None,
    ) -> None:
        if table is not None and cluster is None:
            cluster = table.cluster
        if cluster is None:
            raise VerificationError(
                "ScheduleVerifier needs a table or a cluster",
                kind="platform-mismatch",
            )
        self.ptg = ptg
        self.table = table
        self.cluster = cluster

    # ------------------------------------------------------------------
    def verify(
        self,
        schedule: Schedule,
        expected_makespan: float | None = None,
    ) -> VerificationReport:
        """Raise :class:`VerificationError` on any violated invariant.

        ``expected_makespan`` additionally pins the value some other
        component reported for this schedule (an evaluator's fitness, a
        serialized file's ``makespan`` field) against the placements.
        Returns a :class:`VerificationReport` when everything holds.
        """
        ptg = self.ptg
        schedule_ptg = schedule.ptg
        if schedule_ptg is not ptg and schedule_ptg != ptg:
            raise VerificationError(
                f"schedule belongs to PTG {schedule_ptg.name!r}, "
                f"verifier was built for {ptg.name!r}",
                kind="graph-mismatch",
            )
        if schedule.cluster != self.cluster:
            raise VerificationError(
                f"schedule belongs to cluster "
                f"{schedule.cluster.name!r}, verifier was built for "
                f"{self.cluster.name!r}",
                kind="platform-mismatch",
            )

        V = ptg.num_tasks
        P = self.cluster.num_processors
        start = schedule.start
        finish = schedule.finish

        self._check_times(ptg, start, finish, V)
        self._check_allocations(ptg, schedule, P, V)
        if self.table is not None:
            self._check_durations(ptg, schedule, start, finish, V)
        edges = self._check_precedence(ptg, start, finish)
        intervals = self._check_exclusivity(ptg, schedule, start, finish, V)

        makespan = float(finish.max()) if V else 0.0
        if expected_makespan is not None and (
            not np.isfinite(expected_makespan)
            or abs(expected_makespan - makespan)
            > _EPS * max(1.0, abs(makespan))
        ):
            raise VerificationError(
                f"reported makespan {expected_makespan!r} disagrees "
                f"with the placements' completion time {makespan!r}",
                kind="makespan-mismatch",
            )
        return VerificationReport(
            tasks=V,
            processors=P,
            edges_checked=edges,
            intervals_checked=intervals,
            makespan=makespan,
            durations_checked=self.table is not None,
        )

    def verify_execution(
        self,
        schedule: Schedule,
        expected_makespan: float | None = None,
    ) -> VerificationReport:
        """Verify an *as-executed* schedule from the online runtime.

        Executed placements keep every structural invariant (precedence,
        exclusivity, allocation sanity, makespan consistency) but their
        durations may legitimately exceed the table's prediction —
        stragglers inflate execution times.  What can never happen is a
        task finishing *faster* than the model predicts for its
        processor count; that would mean the runtime dropped work.  So
        this mode replaces the exact ``wrong-duration`` equality with a
        one-sided ``duration-short`` bound when a table is available.
        """
        table, self.table = self.table, None
        try:
            report = self.verify(
                schedule, expected_makespan=expected_makespan
            )
        finally:
            self.table = table
        if table is None:
            return report
        start, finish = schedule.start, schedule.finish
        for v in range(self.ptg.num_tasks):
            predicted = table.time(v, int(schedule.proc_sets[v].size))
            got = float(finish[v] - start[v])
            if got < predicted - _EPS * max(1.0, abs(predicted)):
                raise VerificationError(
                    f"task {self.ptg.task(v).name!r} executed in "
                    f"{got!r} on {schedule.proc_sets[v].size} "
                    f"processors, faster than the {table.model_name!r} "
                    f"table's prediction {predicted!r}",
                    kind="duration-short",
                    task=v,
                )
        return VerificationReport(
            tasks=report.tasks,
            processors=report.processors,
            edges_checked=report.edges_checked,
            intervals_checked=report.intervals_checked,
            makespan=report.makespan,
            durations_checked=True,
        )

    # -- individual invariant groups -----------------------------------
    def _check_times(self, ptg, start, finish, V) -> None:
        finite = np.isfinite(start) & np.isfinite(finish)
        if not finite.all():
            bad = int(np.flatnonzero(~finite)[0])
            raise VerificationError(
                f"task {ptg.task(bad).name!r} has a non-finite "
                f"placement: start={start[bad]!r}, "
                f"finish={finish[bad]!r}",
                kind="non-finite",
                task=bad,
            )
        early = start < -_EPS
        if early.any():
            bad = int(np.flatnonzero(early)[0])
            raise VerificationError(
                f"task {ptg.task(bad).name!r} starts at "
                f"{start[bad]!r}, before t=0",
                kind="negative-start",
                task=bad,
            )
        backwards = finish < start - _EPS
        if backwards.any():
            bad = int(np.flatnonzero(backwards)[0])
            raise VerificationError(
                f"task {ptg.task(bad).name!r} finishes at "
                f"{finish[bad]!r}, before its start {start[bad]!r}",
                kind="negative-duration",
                task=bad,
            )

    def _check_allocations(self, ptg, schedule, P, V) -> None:
        for v in range(V):
            ps = schedule.proc_sets[v]
            if ps.size == 0:
                raise VerificationError(
                    f"task {ptg.task(v).name!r} occupies no "
                    "processors",
                    kind="allocation-empty",
                    task=v,
                )
            if np.unique(ps).size != ps.size:
                raise VerificationError(
                    f"task {ptg.task(v).name!r} lists a processor "
                    "twice",
                    kind="allocation-duplicate",
                    task=v,
                )
            lo, hi = int(ps.min()), int(ps.max())
            if lo < 0 or hi >= P:
                raise VerificationError(
                    f"task {ptg.task(v).name!r} uses processor "
                    f"{lo if lo < 0 else hi}, outside [0, {P})",
                    kind="allocation-range",
                    task=v,
                    processor=lo if lo < 0 else hi,
                )

    def _check_durations(self, ptg, schedule, start, finish, V) -> None:
        table = self.table
        for v in range(V):
            expected = table.time(v, int(schedule.proc_sets[v].size))
            got = float(finish[v] - start[v])
            if abs(got - expected) > _EPS * max(1.0, abs(expected)):
                raise VerificationError(
                    f"task {ptg.task(v).name!r} runs for {got!r} on "
                    f"{schedule.proc_sets[v].size} processors; the "
                    f"{table.model_name!r} table predicts "
                    f"{expected!r}",
                    kind="wrong-duration",
                    task=v,
                )

    def _check_precedence(self, ptg, start, finish) -> int:
        edges = 0
        for u, v in ptg.edges:
            edges += 1
            if start[v] < finish[u] - _EPS:
                raise VerificationError(
                    f"precedence violated: task {ptg.task(v).name!r} "
                    f"starts at {start[v]!r}, before its predecessor "
                    f"{ptg.task(u).name!r} finishes at {finish[u]!r}",
                    kind="precedence",
                    task=v,
                )
        return edges

    def _check_exclusivity(self, ptg, schedule, start, finish, V) -> int:
        per_proc: dict[int, list[tuple[float, float, int]]] = {}
        intervals = 0
        for v in range(V):
            s, f = float(start[v]), float(finish[v])
            for p in schedule.proc_sets[v]:
                per_proc.setdefault(int(p), []).append((s, f, v))
                intervals += 1
        for p, spans in per_proc.items():
            spans.sort()
            for (s1, f1, v1), (s2, f2, v2) in zip(spans, spans[1:]):
                if s2 < f1 - _EPS:
                    raise VerificationError(
                        f"overlap on processor {p}: it runs "
                        f"{ptg.task(v1).name!r} until {f1!r} but "
                        f"{ptg.task(v2).name!r} starts on it at "
                        f"{s2!r}",
                        kind="overlap",
                        task=v2,
                        processor=p,
                    )
        return intervals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleVerifier(ptg={self.ptg.name!r}, "
            f"cluster={self.cluster.name!r}, "
            f"durations={self.table is not None})"
        )
