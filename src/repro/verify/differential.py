"""Differential schedule verification: N engines, one answer.

The library evaluates the same list-scheduling algorithm through four
engines with very different failure modes:

* the **native C loop** (:mod:`repro.mapping._cscheduler`) — fastest,
  but a miscompiled or silently corrupted shared library would produce
  plausible-looking garbage;
* the kernel's **numpy loop** — the C loop's in-process fallback,
  sharing its precomputed arrays but none of its machine code;
* the **reference mapper** (:func:`repro.mapping.list_scheduler._run`)
  — pure Python over the original PTG/TimeTable objects, the oracle of
  the property suite;
* the **discrete-event simulator** (:func:`repro.simulator.simulate`)
  — replays the built schedule and independently enforces the platform
  semantics.

:func:`differential_check` replays one allocation through every
available engine, verifies the built schedule's invariants with
:class:`~repro.verify.ScheduleVerifier`, and raises
:class:`~repro.exceptions.VerificationError` (``kind =
"engine-divergence"``) the moment any two engines disagree.  Build-time
bit-identity tests cannot catch corruption that happens *after* the
build (a bad memory stick, a truncated cache file, a chaos fault);
differential replay at run time can.

The first three engines are bit-identical by contract, so they are
compared **exactly**; the simulator re-derives start times through its
own event queue and is compared within its documented tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SimulationError, VerificationError
from ..graph import PTG
from ..mapping import kernel_for, makespan_of, map_allocations
from ..simulator import simulate
from ..timemodels import TimeTable
from .verifier import ScheduleVerifier

__all__ = ["DifferentialReport", "differential_check"]

#: Relative tolerance granted to the simulator's re-derived makespan
#: (same bound :func:`repro.simulator.simulate` itself enforces).
_SIM_RTOL = 1e-6


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential replay.

    ``engines`` maps each engine that ran to the makespan it produced;
    ``makespan`` is their (agreed) value.
    """

    makespan: float
    engines: dict[str, float]
    invariants_checked: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(sorted(self.engines))
        return (
            f"{len(self.engines)} engines agree on makespan "
            f"{self.makespan:.6g} ({names})"
        )


def _divergence(engines: dict[str, float], detail: str) -> VerificationError:
    listing = ", ".join(
        f"{name}={value!r}" for name, value in engines.items()
    )
    return VerificationError(
        f"scheduling engines diverge: {detail} [{listing}]",
        kind="engine-divergence",
    )


def differential_check(
    ptg: PTG,
    table: TimeTable,
    alloc: np.ndarray,
    expected: float | None = None,
) -> DifferentialReport:
    """Replay ``alloc`` through every engine and compare the makespans.

    Parameters
    ----------
    ptg, table:
        The scheduling problem.
    alloc:
        The allocation vector to replay.
    expected:
        Optional makespan some component already reported for this
        allocation (an evaluator backend, a cache, a results file); it
        must match the engines exactly.  A NaN here is always a
        divergence — no engine produces one.

    Raises
    ------
    VerificationError
        ``kind="engine-divergence"`` when any two engines (or
        ``expected``) disagree; the verifier's structural kinds when
        the built schedule violates an invariant.
    """
    engines: dict[str, float] = {}
    if expected is not None:
        engines["reported"] = float(expected)
        if np.isnan(expected):
            raise _divergence(
                engines, "reported makespan is NaN"
            )

    kernel = kernel_for(table)
    if kernel.has_native:
        engines["kernel-c"] = float(kernel.makespan(alloc))
    engines["kernel-numpy"] = float(kernel.makespan_numpy(alloc))
    engines["reference"] = float(
        makespan_of(ptg, table, alloc, compiled=False)
    )

    exact = [
        (name, value)
        for name, value in engines.items()
        if name != "reported"
    ]
    first_name, first = exact[0]
    for name, value in exact[1:]:
        if value != first:
            raise _divergence(
                engines, f"{name} != {first_name}"
            )
    if expected is not None and float(expected) != first:
        raise _divergence(
            engines, f"reported != {first_name}"
        )

    # rebuild the full schedule through the reference engine, check every
    # structural invariant, then replay it in simulated time
    schedule = map_allocations(ptg, table, alloc, compiled=False)
    ScheduleVerifier(ptg, table).verify(
        schedule, expected_makespan=first
    )
    try:
        sim = simulate(schedule, table)
    except SimulationError as exc:
        raise VerificationError(
            f"simulator rejects the schedule the engines agreed on: "
            f"{exc}",
            kind="engine-divergence",
        ) from exc
    engines["simulator"] = float(sim.makespan)
    if abs(sim.makespan - first) > _SIM_RTOL * max(1.0, abs(first)):
        raise _divergence(engines, f"simulator != {first_name}")

    return DifferentialReport(
        makespan=first, engines=engines, invariants_checked=True
    )
