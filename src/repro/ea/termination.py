"""Termination criteria for the evolution strategy.

The paper runs EMTS for a fixed number of generations (EMTS5: 5, EMTS10:
10) but frames the whole design around "a given time constraint"
(Section II-C) — the EA must be usable under real-world scheduling
deadlines.  Criteria compose with OR semantics via
:class:`AnyOf`.
"""

from __future__ import annotations

import abc
import time

from ..exceptions import ConfigurationError
from .statistics import EvolutionLog

__all__ = [
    "TerminationCriterion",
    "GenerationLimit",
    "TimeBudget",
    "Deadline",
    "StopFlag",
    "TargetFitness",
    "StagnationLimit",
    "AnyOf",
]


class TerminationCriterion(abc.ABC):
    """Decides after each generation whether the run should stop."""

    def start(self) -> None:
        """Called once before generation 1 (resets internal clocks)."""

    @abc.abstractmethod
    def should_stop(self, log: EvolutionLog) -> bool:
        """True once the run should terminate."""


class GenerationLimit(TerminationCriterion):
    """Stop after ``limit`` generations (the paper's U)."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(
                f"generation limit must be >= 1, got {limit}"
            )
        self.limit = int(limit)

    def should_stop(self, log: EvolutionLog) -> bool:
        # the log contains one entry for the initial population
        # (generation 0) plus one per evolutionary step
        return log.generations - 1 >= self.limit


class TimeBudget(TerminationCriterion):
    """Stop once ``seconds`` of wall-clock time have elapsed."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ConfigurationError(
                f"time budget must be > 0 s, got {seconds}"
            )
        self.seconds = float(seconds)
        self._t0: float | None = None

    def start(self) -> None:
        self._t0 = time.perf_counter()

    def should_stop(self, log: EvolutionLog) -> bool:
        if self._t0 is None:
            self._t0 = time.perf_counter()
        return (time.perf_counter() - self._t0) >= self.seconds


class Deadline(TerminationCriterion):
    """Stop once an absolute :func:`time.perf_counter` instant passes.

    Unlike :class:`TimeBudget` (whose clock starts at ``start()``, i.e.
    at the beginning of the evolutionary loop), a deadline is anchored
    by the caller — EMTS pins it to the start of the whole run, so
    seeding time and, on resume, wall-clock already spent count against
    the budget.  ``start()`` deliberately does not reset it.
    """

    def __init__(self, at: float) -> None:
        self.at = float(at)

    def expired(self) -> bool:
        """True once the deadline instant has passed."""
        return time.perf_counter() >= self.at

    def should_stop(self, log: EvolutionLog) -> bool:
        return self.expired()


class StopFlag(TerminationCriterion):
    """Stop once an external flag (``threading.Event``-like) is set.

    The graceful-shutdown channel: a SIGINT/SIGTERM handler or an
    operator thread sets the flag and the run ends at the next
    generation boundary with its population and log intact.
    """

    def __init__(self, event) -> None:
        if not callable(getattr(event, "is_set", None)):
            raise ConfigurationError(
                "StopFlag needs an object with an is_set() method "
                "(e.g. threading.Event)"
            )
        self.event = event

    def should_stop(self, log: EvolutionLog) -> bool:
        return bool(self.event.is_set())


class TargetFitness(TerminationCriterion):
    """Stop once the best fitness reaches ``target`` (for tests/studies)."""

    def __init__(self, target: float) -> None:
        self.target = float(target)

    def should_stop(self, log: EvolutionLog) -> bool:
        if not log.entries:
            return False
        return log.entries[-1].best <= self.target


class StagnationLimit(TerminationCriterion):
    """Stop after ``patience`` generations without improvement."""

    def __init__(self, patience: int, rel_tol: float = 1e-9) -> None:
        if patience < 1:
            raise ConfigurationError(
                f"patience must be >= 1, got {patience}"
            )
        self.patience = int(patience)
        self.rel_tol = float(rel_tol)

    def should_stop(self, log: EvolutionLog) -> bool:
        if log.generations <= self.patience:
            return False
        traj = log.best_trajectory()
        recent, anchor = traj[-1], traj[-1 - self.patience]
        return recent >= anchor * (1.0 - self.rel_tol)


class AnyOf(TerminationCriterion):
    """Stop as soon as any of the wrapped criteria fires."""

    def __init__(self, *criteria: TerminationCriterion) -> None:
        if not criteria:
            raise ConfigurationError("AnyOf needs at least one criterion")
        self.criteria = criteria

    def start(self) -> None:
        for c in self.criteria:
            c.start()

    def should_stop(self, log: EvolutionLog) -> bool:
        return any(c.should_stop(log) for c in self.criteria)
