"""Generic evolution-strategy engine (paper Section III).

Built from scratch (the offline environment has no DEAP): individuals,
plus/comma survivor selection, a mutation/crossover operator algebra,
per-generation statistics and composable termination criteria.

Public API: :class:`EvolutionStrategy`, :class:`EvolutionResult`,
:class:`Individual`, the operators and the termination criteria.
"""

from .individual import Individual
from .operators import (
    CrossoverOperator,
    MutationOperator,
    OnePointCrossover,
    UniformIntegerMutation,
    UniformPointCrossover,
)
from .selection import best_of, comma_selection, plus_selection
from .statistics import EvolutionLog, GenerationStats, population_diversity
from .strategy import BatchFitness, EvolutionResult, EvolutionStrategy
from .termination import (
    AnyOf,
    Deadline,
    GenerationLimit,
    StagnationLimit,
    StopFlag,
    TargetFitness,
    TerminationCriterion,
    TimeBudget,
)

__all__ = [
    "Individual",
    "MutationOperator",
    "CrossoverOperator",
    "UniformIntegerMutation",
    "UniformPointCrossover",
    "OnePointCrossover",
    "plus_selection",
    "comma_selection",
    "best_of",
    "GenerationStats",
    "EvolutionLog",
    "population_diversity",
    "TerminationCriterion",
    "GenerationLimit",
    "TimeBudget",
    "Deadline",
    "StopFlag",
    "TargetFitness",
    "StagnationLimit",
    "AnyOf",
    "EvolutionStrategy",
    "EvolutionResult",
    "BatchFitness",
]
