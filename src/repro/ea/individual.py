"""Individuals of the evolution strategy.

An individual wraps an integer genome (for EMTS: the allocation vector,
paper Figure 2 — position ``i`` holds ``s(v_i)``) together with its cached
fitness.  Fitness is *minimized* throughout the library (the makespan
objective).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Individual"]


@dataclass
class Individual:
    """One member of an EA population.

    Parameters
    ----------
    genome:
        The decision vector; copied defensively and made read-only so a
        mutation operator can never silently corrupt a parent.
    fitness:
        Cached objective value (lower is better); ``None`` = not yet
        evaluated.
    origin:
        Provenance label for analysis, e.g. ``"seed:mcpa"`` or
        ``"mutation"`` (the paper seeds EMTS with heuristic solutions and
        it is useful to know which seeds survive selection).
    """

    genome: np.ndarray
    fitness: float | None = None
    origin: str = "unknown"
    generation: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        g = np.array(self.genome, dtype=np.int64, copy=True)
        g.setflags(write=False)
        self.genome = g
        if self.fitness is not None:
            self.fitness = float(self.fitness)

    # ------------------------------------------------------------------
    @property
    def evaluated(self) -> bool:
        """True once a fitness value has been assigned."""
        return self.fitness is not None

    def evaluated_fitness(self) -> float:
        """The fitness, raising if the individual was never evaluated."""
        if self.fitness is None:
            raise ValueError("individual has not been evaluated")
        return self.fitness

    def with_genome(
        self, genome: np.ndarray, origin: str, generation: int
    ) -> "Individual":
        """A new, unevaluated individual derived from this one."""
        return Individual(
            genome=genome,
            fitness=None,
            origin=origin,
            generation=generation,
        )

    def dominates(self, other: "Individual") -> bool:
        """Strictly better fitness than ``other`` (both evaluated)."""
        return self.evaluated_fitness() < other.evaluated_fitness()

    def __len__(self) -> int:
        return int(self.genome.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fit = (
            "unevaluated"
            if self.fitness is None
            else (
                "inf"
                if math.isinf(self.fitness)
                else f"{self.fitness:.6g}"
            )
        )
        return (
            f"Individual(len={len(self)}, fitness={fit}, "
            f"origin={self.origin!r})"
        )
