"""The (mu + lambda) / (mu, lambda) evolution-strategy engine.

Generic over genomes and fitness functions; EMTS instantiates it with
allocation-vector genomes, the Eq. 1 mutation operator and the
list-scheduling makespan as fitness.  Per generation (paper Section
III-E):

1. draw ``lambda`` offspring, each by mutating a uniformly chosen parent;
2. evaluate the offspring (``lambda`` fitness calls — the ``U * mu *
   lambda * C_map`` term of the paper's complexity analysis is an upper
   bound; the engine evaluates each individual exactly once);
3. select the ``mu`` survivors (plus: from parents ∪ offspring, comma:
   from offspring only).

The engine reports per-generation statistics and enforces arbitrary
termination criteria.  Fitness functions may return ``inf`` to reject an
individual (the mapper's ``abort_above`` rejection strategy does this).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..obs.log import get_logger
from ..obs.profiler import NULL_PROFILER
from .individual import Individual
from .operators import CrossoverOperator, MutationOperator
from .selection import best_of, comma_selection, plus_selection
from .statistics import EvolutionLog, GenerationStats
from .termination import GenerationLimit, TerminationCriterion

__all__ = ["EvolutionStrategy", "EvolutionResult", "BatchFitness"]

_log = get_logger("ea")

FitnessFunction = Callable[[np.ndarray], float]


def _sanitize_fitness(value: float, nan_count: list[int]) -> float:
    """NaN fitness is never comparable: degrade it to a rejection.

    A fitness backend (or an injected fault) returning NaN would poison
    every subsequent selection comparison; treating it as ``+inf``
    simply discards the individual, which is the graceful behaviour —
    the run continues on the remaining finite candidates.
    """
    if math.isnan(value):
        nan_count[0] += 1
        return float("inf")
    return value


class BatchFitness(Protocol):
    """Batch fitness backend (see :mod:`repro.core.evaluator`).

    Anything with an ``evaluate(genomes, abort_above=None) -> list[float]``
    method qualifies; the engine hands it whole offspring batches so the
    backend may parallelize or memoize across individuals.
    """

    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        """Fitness of every genome, in input order; ``inf`` rejects."""
        ...


Fitness = Union[FitnessFunction, BatchFitness]


@dataclass
class EvolutionResult:
    """Outcome of one evolution-strategy run."""

    best: Individual
    population: list[Individual]
    log: EvolutionLog

    @property
    def best_fitness(self) -> float:
        """Fitness of the best individual found."""
        return self.best.evaluated_fitness()

    @property
    def generations(self) -> int:
        """Number of evolutionary steps executed."""
        return self.log.generations - 1  # entry 0 is the initial population

    @property
    def evaluations(self) -> int:
        """Total number of fitness evaluations."""
        return self.log.total_evaluations


class EvolutionStrategy:
    """A (mu + lambda) or (mu, lambda) evolution strategy.

    Parameters
    ----------
    mu:
        Number of parents kept in the population.
    lam:
        Number of offspring generated per generation.
    mutation:
        The variation operator applied to every offspring.
    crossover:
        Optional recombination applied (to two uniformly drawn parents)
        *before* mutation, with probability ``crossover_rate``.  EMTS
        leaves this ``None`` (mutation-only, Section III-C).
    selection:
        ``"plus"`` (elitist, the paper's choice) or ``"comma"``.
    """

    def __init__(
        self,
        mu: int,
        lam: int,
        mutation: MutationOperator,
        crossover: CrossoverOperator | None = None,
        crossover_rate: float = 0.5,
        selection: str = "plus",
    ) -> None:
        if mu < 1:
            raise ConfigurationError(f"mu must be >= 1, got {mu}")
        if lam < 1:
            raise ConfigurationError(f"lambda must be >= 1, got {lam}")
        if selection not in ("plus", "comma"):
            raise ConfigurationError(
                f"selection must be 'plus' or 'comma', got {selection!r}"
            )
        if selection == "comma" and lam < mu:
            raise ConfigurationError(
                f"comma selection needs lambda >= mu ({lam} < {mu})"
            )
        if not (0.0 <= crossover_rate <= 1.0):
            raise ConfigurationError(
                f"crossover_rate must lie in [0, 1], got {crossover_rate}"
            )
        self.mu = int(mu)
        self.lam = int(lam)
        self.mutation = mutation
        self.crossover = crossover
        self.crossover_rate = float(crossover_rate)
        self.selection = selection

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        individuals: list[Individual],
        fitness: Fitness,
        abort_above: float | None = None,
    ) -> tuple[int, int]:
        """Assign fitness to unevaluated individuals.

        Returns ``(evaluations, cache_hits)``: the number of genomes
        submitted, and how many of those a memoizing backend served
        from its cache (0 for plain callables).
        """
        todo = [ind for ind in individuals if not ind.evaluated]
        if not todo:
            return 0, 0
        nan_count = [0]
        if hasattr(fitness, "evaluate"):
            stats = getattr(fitness, "stats", None)
            hits_before = stats.cache_hits if stats is not None else 0
            evaluate_batch = getattr(fitness, "evaluate_batch", None)
            if evaluate_batch is not None:
                # population-at-once: stack the genomes into one block
                # so the backend validates, hashes and scores them in
                # single vectorized (or native) passes
                values = evaluate_batch(
                    np.stack([ind.genome for ind in todo]),
                    abort_above=abort_above,
                )
            else:
                values = fitness.evaluate(
                    [ind.genome for ind in todo],
                    abort_above=abort_above,
                )
            if len(values) != len(todo):
                raise ConfigurationError(
                    f"batch evaluator returned {len(values)} values "
                    f"for {len(todo)} genomes"
                )
            for ind, value in zip(todo, values):
                ind.fitness = _sanitize_fitness(float(value), nan_count)
            hits = (
                stats.cache_hits - hits_before
                if stats is not None
                else 0
            )
        else:
            for ind in todo:
                ind.fitness = _sanitize_fitness(
                    float(fitness(ind.genome)), nan_count
                )
            hits = 0
        if nan_count[0]:
            _log.warning(
                "fitness backend returned NaN for %d of %d genomes; "
                "treating them as rejected (+inf)",
                nan_count[0],
                len(todo),
            )
        return len(todo), hits

    def evolve(
        self,
        initial: Sequence[Individual],
        fitness: Fitness,
        rng: np.random.Generator,
        termination: TerminationCriterion | None = None,
        total_generations: int | None = None,
        on_generation_start=None,
        abort_bound=None,
        on_generation_end=None,
        resume_log: EvolutionLog | None = None,
        start_generation: int = 0,
        profiler=NULL_PROFILER,
    ) -> EvolutionResult:
        """Run the strategy from the given starting individuals.

        Parameters
        ----------
        initial:
            Starting individuals (EMTS: the heuristic seeds plus mutated
            copies); padded/truncated to ``mu`` after evaluation.  When
            resuming (``resume_log`` given) this is the checkpointed
            survivor population, already evaluated.
        fitness:
            Objective to minimize — either a plain per-genome callable
            or a batch evaluator implementing :class:`BatchFitness`
            (which may parallelize and memoize).  Either form may
            produce ``inf`` to reject an individual.
        rng:
            Random source for parent choice and operators.
        termination:
            Stop condition; defaults to ``GenerationLimit(total_generations)``.
        total_generations:
            The annealing horizon ``U`` handed to the mutation operator;
            defaults to the generation limit when one is used.
        on_generation_start:
            Optional hook called with ``(parents, generation)`` before
            each generation's offspring are created.
        abort_bound:
            Optional callable ``parents -> float | None`` queried once
            per generation; a finite return value is forwarded to the
            batch evaluator as ``abort_above`` (the rejection strategy's
            cutoff, re-derived from the current survivor set and shipped
            to worker processes at dispatch time).  Ignored for plain
            callables, which handle rejection internally.
        on_generation_end:
            Optional hook called with ``(population, generation, log)``
            after each generation's survivors are selected and logged
            (and once for the initial population, with generation 0).
            EMTS uses this to journal checkpoints at every generation
            boundary.
        resume_log:
            A restored :class:`EvolutionLog` from a checkpoint.  When
            given, ``initial`` is taken as the already-evaluated
            survivor population: the initial-evaluation/selection step
            is skipped and the loop continues the restored history,
            keeping generation accounting (and ``GenerationLimit``)
            exact across the interruption.
        start_generation:
            Index of the last completed generation when resuming; the
            loop continues at ``start_generation + 1``.
        profiler:
            Phase profiler (:class:`repro.obs.PhaseProfiler`) that
            accumulates per-phase wall time; the strategy charges
            offspring creation to the ``"mutation"`` phase.  Defaults
            to the no-op :data:`repro.obs.NULL_PROFILER`.
        """
        if not initial:
            raise ConfigurationError("need at least one initial individual")
        if termination is None:
            if total_generations is None:
                raise ConfigurationError(
                    "provide either a termination criterion or "
                    "total_generations"
                )
            termination = GenerationLimit(total_generations)
        if total_generations is None:
            total_generations = (
                termination.limit
                if isinstance(termination, GenerationLimit)
                else 10
            )

        termination.start()

        if resume_log is not None:
            # continuing a checkpointed run: the survivors arrive
            # evaluated and the restored log already holds their
            # generation-0..start_generation history
            log = resume_log
            population = list(initial)
            unevaluated = [
                ind for ind in population if not ind.evaluated
            ]
            if unevaluated:
                raise ConfigurationError(
                    f"resumed population contains {len(unevaluated)} "
                    f"unevaluated individuals"
                )
            generation = int(start_generation)
        else:
            log = EvolutionLog()
            t0 = time.perf_counter()
            population = [
                Individual(
                    genome=ind.genome,
                    fitness=ind.fitness,
                    origin=ind.origin,
                    generation=0,
                )
                for ind in initial
            ]
            evals, hits = self._evaluate(population, fitness)
            population = plus_selection(
                population, [], min(self.mu, len(population))
            )
            log.append(
                GenerationStats.from_population(
                    0,
                    population,
                    evals,
                    time.perf_counter() - t0,
                    cache_hits=hits,
                )
            )
            if on_generation_end is not None:
                on_generation_end(population, 0, log)
            generation = 0

        while not termination.should_stop(log):
            generation += 1
            if on_generation_start is not None:
                on_generation_start(population, generation)
            bound = (
                abort_bound(population)
                if abort_bound is not None
                else None
            )
            t0 = time.perf_counter()
            offspring: list[Individual] = []
            with profiler.phase("mutation"):
                for _ in range(self.lam):
                    parent = population[
                        int(rng.integers(len(population)))
                    ]
                    genome = parent.genome
                    origin = "mutation"
                    if (
                        self.crossover is not None
                        and len(population) > 1
                        and rng.random() < self.crossover_rate
                    ):
                        mate = population[
                            int(rng.integers(len(population)))
                        ]
                        genome = self.crossover.crossover(
                            genome, mate.genome, rng
                        )
                        origin = "crossover+mutation"
                    child_genome = self.mutation.mutate(
                        genome, rng, generation, total_generations
                    )
                    offspring.append(
                        parent.with_genome(
                            child_genome, origin, generation
                        )
                    )
            evals, hits = self._evaluate(offspring, fitness, bound)
            if self.selection == "plus":
                population = plus_selection(
                    population, offspring, self.mu
                )
            else:
                population = comma_selection(
                    population, offspring, self.mu
                )
            log.append(
                GenerationStats.from_population(
                    generation,
                    population,
                    evals,
                    time.perf_counter() - t0,
                    cache_hits=hits,
                )
            )
            if on_generation_end is not None:
                on_generation_end(population, generation, log)

        return EvolutionResult(
            best=best_of(population), population=population, log=log
        )
