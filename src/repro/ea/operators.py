"""Variation-operator protocol and generic integer-vector operators.

EMTS is mutation-only (paper Section III-C: crossover on allocation
vectors of *dependent* tasks rarely helps, and mutation-only strategies
are known to suffice for several combinatorial problems).  The engine
nevertheless defines a small operator algebra so ablation studies can
swap in alternatives:

* :class:`MutationOperator` — the protocol (genome in, genome out);
* :class:`UniformIntegerMutation` — resample positions uniformly in the
  domain (the naive operator Section III-D argues against);
* :class:`UniformPointCrossover` / :class:`OnePointCrossover` — optional
  recombination for the ablation benchmarks.

EMTS's actual operator (Eq. 1 with the annealed mutation count) lives in
:mod:`repro.core.mutation` because it is paper-specific.
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "MutationOperator",
    "CrossoverOperator",
    "UniformIntegerMutation",
    "UniformPointCrossover",
    "OnePointCrossover",
]


class MutationOperator(abc.ABC):
    """Produces a child genome from one parent genome."""

    @abc.abstractmethod
    def mutate(
        self,
        genome: np.ndarray,
        rng: np.random.Generator,
        generation: int,
        total_generations: int,
    ) -> np.ndarray:
        """Return a *new* genome (the parent's array is read-only).

        ``generation`` / ``total_generations`` let operators anneal their
        step size over the run, as EMTS's operator does.
        """


class CrossoverOperator(abc.ABC):
    """Produces a child genome from two parent genomes."""

    @abc.abstractmethod
    def crossover(
        self,
        genome_a: np.ndarray,
        genome_b: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a new genome combining both parents."""


class UniformIntegerMutation(MutationOperator):
    """Resample a fraction of positions uniformly in ``[low, high]``.

    This is the "any uniform distribution could be applied" baseline of
    paper Section III-D; the ablation benchmarks show it converges worse
    than Eq. 1 because a change by ``k`` processors is as likely as a
    change by 1.
    """

    def __init__(self, low: int, high: int, rate: float = 0.33) -> None:
        if low > high:
            raise ConfigurationError(
                f"low ({low}) must be <= high ({high})"
            )
        if not (0.0 < rate <= 1.0):
            raise ConfigurationError(
                f"rate must lie in (0, 1], got {rate}"
            )
        self.low = int(low)
        self.high = int(high)
        self.rate = float(rate)

    def mutate(
        self,
        genome: np.ndarray,
        rng: np.random.Generator,
        generation: int,
        total_generations: int,
    ) -> np.ndarray:
        child = np.array(genome, copy=True)
        n = child.shape[0]
        m = max(1, int(round(self.rate * n)))
        pos = rng.choice(n, size=min(m, n), replace=False)
        child[pos] = rng.integers(
            self.low, self.high + 1, size=pos.shape[0]
        )
        return child


class UniformPointCrossover(CrossoverOperator):
    """Each position is taken from parent A or B with probability 1/2."""

    def crossover(
        self,
        genome_a: np.ndarray,
        genome_b: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if genome_a.shape != genome_b.shape:
            raise ConfigurationError(
                "crossover requires genomes of equal length"
            )
        mask = rng.random(genome_a.shape[0]) < 0.5
        return np.where(mask, genome_a, genome_b)


class OnePointCrossover(CrossoverOperator):
    """Classic single cut point."""

    def crossover(
        self,
        genome_a: np.ndarray,
        genome_b: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if genome_a.shape != genome_b.shape:
            raise ConfigurationError(
                "crossover requires genomes of equal length"
            )
        n = genome_a.shape[0]
        cut = int(rng.integers(1, n)) if n > 1 else 0
        return np.concatenate([genome_a[:cut], genome_b[cut:]])
