"""Survivor selection for evolution strategies.

The paper uses a **plus strategy** ("(mu + lambda)-EA"): the ``mu`` best
of the union of parents and offspring survive, so the best solution found
is always conserved and the population can never get worse across
generations (Schwefel & Rudolph).  A **comma strategy** (survivors drawn
from the offspring only) is provided for the selection ablation — it
trades the monotonicity guarantee for better escape from local optima.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .individual import Individual

__all__ = ["plus_selection", "comma_selection", "best_of"]


def _sorted_by_fitness(pool: list[Individual]) -> list[Individual]:
    # stable sort: among equal fitness, earlier individuals (parents
    # before offspring, older before younger) win — keeps runs
    # deterministic and mildly favours proven solutions
    return sorted(pool, key=lambda ind: ind.evaluated_fitness())


def plus_selection(
    parents: list[Individual],
    offspring: list[Individual],
    mu: int,
) -> list[Individual]:
    """The mu best of parents ∪ offspring (elitist; never regresses)."""
    if mu < 1:
        raise ConfigurationError(f"mu must be >= 1, got {mu}")
    pool = list(parents) + list(offspring)
    if len(pool) < mu:
        raise ConfigurationError(
            f"cannot select {mu} survivors from a pool of {len(pool)}"
        )
    return _sorted_by_fitness(pool)[:mu]


def comma_selection(
    parents: list[Individual],
    offspring: list[Individual],
    mu: int,
) -> list[Individual]:
    """The mu best of the offspring only (requires lambda >= mu)."""
    if mu < 1:
        raise ConfigurationError(f"mu must be >= 1, got {mu}")
    if len(offspring) < mu:
        raise ConfigurationError(
            f"comma selection needs at least mu={mu} offspring, got "
            f"{len(offspring)}"
        )
    return _sorted_by_fitness(list(offspring))[:mu]


def best_of(pool: list[Individual]) -> Individual:
    """The single fittest individual of ``pool``."""
    if not pool:
        raise ConfigurationError("cannot take the best of an empty pool")
    return min(pool, key=lambda ind: ind.evaluated_fitness())
