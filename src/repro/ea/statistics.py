"""Per-generation statistics and evolution logging.

The paper's experiments care about the trade-off between optimization
time and makespan (Section V reports EMTS run times alongside schedule
quality), so the log records wall-clock per generation as well as fitness
statistics and the number of fitness evaluations (mapper calls) — the
quantity the paper's complexity analysis ``O(U * mu * lambda * C_map)``
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .individual import Individual

__all__ = ["GenerationStats", "EvolutionLog", "population_diversity"]


def population_diversity(population: list[Individual]) -> float:
    """Mean per-position spread of the population's genomes.

    Defined as the average (over genome positions) standard deviation of
    the allele values across the population — 0 when every individual is
    identical.  Useful for convergence diagnostics: a plus-strategy that
    has collapsed to one genotype can only escape via mutation.
    """
    if not population:
        raise ValueError("population is empty")
    genomes = np.stack([ind.genome for ind in population])
    if genomes.shape[0] == 1:
        return 0.0
    return float(genomes.std(axis=0).mean())


@dataclass(frozen=True)
class GenerationStats:
    """Snapshot of the population after one generation."""

    generation: int
    best: float
    mean: float
    std: float
    worst: float
    evaluations: int
    elapsed_seconds: float
    #: Evaluations served by the fitness-cache (0 without memoization);
    #: ``evaluations - cache_hits`` mapper calls were actually executed.
    cache_hits: int = 0

    @classmethod
    def from_population(
        cls,
        generation: int,
        population: list[Individual],
        evaluations: int,
        elapsed_seconds: float,
        cache_hits: int = 0,
    ) -> "GenerationStats":
        fits = np.array(
            [ind.evaluated_fitness() for ind in population],
            dtype=np.float64,
        )
        finite = fits[np.isfinite(fits)]
        if finite.size == 0:
            finite = fits  # everything rejected: report the infs honestly
        return cls(
            generation=generation,
            best=float(fits.min()),
            mean=float(finite.mean()),
            std=float(finite.std()),
            worst=float(fits.max()),
            evaluations=evaluations,
            elapsed_seconds=elapsed_seconds,
            cache_hits=cache_hits,
        )

    def trace_attrs(self) -> dict:
        """This generation as ``generation`` trace-event attributes.

        Fitness statistics are deterministic for a fixed seed; the only
        wall-clock field is ``elapsed_seconds``, whose ``_seconds``
        suffix makes :func:`repro.obs.strip_timestamps` drop it — so
        same-seed traces stay bit-identical after stripping.
        """
        return {
            "generation": self.generation,
            "best": self.best,
            "mean": self.mean,
            "std": self.std,
            "worst": self.worst,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class EvolutionLog:
    """Chronological record of one EA run."""

    entries: list[GenerationStats] = field(default_factory=list)

    def append(self, stats: GenerationStats) -> None:
        """Record one generation."""
        self.entries.append(stats)

    @property
    def generations(self) -> int:
        """Number of recorded generations (including generation 0)."""
        return len(self.entries)

    @property
    def total_evaluations(self) -> int:
        """Total fitness evaluations across the run."""
        return sum(e.evaluations for e in self.entries)

    @property
    def total_cache_hits(self) -> int:
        """Total fitness-cache hits across the run."""
        return sum(e.cache_hits for e in self.entries)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across the run."""
        return sum(e.elapsed_seconds for e in self.entries)

    def best_trajectory(self) -> np.ndarray:
        """Best fitness per generation (length = generations)."""
        return np.array([e.best for e in self.entries], dtype=np.float64)

    def is_monotone(self) -> bool:
        """True when best fitness never worsened (plus-strategy property)."""
        traj = self.best_trajectory()
        return bool(np.all(np.diff(traj) <= 1e-12))

    def to_rows(self) -> list[dict]:
        """Rows suitable for CSV export."""
        return [
            {
                "generation": e.generation,
                "best": e.best,
                "mean": e.mean,
                "std": e.std,
                "worst": e.worst,
                "evaluations": e.evaluations,
                "cache_hits": e.cache_hits,
                "elapsed_seconds": e.elapsed_seconds,
            }
            for e in self.entries
        ]

    def __str__(self) -> str:
        lines = [
            "gen       best       mean        std  evals   hits   time[s]"
        ]
        for e in self.entries:
            lines.append(
                f"{e.generation:>3} {e.best:>10.4g} {e.mean:>10.4g} "
                f"{e.std:>10.4g} {e.evaluations:>6} {e.cache_hits:>6} "
                f"{e.elapsed_seconds:>8.3f}"
            )
        return "\n".join(lines)
