"""Baseline allocation heuristics (paper Sections II-B and III-B).

Public API:

* :class:`AllocationHeuristic` — the allocator protocol (first step of
  two-step scheduling; the second step is :mod:`repro.mapping`);
* :class:`SerialAllocator`, :class:`GreedyBestAllocator` — trivial
  baselines;
* :class:`CpaAllocator` — Critical Path and Area-based allocation with a
  non-monotone guard;
* :class:`HcpaAllocator` — CPA on a virtual reference cluster (identity
  on homogeneous platforms);
* :class:`McpaAllocator` / :class:`Mcpa2Allocator` — per-level bounded
  variants;
* :class:`DeltaCriticalAllocator` — the paper's Δ-critical seed for EMTS;
* :func:`cpa_quantities` — the ``(T_CP, T_A)`` pair driving the CPA loop.
"""

from .base import AllocationHeuristic, cpa_quantities
from .bicpa import BicpaAllocator
from .cpa import CpaAllocator, critical_path_mask
from .cpr import CprAllocator
from .delta_critical import DeltaCriticalAllocator
from .hcpa import HcpaAllocator
from .mcpa import Mcpa2Allocator, McpaAllocator
from .serial import GreedyBestAllocator, SerialAllocator

__all__ = [
    "AllocationHeuristic",
    "cpa_quantities",
    "critical_path_mask",
    "SerialAllocator",
    "GreedyBestAllocator",
    "CpaAllocator",
    "CprAllocator",
    "BicpaAllocator",
    "HcpaAllocator",
    "McpaAllocator",
    "Mcpa2Allocator",
    "DeltaCriticalAllocator",
]
