"""CPR — Critical Path Reduction (Radulescu et al., IPDPS 2001;
paper Section II-B).

CPR is the paper's canonical example of the *one-step* family: unlike the
two-step CPA variants it evaluates the **complete schedule** after every
candidate allocation change, so allocation and mapping decisions are
interleaved.  The loop:

1. start with one processor per task;
2. consider the critical-path tasks in order of decreasing
   execution-time gain; tentatively give the first one more processor
   and rebuild the whole schedule;
3. keep the change if the *makespan* (not just the critical path)
   improved, otherwise revert and try the next candidate;
4. stop when no critical-path task improves the makespan.

This gives CPR the quality advantage the paper attributes to one-step
algorithms — every decision is validated against the real packing — at
the cost it also names: a full ``O(E + V log V + V P)`` mapping per
candidate, ``O(V P)`` acceptances worst case.  The benchmark suite uses
CPR to quantify the one-step/two-step trade-off next to EMTS (which buys
schedule-level feedback more cheaply via the EA).
"""

from __future__ import annotations

import numpy as np

from ..graph import PTG
from ..mapping import makespan_of
from ..timemodels import TimeTable
from .base import AllocationHeuristic
from .cpa import _kernel_if_matching, critical_path_mask

__all__ = ["CprAllocator"]

_EPS = 1e-12


class CprAllocator(AllocationHeuristic):
    """Critical Path Reduction: schedule-validated allocation growth.

    Parameters
    ----------
    max_iterations:
        Safety cap on accepted growth steps (defaults to ``V * P``).
    """

    name = "cpr"

    def __init__(self, max_iterations: int | None = None) -> None:
        self.max_iterations = max_iterations

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        P = table.num_processors
        V = ptg.num_tasks
        alloc = np.ones(V, dtype=np.int64)
        best_ms = makespan_of(ptg, table, alloc)
        limit = (
            self.max_iterations
            if self.max_iterations is not None
            else V * P
        )
        idx = np.arange(V)
        kernel = _kernel_if_matching(ptg, table)

        for _ in range(limit):
            times = table.times_for(alloc)
            on_cp, _ = critical_path_mask(ptg, times, kernel)
            cand = on_cp & (alloc < P)
            if not cand.any():
                break
            # try candidates in order of decreasing execution-time gain
            grown = table.array[idx[cand], alloc[cand]]
            gains = times[cand] - grown
            order = idx[cand][np.argsort(-gains)]
            improved = False
            for v in order:
                alloc[v] += 1
                ms = makespan_of(
                    ptg, table, alloc, abort_above=best_ms
                )
                if ms < best_ms - _EPS:
                    best_ms = ms
                    improved = True
                    break
                alloc[v] -= 1
            if not improved:
                break
        return alloc
