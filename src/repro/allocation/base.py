"""Allocation-heuristic interface (the first step of two-step scheduling).

Two-step algorithms (paper Section II-B) first pick a processor count for
every task (*allocation*), then place the tasks on concrete processors
(*mapping*, shared by all heuristics — :mod:`repro.mapping`).  This module
defines the allocator protocol plus the CPA-family quantities ``T_CP``
(critical-path length) and ``T_A`` (average area).

All allocators consume a precomputed :class:`~repro.timemodels.TimeTable`
so they are — like EMTS — agnostic to the execution-time model, even
though their *decision logic* assumes monotonicity.
"""

from __future__ import annotations

import abc

import numpy as np

from ..graph import PTG, bottom_levels
from ..mapping import Schedule, map_allocations
from ..timemodels import TimeTable

__all__ = ["AllocationHeuristic", "cpa_quantities"]


def cpa_quantities(
    ptg: PTG, table: TimeTable, alloc: np.ndarray
) -> tuple[float, float]:
    """The pair ``(T_CP, T_A)`` driving the CPA-family allocation loops.

    ``T_CP`` is the critical-path length under the current allocations;
    ``T_A = (1/P) * sum_v s(v) * T(v, s(v))`` is the average per-processor
    work area.  CPA grows allocations while ``T_CP > T_A``, trading
    critical-path length against the area (and thus packing efficiency)
    of the schedule.
    """
    times = table.times_for(alloc)
    t_cp = float(bottom_levels(ptg, times).max())
    t_a = float(np.sum(alloc * times)) / table.num_processors
    return t_cp, t_a


class AllocationHeuristic(abc.ABC):
    """Base class for allocation heuristics.

    Subclasses implement :meth:`allocate`; :meth:`schedule` composes the
    allocation with the shared list-scheduling mapper.
    """

    #: Identifier used in experiment records and reports.
    name: str = "allocator"

    @abc.abstractmethod
    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        """Return an ``int64`` allocation vector in ``[1, P]^V``."""

    def schedule(self, ptg: PTG, table: TimeTable) -> Schedule:
        """Allocate and map in one call."""
        return map_allocations(ptg, table, self.allocate(ptg, table))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
