"""CPA — Critical Path and Area-based allocation
(Radulescu & van Gemund, ICPP 2001; paper Section II-B).

CPA starts from one processor per task and repeatedly gives one more
processor to a critical-path task, trading critical-path length ``T_CP``
against average area ``T_A``:

.. code-block:: text

    s(v) = 1 for all v
    while T_CP > T_A:
        C  = tasks on the critical path that can still grow
        v* = argmax_{v in C} [ T(v, s(v)) - T(v, s(v)+1) ]
        if gain(v*) <= 0: stop          # non-monotone guard, see below
        s(v*) += 1

**Non-monotone guard.**  Classic CPA assumes ``T(v, p)`` non-increasing
in ``p``, so the best gain is always >= 0 and the loop runs until
``T_CP <= T_A``.  Under the paper's Model 2 a larger allocation can be
*slower*; growing an allocation at negative gain would raise both ``T_CP``
and ``T_A`` and can cycle.  We therefore stop as soon as no critical-path
task improves by growing — which reproduces the paper's observation that
under Model 2 "allocations will grow up to a size of 4-8 processors before
the allocation procedure stops" (Section V-B).

Complexity: ``O(V (V + E) P)`` — each of at most ``V P`` growth steps
recomputes bottom levels in ``O(V + E)`` — matching the bound the paper
cites for (H)CPA's allocation procedure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..graph import PTG, bottom_levels, top_levels
from ..timemodels import TimeTable
from .base import AllocationHeuristic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..mapping import ScheduleKernel

__all__ = ["CpaAllocator", "critical_path_mask"]

_EPS = 1e-12


def _kernel_if_matching(
    ptg: PTG, table: TimeTable
) -> "ScheduleKernel | None":
    """The table's compiled kernel when it was built for ``ptg``.

    The CPA-family loops accept any (ptg, table) pair; the compiled
    sweeps only apply when the table's own PTG is being allocated
    (the overwhelmingly common case).
    """
    from ..mapping import kernel_for

    if ptg is table.ptg or ptg == table.ptg:
        return kernel_for(table)
    return None


def critical_path_mask(
    ptg: PTG, times: np.ndarray, kernel: "ScheduleKernel | None" = None
) -> tuple[np.ndarray, float]:
    """Boolean mask of tasks lying on *some* critical path, plus ``T_CP``.

    A task is on a critical path iff ``tl(v) + T(v) + (bl(v) - T(v)) ==
    T_CP`` i.e. ``tl(v) + bl(v) == T_CP`` (bottom level includes the
    task's own time).  Using the mask instead of a single concrete path
    lets the allocator consider every critical task — important when
    several parallel branches are equally critical.

    ``kernel`` (a :class:`~repro.mapping.ScheduleKernel` built for
    ``ptg``) computes both level vectors through the compiled CSR
    sweeps — bit-identical values, several times faster per growth step.
    """
    if kernel is not None:
        bl, tl = kernel.levels(times)
    else:
        bl = bottom_levels(ptg, times)
        tl = top_levels(ptg, times)
    t_cp = float(bl.max())
    on_cp = (tl + bl) >= t_cp * (1.0 - 1e-12) - _EPS
    return on_cp, t_cp


class CpaAllocator(AllocationHeuristic):
    """Critical Path and Area-based allocation.

    Parameters
    ----------
    allow_negative_gain:
        Disable the non-monotone guard and run the textbook loop (only
        safe with monotone models; used by tests to document why the
        guard exists).
    max_iterations:
        Hard safety bound on growth steps; ``None`` derives ``V * P``.
    """

    name = "cpa"

    def __init__(
        self,
        allow_negative_gain: bool = False,
        max_iterations: int | None = None,
    ) -> None:
        self.allow_negative_gain = bool(allow_negative_gain)
        self.max_iterations = max_iterations

    # hook points for subclasses (MCPA constrains candidates per level)
    def _candidate_mask(
        self,
        ptg: PTG,
        table: TimeTable,
        alloc: np.ndarray,
        on_cp: np.ndarray,
    ) -> np.ndarray:
        """Tasks eligible to receive one more processor this step."""
        return on_cp & (alloc < table.num_processors)

    def _on_grow(self, ptg: PTG, v: int, alloc: np.ndarray) -> None:
        """Notification hook after task ``v``'s allocation grew."""

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        P = table.num_processors
        V = ptg.num_tasks
        alloc = np.ones(V, dtype=np.int64)
        times = table.times_for(alloc)
        area = float(times.sum())  # = sum alloc * times at alloc == 1
        limit = (
            self.max_iterations
            if self.max_iterations is not None
            else V * P
        )

        # compiled CSR level sweeps for the per-step critical-path test
        # (bit-identical to the layered numpy sweeps)
        kernel = _kernel_if_matching(ptg, table)

        idx = np.arange(V)
        for _ in range(limit):
            on_cp, t_cp = critical_path_mask(ptg, times, kernel)
            if t_cp <= area / P:
                break
            cand = self._candidate_mask(ptg, table, alloc, on_cp)
            if not cand.any():
                break
            # gain of adding one processor, restricted to candidates
            grown = table.array[idx[cand], alloc[cand]]  # T(v, s+1)
            gains = times[cand] - grown
            best_pos = int(np.argmax(gains))
            best_gain = float(gains[best_pos])
            if not self.allow_negative_gain and best_gain <= _EPS:
                break
            v = int(idx[cand][best_pos])
            # update area incrementally: area += (s+1) T(v,s+1) - s T(v,s)
            s = int(alloc[v])
            t_old = float(times[v])
            t_new = float(table.array[v, s])  # column s == p = s+1
            area += (s + 1) * t_new - s * t_old
            alloc[v] = s + 1
            times[v] = t_new
            self._on_grow(ptg, v, alloc)
        return alloc
