"""MCPA — Modified CPA allocation (Bansal, Kumar & Singh, Parallel
Computing 2006; paper Section II-B) and the MCPA2 refinement
(Hunold, CCGrid 2010).

CPA ignores *task parallelism*: it happily grows a critical task's
allocation to the full machine even when the task has many concurrent
siblings that then serialize behind it.  MCPA "makes better use of the
potential task parallelism by bounding the allocation size per DAG level"
(paper): a task may only receive another processor while the **sum of the
allocations of its precedence level stays within the machine size**::

    grow s(v) only if  sum_{w in level(v)} s(w) < P

This is why, in the paper's experiments, MCPA is hard to beat on
regularly-shaped PTGs (FFT, Strassen, layered): their wide levels of
similar tasks are exactly what the bound protects.

**MCPA2** replaces the all-or-nothing level budget with a per-task cap
proportional to work: task ``v`` of level ``l`` may grow while

    s(v) < max(1, round(P * w(v) / W(l)))

where ``w(v)`` is the task's sequential time and ``W(l)`` the level's
total.  Big tasks of a level may thus take more than the even share
``P / |level|``, which helps when a level mixes long and short tasks.
MCPA2 is not part of the paper's evaluation (it compares MCPA and HCPA)
but is included for the ablation studies.
"""

from __future__ import annotations

import numpy as np

from ..graph import PTG, precedence_levels
from ..timemodels import TimeTable
from .cpa import CpaAllocator

__all__ = ["McpaAllocator", "Mcpa2Allocator"]


class McpaAllocator(CpaAllocator):
    """CPA with MCPA's per-precedence-level allocation budget."""

    name = "mcpa"

    def _candidate_mask(
        self,
        ptg: PTG,
        table: TimeTable,
        alloc: np.ndarray,
        on_cp: np.ndarray,
    ) -> np.ndarray:
        P = table.num_processors
        levels = precedence_levels(ptg)
        # total allocation currently claimed by each level
        level_sum = np.bincount(
            levels, weights=alloc, minlength=int(levels.max()) + 1
        )
        has_budget = level_sum[levels] < P
        return on_cp & (alloc < P) & has_budget


class Mcpa2Allocator(CpaAllocator):
    """CPA with MCPA2's work-proportional per-task caps."""

    name = "mcpa2"

    def _caps(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        P = table.num_processors
        levels = precedence_levels(ptg)
        seq = table.array[:, 0]  # T(v, 1)
        level_work = np.bincount(
            levels, weights=seq, minlength=int(levels.max()) + 1
        )
        share = P * seq / level_work[levels]
        return np.maximum(1, np.rint(share)).astype(np.int64)

    def _candidate_mask(
        self,
        ptg: PTG,
        table: TimeTable,
        alloc: np.ndarray,
        on_cp: np.ndarray,
    ) -> np.ndarray:
        caps = self._caps(ptg, table)
        return on_cp & (alloc < table.num_processors) & (alloc < caps)
