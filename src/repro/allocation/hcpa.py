"""HCPA — Heterogeneous Critical Path and Area allocation
(N'Takpé & Suter, ICPADS 2006; paper Section II-B).

HCPA extends CPA to heterogeneous multi-cluster platforms by computing
allocations on a *virtual reference cluster* and translating them to each
physical cluster via the ratio of processor speeds:

1. build a reference cluster with ``P_ref`` processors of speed
   ``s_ref``;
2. run the CPA allocation loop against the reference time table;
3. translate each task's reference allocation ``n_ref(v)`` into a physical
   allocation ``n(v) = clamp(round(n_ref(v) * s_ref / s_phys), 1, P)``.

On the paper's *homogeneous* platforms the natural reference is the
platform itself (``s_ref = s_phys``, ``P_ref = P``), so the translation is
the identity and HCPA's allocations coincide with CPA's — which is why the
paper treats "the allocation function of HCPA" as the canonical unbounded
CPA-style allocator, in contrast to MCPA's per-level bound.  We keep the
virtual-cluster machinery (with configurable reference speed) so the
implementation remains faithful to HCPA's definition and usable for
reference-speed experiments.
"""

from __future__ import annotations

import numpy as np

from ..graph import PTG
from ..platform import Cluster
from ..timemodels import TimeTable
from .base import AllocationHeuristic
from .cpa import CpaAllocator

__all__ = ["HcpaAllocator"]


class HcpaAllocator(AllocationHeuristic):
    """CPA on a virtual reference cluster, translated to the platform.

    Parameters
    ----------
    reference_speed_gflops:
        Speed of the virtual cluster's processors; ``None`` (default) uses
        the physical cluster's own speed, which on a homogeneous platform
        makes HCPA equal to CPA (see module docstring).
    model:
        Execution-time model used to build the reference table when a
        non-default reference speed is requested.  Not needed otherwise.
    """

    name = "hcpa"

    def __init__(
        self,
        reference_speed_gflops: float | None = None,
        model=None,
    ) -> None:
        self.reference_speed_gflops = reference_speed_gflops
        self.model = model
        self._cpa = CpaAllocator()

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        phys = table.cluster
        ref_speed = self.reference_speed_gflops
        if ref_speed is None or np.isclose(
            ref_speed, phys.speed_gflops
        ):
            # identity translation: allocate directly on the platform
            return self._cpa.allocate(ptg, table)

        if self.model is None:
            raise ValueError(
                "HcpaAllocator needs `model` to build the reference table "
                "when reference_speed_gflops differs from the platform"
            )
        reference = Cluster(
            name=f"{phys.name}-ref",
            num_processors=phys.num_processors,
            speed_gflops=float(ref_speed),
        )
        ref_table = TimeTable.build(self.model, ptg, reference)
        ref_alloc = self._cpa.allocate(ptg, ref_table)
        ratio = reference.speed_gflops / phys.speed_gflops
        translated = np.rint(ref_alloc * ratio).astype(np.int64)
        return np.clip(translated, 1, phys.num_processors)
