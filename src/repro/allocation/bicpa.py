"""BiCPA — bi-criteria CPA (Desprez & Suter, CCGrid 2010;
paper Section II-B).

BiCPA addresses a blind spot of plain CPA: CPA balances the critical
path against the average area of the *whole* machine, so on a large
cluster it stops growing allocations early and can leave most
processors idle even when using them would shorten the schedule (and
conversely can over-allocate when resources are scarce).  BiCPA
instead computes one CPA allocation for every *virtual* cluster size
``k = 1..P`` (the ``T_A`` balance is taken against ``k`` processors),
maps each candidate onto the **full** machine, and then picks a
candidate by a bi-criteria rule over (makespan, consumed work area):

* ``objective="product"`` (default): minimize ``makespan * area`` — a
  scale-free aggregation of the two criteria;
* ``objective="makespan"``: minimize makespan, breaking ties toward
  less area (the pure-performance end of BiCPA's Pareto front);
* ``objective="area"``: minimize area among candidates whose makespan
  is within ``tolerance`` of the best (the resource-frugal end).

The original article evaluates the full Pareto front; the aggregation
rules above correspond to the extreme and balanced picks and are
documented as our selection of that front.  ``step`` thins the virtual
sizes to every ``step``-th value to bound the ``O(P)`` CPA runs.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..graph import PTG
from ..mapping import makespan_of
from ..timemodels import TimeTable
from .base import AllocationHeuristic
from .cpa import CpaAllocator

__all__ = ["BicpaAllocator"]


class _VirtualCpa(CpaAllocator):
    """CPA whose T_A balance pretends the machine has ``virtual_p``
    processors while allocations stay bounded by the real ``P``."""

    def __init__(self, virtual_p: int) -> None:
        super().__init__()
        self.virtual_p = virtual_p

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        # Reuse the CPA loop but rescale the area test: CPA stops when
        # T_CP <= area / P; with a virtual size k the test becomes
        # T_CP <= area / k.  We implement it by bounding candidates to
        # k processors AND scaling the area denominator via a wrapper
        # table view is overkill — instead replicate the loop with the
        # virtual denominator.
        P = table.num_processors
        V = ptg.num_tasks
        cap = min(self.virtual_p, P)
        alloc = np.ones(V, dtype=np.int64)
        times = table.times_for(alloc)
        area = float(times.sum())
        idx = np.arange(V)
        from .cpa import _EPS, _kernel_if_matching, critical_path_mask

        kernel = _kernel_if_matching(ptg, table)
        for _ in range(V * cap):
            on_cp, t_cp = critical_path_mask(ptg, times, kernel)
            if t_cp <= area / cap:
                break
            cand = on_cp & (alloc < cap)
            if not cand.any():
                break
            grown = table.array[idx[cand], alloc[cand]]
            gains = times[cand] - grown
            best_pos = int(np.argmax(gains))
            if float(gains[best_pos]) <= _EPS:
                break
            v = int(idx[cand][best_pos])
            s = int(alloc[v])
            t_new = float(table.array[v, s])
            area += (s + 1) * t_new - s * float(times[v])
            alloc[v] = s + 1
            times[v] = t_new
        return alloc


class BicpaAllocator(AllocationHeuristic):
    """Bi-criteria CPA over virtual cluster sizes.

    Parameters
    ----------
    objective:
        Candidate-selection rule: ``"product"`` (default),
        ``"makespan"`` or ``"area"`` (see module docstring).
    step:
        Evaluate virtual sizes ``1, 1+step, 1+2*step, ... , P``.
    tolerance:
        Relative makespan slack used by the ``"area"`` objective.
    """

    name = "bicpa"

    def __init__(
        self,
        objective: str = "product",
        step: int = 1,
        tolerance: float = 0.05,
    ) -> None:
        if objective not in ("product", "makespan", "area"):
            raise ConfigurationError(
                f"objective must be product|makespan|area, got "
                f"{objective!r}"
            )
        if step < 1:
            raise ConfigurationError(f"step must be >= 1, got {step}")
        if tolerance < 0:
            raise ConfigurationError(
                f"tolerance must be >= 0, got {tolerance}"
            )
        self.objective = objective
        self.step = int(step)
        self.tolerance = float(tolerance)

    def _virtual_sizes(self, P: int) -> list[int]:
        sizes = list(range(1, P + 1, self.step))
        if sizes[-1] != P:
            sizes.append(P)
        return sizes

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        P = table.num_processors
        candidates: list[tuple[float, float, np.ndarray]] = []
        seen: set[bytes] = set()
        for k in self._virtual_sizes(P):
            alloc = _VirtualCpa(k).allocate(ptg, table)
            key = alloc.tobytes()
            if key in seen:
                continue  # many virtual sizes converge to one solution
            seen.add(key)
            ms = makespan_of(ptg, table, alloc)
            area = table.work_area(alloc)
            candidates.append((ms, area, alloc))

        if self.objective == "product":
            best = min(candidates, key=lambda c: c[0] * c[1])
        elif self.objective == "makespan":
            best = min(candidates, key=lambda c: (c[0], c[1]))
        else:  # area within tolerance of the best makespan
            best_ms = min(c[0] for c in candidates)
            eligible = [
                c
                for c in candidates
                if c[0] <= best_ms * (1.0 + self.tolerance)
            ]
            best = min(eligible, key=lambda c: (c[1], c[0]))
        return best[2]
