"""Δ-critical layered allocation — EMTS's third starting solution
(paper Section III-B, following Suter's Δ-critical task concept).

With one-processor bottom levels, the PTG's tasks are grouped by
precedence level (depth from the source).  Within each level ``l`` the
*Δ-critical* tasks are those whose bottom level is within a factor
``Δ`` of the level maximum::

    critical(l) = { v in level l : bl(v) >= Δ * max_{w in level l} bl(w) }

All processors of the machine are then shared among the critical tasks of
each level: each of the ``c_l`` critical tasks receives ``floor(P / c_l)``
processors, every non-critical task receives 1.  ``Δ = 0.9`` (the paper's
setting) counts tasks whose criticality is at most 10 % below the level
maximum as critical.

The heuristic deliberately over-allocates compared to CPA-style
area-balancing — it is designed as a *diverse* seed for the evolutionary
search, giving the EA a starting point from the "wide allocations" corner
of the search space, complementing the conservative MCPA/HCPA seeds.
"""

from __future__ import annotations

import numpy as np

from ..graph import PTG, bottom_levels, level_members
from ..timemodels import TimeTable
from .base import AllocationHeuristic

__all__ = ["DeltaCriticalAllocator"]


class DeltaCriticalAllocator(AllocationHeuristic):
    """Share the machine among the Δ-critical tasks of each level.

    Parameters
    ----------
    delta:
        Criticality threshold in ``[0, 1]``; the paper uses 0.9.
    """

    name = "delta-critical"

    def __init__(self, delta: float = 0.9) -> None:
        if not (0.0 <= delta <= 1.0):
            raise ValueError(f"delta must lie in [0, 1], got {delta}")
        self.delta = float(delta)

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        P = table.num_processors
        ones = np.ones(ptg.num_tasks, dtype=np.int64)
        # bottom levels under the all-ones allocation, as the paper states
        bl = bottom_levels(ptg, table.times_for(ones))
        alloc = np.ones(ptg.num_tasks, dtype=np.int64)
        for members in level_members(ptg):
            level_max = bl[members].max()
            critical = members[bl[members] >= self.delta * level_max]
            share = max(1, P // critical.size)
            alloc[critical] = share
        return alloc
