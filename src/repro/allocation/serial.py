"""Trivial allocators used as baselines and EA seeds.

* :class:`SerialAllocator` — one processor per task.  With it, the list
  scheduler degenerates to classic single-processor-task DAG scheduling;
  every non-trivial allocator must beat it whenever the PTG has less
  parallelism than the platform has processors.
* :class:`GreedyBestAllocator` — gives each task its *individually*
  fastest processor count (``argmin_p T(v, p)``) with no regard for
  packing.  Under a monotone model this is "all tasks take everything";
  its (usually poor) makespan illustrates why allocation must consider
  the whole graph.
"""

from __future__ import annotations

import numpy as np

from ..graph import PTG
from ..timemodels import TimeTable
from .base import AllocationHeuristic

__all__ = ["SerialAllocator", "GreedyBestAllocator"]


class SerialAllocator(AllocationHeuristic):
    """Every task runs on exactly one processor."""

    name = "serial"

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        return np.ones(ptg.num_tasks, dtype=np.int64)


class GreedyBestAllocator(AllocationHeuristic):
    """Every task gets its individually time-optimal processor count."""

    name = "greedy-best"

    def allocate(self, ptg: PTG, table: TimeTable) -> np.ndarray:
        # argmin over the table rows; +1 converts column to processor count
        return np.argmin(table.array, axis=1).astype(np.int64) + 1
