"""``python -m repro`` dispatches to the CLI."""

import sys

# An interrupt during interpreter startup (imports) or in a non-EMTS
# code path has no graceful-shutdown machinery to land in; exit with
# the conventional 130 instead of a traceback.
try:
    from .cli import main

    sys.exit(main())
except KeyboardInterrupt:  # pragma: no cover - timing dependent
    print("interrupted", file=sys.stderr)
    sys.exit(130)
