"""Schedule serialization.

Schedules are the hand-off artifact between the scheduler and whatever
executes the workflow (the paper's scenario: the PTG scheduler runs
inside a batch allocation granted by PBS).  The JSON format stores the
platform, per-task placements, and enough of the PTG (name + task names)
to detect mismatches on load; loading *requires* the original PTG so the
schedule can be re-validated against the real precedence constraints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import ScheduleError
from ..graph import PTG
from ..platform import Cluster, cluster_from_dict, cluster_to_dict
from .schedule import Schedule

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]

_FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Convert a schedule into a JSON-serializable dictionary."""
    return {
        "format": "repro-schedule",
        "version": _FORMAT_VERSION,
        "ptg_name": schedule.ptg.name,
        "platform": cluster_to_dict(schedule.cluster),
        "makespan": schedule.makespan,
        "tasks": [
            {
                "name": schedule.ptg.task(v).name,
                "start": float(schedule.start[v]),
                "finish": float(schedule.finish[v]),
                "processors": [
                    int(p) for p in schedule.proc_sets[v]
                ],
            }
            for v in range(schedule.ptg.num_tasks)
        ],
    }


def schedule_from_dict(
    data: dict[str, Any], ptg: PTG, validate: bool = True, table=None
) -> Schedule:
    """Rebuild a schedule against its original ``ptg``.

    Placements are matched by task *name*, so the document survives task
    reordering; unknown or missing tasks raise :class:`ScheduleError`.

    ``validate=True`` re-checks every structural invariant with
    :class:`repro.verify.ScheduleVerifier` — a tampered or corrupted
    document cannot round-trip into a schedule that violates precedence,
    overlaps processors, or misreports its makespan.  Passing the
    original ``table`` additionally pins each task's duration to
    ``T(v, s(v))``.
    """
    if not isinstance(data, dict):
        raise ScheduleError(
            f"schedule document must be a JSON object, got "
            f"{type(data).__name__}"
        )
    if data.get("format") != "repro-schedule":
        raise ScheduleError(
            f"not a repro schedule document "
            f"(format={data.get('format')!r})"
        )
    if int(data.get("version", -1)) != _FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format version "
            f"{data.get('version')!r}"
        )
    cluster: Cluster = cluster_from_dict(data["platform"])

    placements = {t["name"]: t for t in data["tasks"]}
    V = ptg.num_tasks
    missing = [
        t.name for t in ptg.tasks if t.name not in placements
    ]
    if missing:
        raise ScheduleError(
            f"schedule document lacks placements for {missing[:5]}"
        )
    if len(placements) != V:
        extra = set(placements) - {t.name for t in ptg.tasks}
        raise ScheduleError(
            f"schedule document has placements for unknown tasks: "
            f"{sorted(extra)[:5]}"
        )

    start = np.empty(V, dtype=np.float64)
    finish = np.empty(V, dtype=np.float64)
    proc_sets = []
    for v in range(V):
        t = placements[ptg.task(v).name]
        try:
            start[v] = float(t["start"])
            finish[v] = float(t["finish"])
            proc_sets.append(
                np.asarray(t["processors"], dtype=np.int64)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScheduleError(
                f"placement of task {ptg.task(v).name!r} is malformed: "
                f"{exc}"
            ) from exc
    schedule = Schedule(ptg, cluster, start, finish, proc_sets)
    if validate:
        # imported lazily: repro.verify itself imports repro.mapping
        from ..verify import ScheduleVerifier

        expected = data.get("makespan")
        ScheduleVerifier(ptg, table=table, cluster=cluster).verify(
            schedule,
            expected_makespan=(
                float(expected) if expected is not None else None
            ),
        )
    return schedule


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2),
        encoding="utf-8",
    )


def load_schedule(
    path: str | Path, ptg: PTG, validate: bool = True, table=None
) -> Schedule:
    """Read a schedule from a JSON file and re-validate it.

    A truncated, tampered-with or otherwise unreadable file raises
    :class:`ScheduleError` naming the file, never a bare
    ``JSONDecodeError`` — and with ``validate=True`` (the default) the
    reconstructed schedule must also pass the full
    :class:`repro.verify.ScheduleVerifier` invariant check.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScheduleError(
            f"cannot read schedule file {path}: {exc}"
        ) from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ScheduleError(
            f"schedule file {path} is not valid JSON (truncated or "
            f"tampered with?): {exc}"
        ) from exc
    return schedule_from_dict(data, ptg, validate=validate, table=table)
