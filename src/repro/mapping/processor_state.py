"""Processor-availability bookkeeping for the list scheduler.

The mapper only ever needs two operations on the platform state:

* *when could a task needing ``s`` processors start, given it becomes
  data-ready at time ``r``?* — the answer is ``max(r, s-th smallest
  processor free time)``;
* *commit a task*: mark ``s`` processors busy until ``finish``.

Processors are selected **first-fit by index** among those free at the
start time, matching the paper's "first processor set that contains
``s(v)`` available processors".  Keeping the rule identical between the
fast (makespan-only) and full (schedule-building) paths guarantees the
EA's fitness value equals the makespan of the final reconstructed
schedule.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ScheduleError

__all__ = ["ProcessorState"]

_EPS = 1e-12


class ProcessorState:
    """Free-time vector over ``P`` identical processors."""

    __slots__ = ("free", "_scratch")

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ScheduleError(
                f"need at least one processor, got {num_processors}"
            )
        self.free = np.zeros(num_processors, dtype=np.float64)
        # partition workspace: earliest_start is called once per task
        # inside the mapper loop, so the order statistic must not
        # allocate a fresh P-vector every call
        self._scratch = np.empty(num_processors, dtype=np.float64)

    @property
    def num_processors(self) -> int:
        """Platform size ``P``."""
        return self.free.shape[0]

    def earliest_start(self, s: int, ready: float) -> float:
        """Earliest time a task needing ``s`` processors can start.

        ``s`` processors are simultaneously free from the ``s``-th
        smallest entry of the free-time vector onwards; the task may also
        not start before its data-ready time.

        The whole-cluster (``s == P``) and single-processor (``s == 1``)
        cases reduce to a max/min reduction — no partitioning; the
        general case partitions an owned scratch copy in place.  The
        range check rides on the same dispatch instead of a separate
        branch per call.
        """
        free = self.free
        P = free.shape[0]
        if s == P:
            kth = free.max()
        elif 1 < s < P:
            scratch = self._scratch
            np.copyto(scratch, free)
            scratch.partition(s - 1)
            kth = scratch[s - 1]
        elif s == 1:
            kth = free.min()
        else:
            raise ScheduleError(f"allocation {s} outside [1, {P}]")
        return max(ready, float(kth))

    def assign(
        self, s: int, start: float, finish: float
    ) -> np.ndarray:
        """Commit ``s`` processors from ``start`` to ``finish``.

        Returns the chosen processor indices (first-fit by index among
        processors free at ``start``).
        """
        candidates = np.flatnonzero(self.free <= start + _EPS)
        if candidates.size < s:
            raise ScheduleError(
                f"only {candidates.size} processors free at t={start}, "
                f"need {s} (free times: min={self.free.min():.6g})"
            )
        chosen = candidates[:s]
        self.free[chosen] = finish
        return chosen

    def reset(self) -> None:
        """Return all processors to the idle state at t=0."""
        self.free.fill(0.0)
