"""Mapping step: allocation vectors → concrete schedules (Section III-A).

Public API:

* :func:`map_allocations` — list scheduling by decreasing bottom level,
  first-fit processor sets; returns a validated :class:`Schedule`;
* :func:`makespan_of` — the same engine, makespan-only (the EA fitness
  fast path), with the optional ``abort_above`` rejection strategy;
* :class:`ScheduleKernel` / :func:`kernel_for` — the compiled
  array-based engine behind both of the above: CSR graph, dense time
  tables and preallocated buffers, built once per (PTG, table) pair;
* :class:`Schedule`, :class:`ScheduledTask` — schedule data model with
  invariant checking;
* :class:`ProcessorState` — processor-availability bookkeeping;
* :func:`ascii_gantt` / :func:`svg_gantt` — Gantt rendering (Figure 6).
"""

from .gantt import ascii_gantt, save_svg_gantt, svg_gantt
from .io import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .kernel import ScheduleKernel, kernel_for
from .list_scheduler import (
    PRIORITIES,
    check_allocation,
    makespan_lower_bound,
    makespan_of,
    map_allocations,
)
from .processor_state import ProcessorState
from .schedule import Schedule, ScheduledTask

__all__ = [
    "map_allocations",
    "makespan_of",
    "ScheduleKernel",
    "kernel_for",
    "check_allocation",
    "makespan_lower_bound",
    "PRIORITIES",
    "Schedule",
    "ScheduledTask",
    "ProcessorState",
    "ascii_gantt",
    "svg_gantt",
    "save_svg_gantt",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]
