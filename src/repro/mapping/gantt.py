"""Gantt-chart rendering of schedules (used to regenerate Figure 6).

Two output formats, both dependency-free:

* :func:`ascii_gantt` — terminal rendering: one row per processor, time
  binned into character columns; good for quick inspection and for the
  CLI.
* :func:`svg_gantt` — standalone SVG with one rectangle per task
  occupation, suitable for the side-by-side MCPA vs EMTS comparison of
  the paper's Figure 6.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import ScheduleError
from .schedule import Schedule

__all__ = ["ascii_gantt", "svg_gantt", "save_svg_gantt"]


def _renderable_makespan(schedule: Schedule) -> float:
    """The schedule's makespan, rejected when it cannot be drawn.

    A NaN or infinite makespan would otherwise turn into nonsense
    column/pixel coordinates (or an infinite loop of columns); corrupted
    schedules must fail loudly before they reach an artifact.
    """
    ms = float(schedule.makespan)
    if not np.isfinite(ms):
        raise ScheduleError(
            f"cannot render a Gantt chart for schedule of "
            f"{schedule.ptg.name!r}: makespan is {ms!r}"
        )
    return ms


def ascii_gantt(
    schedule: Schedule, width: int = 78, max_processors: int = 40
) -> str:
    """Render ``schedule`` as fixed-width text.

    Each processor becomes one row; each task is drawn with a repeating
    single-character label.  ``width`` columns cover ``[0, makespan]``.
    """
    ms = _renderable_makespan(schedule)
    P = schedule.cluster.num_processors
    shown = min(P, max_processors)
    if ms <= 0:
        return "(empty schedule)\n"
    cols = max(10, width - 6)
    grid = [[" "] * cols for _ in range(shown)]

    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for v in range(schedule.ptg.num_tasks):
        c0 = int(np.floor(schedule.start[v] / ms * cols))
        c1 = int(np.ceil(schedule.finish[v] / ms * cols))
        c0 = min(max(c0, 0), cols - 1)
        c1 = min(max(c1, c0 + 1), cols)
        glyph = glyphs[v % len(glyphs)]
        for p in schedule.proc_sets[v]:
            if p < shown:
                for c in range(c0, c1):
                    grid[int(p)][c] = glyph

    lines = [
        f"{schedule.ptg.name} on {schedule.cluster.name}: makespan "
        f"{ms:.4g} s, utilization {schedule.utilization:.1%}"
    ]
    for p in range(shown):
        lines.append(f"P{p:>3} |" + "".join(grid[p]) + "|")
    if shown < P:
        lines.append(f"... ({P - shown} more processors not shown)")
    lines.append(
        f"     0{' ' * (cols - 8)}{ms:>7.3g}s"
    )
    return "\n".join(lines) + "\n"


def _task_color(v: int) -> str:
    """Deterministic distinct-ish fill color per task index."""
    hue = (v * 137.508) % 360.0  # golden-angle spacing
    return f"hsl({hue:.1f}, 62%, 62%)"


def svg_gantt(
    schedule: Schedule,
    width: int = 900,
    height: int | None = None,
    title: str | None = None,
) -> str:
    """Render ``schedule`` as a standalone SVG document string."""
    P = schedule.cluster.num_processors
    ms = _renderable_makespan(schedule)
    row_h = max(4, min(18, 560 // max(P, 1)))
    margin_l, margin_t, margin_b = 46, 28, 26
    height = height or (margin_t + P * row_h + margin_b)
    plot_w = width - margin_l - 12

    def x(t: float) -> float:
        return margin_l + (t / ms) * plot_w if ms > 0 else margin_l

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">',
        f'<text x="{margin_l}" y="18" font-size="13">'
        f"{title or schedule.ptg.name}: makespan {ms:.4g} s, "
        f"utilization {schedule.utilization:.1%}</text>",
    ]
    # processor lanes
    for p in range(P):
        y = margin_t + p * row_h
        parts.append(
            f'<line x1="{margin_l}" y1="{y}" x2="{width - 12}" y2="{y}" '
            'stroke="#ddd" stroke-width="0.5"/>'
        )
    # task rectangles
    for v in range(schedule.ptg.num_tasks):
        color = _task_color(v)
        x0 = x(float(schedule.start[v]))
        x1 = x(float(schedule.finish[v]))
        w = max(x1 - x0, 0.5)
        label = schedule.ptg.task(v).name
        for p in schedule.proc_sets[v]:
            y = margin_t + int(p) * row_h
            parts.append(
                f'<rect x="{x0:.2f}" y="{y + 0.5:.2f}" '
                f'width="{w:.2f}" height="{row_h - 1:.2f}" '
                f'fill="{color}" stroke="#555" stroke-width="0.3">'
                f"<title>{label}: [{schedule.start[v]:.4g}, "
                f"{schedule.finish[v]:.4g}] on P{int(p)}</title></rect>"
            )
    # time axis
    axis_y = margin_t + P * row_h + 14
    parts.append(
        f'<text x="{margin_l}" y="{axis_y}" font-size="11">0</text>'
    )
    parts.append(
        f'<text x="{width - 60}" y="{axis_y}" font-size="11">'
        f"{ms:.4g} s</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def save_svg_gantt(schedule: Schedule, path: str | Path, **kwargs) -> None:
    """Write the SVG Gantt chart of ``schedule`` to ``path``."""
    Path(path).write_text(svg_gantt(schedule, **kwargs), encoding="utf-8")
