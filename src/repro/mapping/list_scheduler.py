"""Bottom-level list scheduling — the mapping step of every two-step
algorithm in this library (paper Section III-A, "Mapping function").

Given a PTG, a precomputed :class:`~repro.timemodels.TimeTable` and an
allocation vector ``s``, the mapper:

1. computes every task's execution time ``t(v) = T(v, s(v))`` and bottom
   level ``bl(v)`` under those times;
2. repeatedly takes the *ready* task with the largest bottom level and
   places it at the earliest instant at which (a) all its predecessors
   have finished and (b) ``s(v)`` processors are simultaneously free —
   choosing the first-fit processor set by index.

The same routine doubles as the EA's fitness function; :func:`makespan_of`
is the allocation-free fast path that skips building processor sets.

Complexity: ``O(E + V log V + V P)`` as cited by the paper for CPA's
mapping step (heap operations dominate the graph part; the ``V P`` term
comes from the free-time scans).

The optional *rejection strategy* sketched in the paper's conclusions is
implemented via ``abort_above``: while mapping, ``start(v) + bl(v)`` is a
lower bound on the final makespan, so construction stops early once the
bound exceeds a known incumbent — the schedule cannot beat it.

Two engines implement the identical algorithm.  The *reference* engine
(:func:`_run` below) works directly on the PTG/TimeTable objects and
supports every priority rule; the *compiled* engine
(:class:`~repro.mapping.kernel.ScheduleKernel`) precomputes CSR index
arrays and dense buffers once per (PTG, table) pair and is several
times faster per call.  Both are bit-identical on the paper's
bottom-level rule, which is why :func:`makespan_of` and
:func:`map_allocations` route through the kernel automatically; pass
``compiled=False`` to force the reference path (the property-based
suite uses it as the oracle).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..exceptions import AllocationError
from ..graph import PTG, bottom_levels
from ..timemodels import TimeTable
from .kernel import ScheduleKernel, check_allocation, kernel_for
from .processor_state import ProcessorState
from .schedule import Schedule

__all__ = [
    "map_allocations",
    "makespan_of",
    "check_allocation",
    "makespan_lower_bound",
    "PRIORITIES",
]

#: Available ready-queue priority rules.  The paper's mapper uses
#: decreasing bottom level; the alternatives exist for the mapper
#: ablation (they answer: how much of the schedule quality comes from
#: the priority rule itself?).
PRIORITIES = ("bottom-level", "topological", "heaviest-first")


def makespan_lower_bound(
    ptg: PTG, table: TimeTable, alloc: np.ndarray
) -> float:
    """A certified lower bound on the list-schedule makespan.

    The maximum of the two classic bounds: the critical-path length
    under the chosen allocations, and the work-area bound
    ``sum_v s(v) T(v, s(v)) / P`` (the schedule cannot beat perfect
    packing).  Used by tests and by quality reporting.
    """
    alloc = check_allocation(alloc, ptg, table.num_processors)
    times = table.times_for(alloc)
    cp = float(bottom_levels(ptg, times).max())
    area = float(np.sum(alloc * times)) / table.num_processors
    return max(cp, area)


def _select_kernel(
    ptg: PTG,
    table: TimeTable,
    priority: str,
    compiled: bool | None,
) -> ScheduleKernel | None:
    """Pick the compiled kernel when it applies, else ``None``.

    The kernel implements the paper's bottom-level rule only, and is
    keyed to the table's own PTG; ``compiled=None`` auto-selects it
    whenever both hold, ``compiled=True`` insists (raising otherwise)
    and ``compiled=False`` forces the reference engine.
    """
    if compiled is False:
        return None
    if priority != "bottom-level":
        if compiled:
            raise AllocationError(
                "the compiled kernel only implements the "
                f"'bottom-level' priority, not {priority!r}"
            )
        return None
    if ptg is not table.ptg and ptg != table.ptg:
        if compiled:
            raise AllocationError(
                f"time table was built for PTG {table.ptg.name!r}, "
                f"not {ptg.name!r}"
            )
        return None
    return kernel_for(table)


def _priority_values(
    ptg: PTG, times: np.ndarray, priority: str
) -> np.ndarray:
    """Per-task priority (larger = scheduled earlier among ready)."""
    if priority == "bottom-level":
        return bottom_levels(ptg, times)
    if priority == "topological":
        # index order: effectively FIFO among ready tasks
        return -np.arange(ptg.num_tasks, dtype=np.float64)
    if priority == "heaviest-first":
        return times.astype(np.float64)
    raise AllocationError(
        f"unknown priority {priority!r}; known: {PRIORITIES}"
    )


def _run(
    ptg: PTG,
    table: TimeTable,
    alloc: np.ndarray,
    build_schedule: bool,
    abort_above: float | None,
    priority: str = "bottom-level",
):
    """Shared engine behind :func:`map_allocations` / :func:`makespan_of`."""
    P = table.num_processors
    alloc = check_allocation(alloc, ptg, P)
    times = table.times_for(alloc)
    bl = (
        bottom_levels(ptg, times)
        if priority == "bottom-level" or abort_above is not None
        else None
    )
    prio = (
        bl
        if priority == "bottom-level"
        else _priority_values(ptg, times, priority)
    )

    V = ptg.num_tasks
    n_waiting = np.array(
        [len(ptg.predecessors(v)) for v in range(V)], dtype=np.int64
    )
    data_ready = np.zeros(V, dtype=np.float64)
    start = np.zeros(V, dtype=np.float64)
    finish = np.zeros(V, dtype=np.float64)
    proc_sets: list[np.ndarray] | None = (
        [np.empty(0, dtype=np.int64)] * V if build_schedule else None
    )

    state = ProcessorState(P)
    # heap of (-priority, index): max first, index breaks ties
    heap: list[tuple[float, int]] = [
        (-prio[v], v) for v in range(V) if n_waiting[v] == 0
    ]
    heapq.heapify(heap)

    makespan = 0.0
    scheduled = 0
    while heap:
        _, v = heapq.heappop(heap)
        s = int(alloc[v])
        t_start = state.earliest_start(s, float(data_ready[v]))
        t_finish = t_start + float(times[v])
        if abort_above is not None and t_start + bl[v] >= abort_above:
            # lower bound on the final makespan already exceeds the
            # incumbent: reject this individual without finishing the map
            return np.inf, None, None, None
        if build_schedule:
            proc_sets[v] = state.assign(s, t_start, t_finish)
        else:
            # identical first-fit rule, without keeping the indices
            state.assign(s, t_start, t_finish)
        start[v] = t_start
        finish[v] = t_finish
        if t_finish > makespan:
            makespan = t_finish
        scheduled += 1
        for w in ptg.successors(v):
            if t_finish > data_ready[w]:
                data_ready[w] = t_finish
            n_waiting[w] -= 1
            if n_waiting[w] == 0:
                heapq.heappush(heap, (-prio[w], w))

    assert scheduled == V, "DAG invariants guarantee full coverage"
    return makespan, start, finish, proc_sets


def makespan_of(
    ptg: PTG,
    table: TimeTable,
    alloc: np.ndarray,
    abort_above: float | None = None,
    priority: str = "bottom-level",
    compiled: bool | None = None,
) -> float:
    """Makespan of the list schedule for ``alloc`` (fitness fast path).

    Returns ``inf`` when ``abort_above`` is given and the partial schedule
    provably cannot beat it.  ``priority`` selects the ready-queue rule
    (see :data:`PRIORITIES`); the paper's mapper uses the default.
    ``compiled`` selects the engine: ``None`` (default) uses the
    compiled :class:`~repro.mapping.kernel.ScheduleKernel` whenever it
    applies — results are bit-identical either way.
    """
    kernel = _select_kernel(ptg, table, priority, compiled)
    if kernel is not None:
        return kernel.makespan(alloc, abort_above)
    makespan, _, _, _ = _run(
        ptg,
        table,
        alloc,
        build_schedule=False,
        abort_above=abort_above,
        priority=priority,
    )
    return makespan


def map_allocations(
    ptg: PTG,
    table: TimeTable,
    alloc: np.ndarray,
    priority: str = "bottom-level",
    compiled: bool | None = None,
) -> Schedule:
    """Full mapping: allocation vector → concrete :class:`Schedule`.

    On the default priority rule the schedule is reconstructed from the
    compiled kernel's committed start times and processor sets — the
    same engine that evaluated the allocation's fitness.
    """
    kernel = _select_kernel(ptg, table, priority, compiled)
    if kernel is not None:
        makespan, start, finish, proc_sets = kernel.run(
            alloc, build_schedule=True
        )
    else:
        makespan, start, finish, proc_sets = _run(
            ptg,
            table,
            alloc,
            build_schedule=True,
            abort_above=None,
            priority=priority,
        )
    assert proc_sets is not None
    schedule = Schedule(ptg, table.cluster, start, finish, proc_sets)
    # the two paths share one engine, so this always holds; keep the check
    # cheap but present (it guards the EA's fitness consistency)
    assert abs(schedule.makespan - makespan) < 1e-9
    return schedule
