"""Compiled, array-based scheduling kernel (the EA's fitness engine).

The paper's complexity analysis (Section III-E) puts essentially the
whole cost of EMTS inside the mapping function: one bottom-level list
scheduling pass per offspring.  The reference implementation in
:mod:`repro.mapping.list_scheduler` re-derives everything from Python
objects on every call — predecessor tuples, fresh numpy temporaries,
``np.partition``/``np.flatnonzero`` allocations per scheduled task.
For a fixed (PTG, platform, time model) triple all of that structure is
*invariant across calls*, so this module compiles it once:

* the DAG flattened to CSR index arrays (forward and reverse adjacency,
  topological roots, in-degree vector) via
  :func:`repro.graph.csr_adjacency` — the same analysis the layered
  bottom-level sweep and the CPA-family heuristics use;
* the execution-time model materialized as the dense ``(V, P)`` float64
  matrix of the :class:`~repro.timemodels.TimeTable`, flattened for a
  single vectorized ``take`` per evaluation;
* preallocated int/float work buffers for the whole makespan path —
  allocation canonicalization, time lookup, the reverse-topological
  bottom-level sweep, the ready heap and the in-place processor free
  vector — so a
  fitness evaluation performs **no per-task numpy allocation** (the
  only per-task temporaries are the index array of the first-fit
  candidate scan and constant-size heap tuples).

On top of the numpy fast path, the fitness-only entry points
(:meth:`ScheduleKernel.makespan` / :meth:`ScheduleKernel.makespan_batch`)
dispatch to a native scheduling loop compiled at first use from the C
source in :mod:`repro.mapping._cscheduler` (cffi ABI mode, cached
shared library).  When no C compiler or cffi is available the kernel
transparently keeps the numpy path; set ``REPRO_NO_CKERNEL=1`` to
force that fallback.  The schedule-building path (:meth:`run` with
``build_schedule=True``) always uses the Python loop — it is the cold
path and keeps the bookkeeping readable.

The kernel is **bit-identical** to the reference mapper: the same
first-fit-by-index tie-breaking, the same epsilon, the same floating
point operations in the same order — in both the numpy and the native
loop (IEEE-754 doubles, no reassociation or fused arithmetic).
``tests/test_mapping_kernel.py`` asserts equality of makespans, start
times and processor sets against the reference engine across hundreds
of randomized instances, on whichever loop is active, and pins the
native loop against the Python one directly.

Build one kernel per (PTG, time table) and reuse it for every fitness
call — :func:`kernel_for` caches the kernel on the ``TimeTable`` so all
consumers (the serial and process-pool evaluators, ``makespan_of``,
``map_allocations``) share a single compiled representation.  Kernels
are cheap to pickle and deliberately drop their PTG/table back
references when serialized: worker processes receive only the index
arrays and the dense time matrix, not the object graph.

A kernel instance is **not re-entrant**: its buffers are reused by
every call, so share one kernel per thread/process (the process-pool
evaluator builds one per worker).
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from math import inf
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import AllocationError
from ..graph import PTG, csr_adjacency
from . import _cscheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..timemodels import TimeTable

__all__ = [
    "ScheduleKernel",
    "kernel_for",
    "check_allocation",
    "batch_threads",
]

#: Same slack the reference ``ProcessorState`` uses for the first-fit
#: candidate scan; keeping it shared is part of the bit-identity story.
_EPS = 1e-12


def batch_threads() -> int:
    """Thread count for the native batch scheduler.

    ``REPRO_CKERNEL_THREADS`` (default 1) fans batch rows across OpenMP
    threads when the library was built with ``-fopenmp``; results are
    bit-identical for any value because each row is scheduled
    independently.  Invalid or non-positive values fall back to 1.
    """
    raw = os.environ.get("REPRO_CKERNEL_THREADS", "1")
    try:
        n = int(raw)
    except ValueError:
        return 1
    return n if n >= 1 else 1


#: Graphs with more than this many tasks + edges keep the interpreted
#: bottom-level sweep instead of the unrolled one (compile time and
#: code size grow linearly with the graph).
_BL_UNROLL_LIMIT = 20000


def _compile_bl_sweep(num_tasks: int, bl_sweep: list):
    """Generate a straight-line bottom-level sweep for one DAG.

    The reverse-topological recurrence ``bl[v] = t[v] + max over
    successors`` has a fixed structure per graph, so the kernel unrolls
    it once into plain Python with one local per non-sink task — no
    loop bookkeeping, no list writes, just loads, compares and adds.
    IEEE max is exact and the one addition per task sees the same
    operands as the interpreted sweep, so results are bit-identical.

    Returns a function mapping a task-time list to a bottom-level list,
    or ``None`` for graphs above :data:`_BL_UNROLL_LIMIT`.
    """
    n_edges = sum(
        1 if type(ws) is int else len(ws) for _, ws in bl_sweep
    )
    if num_tasks + n_edges > _BL_UNROLL_LIMIT:
        return None
    non_sink = {v for v, _ in bl_sweep}
    # sinks have bl = their own time: reference them straight from t
    ref = [
        f"b{v}" if v in non_sink else f"t[{v}]"
        for v in range(num_tasks)
    ]
    lines = ["def _bl_sweep_unrolled(t):"]
    for v, ws in bl_sweep:
        if type(ws) is int:
            # single successor: bottom levels are strictly positive,
            # so the max over {bl[w]} is bl[w] itself
            lines.append(f" b{v} = t[{v}] + {ref[ws]}")
        elif len(ws) == 2:
            a, b = ref[ws[0]], ref[ws[1]]
            lines.append(f" b{v} = t[{v}] + ({a} if {a} > {b} else {b})")
        else:
            a, b = ref[ws[0]], ref[ws[1]]
            lines.append(f" m = {a} if {a} > {b} else {b}")
            for w in ws[2:]:
                c = ref[w]
                lines.append(f" m = m if m > {c} else {c}")
            lines.append(f" b{v} = t[{v}] + m")
    lines.append(" return [" + ",".join(ref) + "]")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - self-generated code
    return namespace["_bl_sweep_unrolled"]


def _compile_tl_sweep(num_tasks: int, tl_sweep: list):
    """Generate a straight-line top-level sweep for one DAG.

    The topological recurrence ``tl[v] = max over predecessors u of
    (tl[u] + t[u])`` (0 for sources) mirrors the bottom-level sweep;
    every addition sees the same operands as the layered numpy sweep in
    :func:`repro.graph.top_levels` and IEEE max is exact, so results
    are bit-identical.  Returns ``None`` above the unroll limit.
    """
    n_edges = sum(
        1 if type(us) is int else len(us) for _, us in tl_sweep
    )
    if num_tasks + n_edges > _BL_UNROLL_LIMIT:
        return None
    non_source = {v for v, _ in tl_sweep}
    # sources contribute tl[u] + t[u] = t[u]; their own tl is 0.0
    ref = [
        f"l{v}" if v in non_source else "0.0"
        for v in range(num_tasks)
    ]

    def term(u: int) -> str:
        return f"l{u} + t[{u}]" if u in non_source else f"t[{u}]"

    lines = ["def _tl_sweep_unrolled(t):"]
    for v, us in tl_sweep:
        if type(us) is int:
            # single predecessor: the max over one positive term
            lines.append(f" l{v} = {term(us)}")
        else:
            lines.append(f" m = {term(us[0])}")
            for u in us[1:]:
                lines.append(f" x = {term(u)}")
                lines.append(" m = m if m > x else x")
            lines.append(f" l{v} = m")
    lines.append(" return [" + ",".join(ref) + "]")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - self-generated code
    return namespace["_tl_sweep_unrolled"]


def check_allocation(alloc: np.ndarray, ptg: PTG, P: int) -> np.ndarray:
    """Validate and canonicalize an allocation vector.

    Raises :class:`AllocationError` unless ``alloc`` has shape ``(V,)``
    with integral entries in ``[1, P]``.
    """
    alloc = np.asarray(alloc)
    if alloc.shape != (ptg.num_tasks,):
        raise AllocationError(
            f"allocation has shape {alloc.shape}, expected "
            f"({ptg.num_tasks},)"
        )
    if not np.issubdtype(alloc.dtype, np.integer):
        rounded = np.rint(alloc)
        if not np.allclose(alloc, rounded):
            raise AllocationError("allocations must be integers")
        alloc = rounded.astype(np.int64)
    else:
        alloc = alloc.astype(np.int64)
    if alloc.min() < 1 or alloc.max() > P:
        raise AllocationError(
            f"allocations must lie in [1, {P}]; got range "
            f"[{alloc.min()}, {alloc.max()}]"
        )
    return alloc


class ScheduleKernel:
    """One compiled (PTG, time table) pair, reused across fitness calls.

    Parameters
    ----------
    ptg:
        The task graph; flattened to CSR arrays at construction.
    table:
        The precomputed :class:`~repro.timemodels.TimeTable`; its dense
        ``(V, P)`` matrix is the kernel's only time-model interface.
    """

    def __init__(self, ptg: PTG, table: "TimeTable") -> None:
        if table.num_tasks != ptg.num_tasks:
            raise AllocationError(
                f"time table covers {table.num_tasks} tasks, PTG "
                f"{ptg.name!r} has {ptg.num_tasks}"
            )
        V = ptg.num_tasks
        P = table.num_processors
        self.ptg: PTG | None = ptg
        self.table: "TimeTable" | None = table
        self.num_tasks = V
        self.num_processors = P

        # --- graph structure, flattened once --------------------------
        csr = csr_adjacency(ptg)
        self.csr = csr
        # successor tuples as plain Python ints: the inner loop iterates
        # them directly (faster than CSR slicing for V-sized graphs)
        self._succ = [ptg.successors(v) for v in range(V)]
        self._indegree = [int(d) for d in csr.in_degree]
        self._roots = [v for v in range(V) if self._indegree[v] == 0]
        # bottom-level sweep order: reverse topological, non-sink tasks
        # only (sinks keep bl = their own time); single-successor tasks
        # store the bare index so the sweep skips the inner loop
        rev_topo = ptg.topological_order[::-1].tolist()
        self._bl_sweep = [
            (v, ws[0] if len(ws) == 1 else ws)
            for v, ws in ((v, self._succ[v]) for v in rev_topo)
            if ws
        ]
        # top-level sweep: forward topological, non-source tasks only
        # (sources keep tl = 0); same single-predecessor flattening
        preds = [ptg.predecessors(v) for v in range(V)]
        topo = ptg.topological_order.tolist()
        self._tl_sweep = [
            (v, us[0] if len(us) == 1 else us)
            for v, us in ((v, preds[v]) for v in topo)
            if us
        ]
        # specialized straight-line sweeps, generated from the DAG once
        # (None for graphs too large to unroll)
        self._bl_compiled = _compile_bl_sweep(V, self._bl_sweep)
        self._tl_compiled = _compile_tl_sweep(V, self._tl_sweep)

        # --- dense time model -----------------------------------------
        # flat row-major view: T(v, p) lives at v * P + (p - 1);
        # _load_alloc leaves (alloc - 1) in the index buffer, so the row
        # base has no -1 correction
        self._flat_times = np.ascontiguousarray(table.array).reshape(-1)
        self._row_base = np.arange(V, dtype=np.int64) * P

        # --- preallocated work buffers --------------------------------
        self._alloc = np.empty(V, dtype=np.int64)
        self._flat_idx = np.empty(V, dtype=np.int64)
        self._times = np.empty(V, dtype=np.float64)
        self._free = np.empty(P, dtype=np.float64)
        self._scratch = np.empty(P, dtype=np.float64)
        self._mask = np.empty(P, dtype=bool)
        self._arange = np.arange(P, dtype=np.int64)

        # --- native scheduler (optional) ------------------------------
        # int32 copies of the graph structure for the C entry points;
        # picklable, so __setstate__ can re-attach the library without
        # the PTG.  The successor CSR matches self._succ edge-for-edge.
        self._c_rev_topo = np.ascontiguousarray(rev_topo, dtype=np.int32)
        self._c_indptr = np.ascontiguousarray(
            csr.succ_indptr, dtype=np.int32
        )
        self._c_indices = np.ascontiguousarray(
            csr.succ_indices, dtype=np.int32
        )
        self._c_indeg = np.ascontiguousarray(
            csr.in_degree, dtype=np.int32
        )
        self._c = None
        self._attach_c()

    def _attach_c(self) -> None:
        """Bind the native scheduling loop, if it can be built.

        All argument pointers that stay fixed for the kernel's lifetime
        are cast once here — a native makespan call then only passes
        precomputed handles.  When :func:`_cscheduler.load` degrades to
        ``(None, None)`` the kernel simply keeps its numpy fast path.
        """
        ffi, lib = _cscheduler.load()
        if lib is None:
            self._c = None
            return
        V = self.num_tasks

        def dptr(arr):
            return ffi.cast("double *", arr.ctypes.data)

        def iptr(arr):
            return ffi.cast("const int32_t *", arr.ctypes.data)

        # extra scratch the C loop needs beyond the shared buffers
        self._c_bl = np.empty(V, dtype=np.float64)
        self._c_dr = np.empty(V, dtype=np.float64)
        self._c_nw = np.empty(V, dtype=np.int32)
        self._c_heap = np.empty(V, dtype=np.int32)
        self._c = (
            ffi,
            lib,
            (
                ffi.cast("const double *", self._flat_times.ctypes.data),
                ffi.cast("const int64_t *", self._alloc.ctypes.data),
                iptr(self._c_rev_topo),
                iptr(self._c_indptr),
                iptr(self._c_indices),
                iptr(self._c_indeg),
            ),
            (
                dptr(self._times),
                dptr(self._c_bl),
                dptr(self._c_dr),
                ffi.cast("int32_t *", self._c_nw.ctypes.data),
                dptr(self._free),
                dptr(self._scratch),
                ffi.cast("int32_t *", self._c_heap.ctypes.data),
            ),
        )

    # ------------------------------------------------------------------
    # serialization: ship arrays, not the object graph
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # worker processes only need the compiled arrays; the PTG and
        # TimeTable object graphs stay in the parent process.  The
        # generated sweep function is not picklable — regenerated on
        # arrival from the (picklable) sweep description.  The native
        # library handle and its workspace pointers are re-bound on
        # arrival (the .so build is cached, so this is just a dlopen).
        state["ptg"] = None
        state["table"] = None
        state["_bl_compiled"] = None
        state["_tl_compiled"] = None
        state["_c"] = None
        state.pop("_c_bl", None)
        state.pop("_c_dr", None)
        state.pop("_c_nw", None)
        state.pop("_c_heap", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._bl_compiled = _compile_bl_sweep(
            self.num_tasks, self._bl_sweep
        )
        self._tl_compiled = _compile_tl_sweep(
            self.num_tasks, self._tl_sweep
        )
        self._attach_c()

    # ------------------------------------------------------------------
    # per-call preparation
    # ------------------------------------------------------------------
    def _load_alloc(self, alloc: np.ndarray) -> np.ndarray:
        """Canonicalize ``alloc`` into the kernel's int64 buffer.

        Mirrors :func:`check_allocation` (same checks, same messages)
        but lands in a preallocated buffer instead of a fresh array.
        On return ``self._flat_idx`` holds ``alloc - 1`` — the hot path
        turns it into flat time-table indices by adding ``_row_base``.
        """
        a = alloc if type(alloc) is np.ndarray else np.asarray(alloc)
        V = self.num_tasks
        if a.shape != (V,):
            raise AllocationError(
                f"allocation has shape {a.shape}, expected ({V},)"
            )
        if a.dtype.kind not in "iu":
            rounded = np.rint(a)
            if not np.allclose(a, rounded):
                raise AllocationError("allocations must be integers")
            a = rounded.astype(np.int64)
        # single-reduction bounds check: viewed as unsigned, alloc - 1
        # is >= P exactly when some entry is < 1 (wraps huge) or > P
        idx = self._flat_idx
        np.subtract(a, 1, out=idx, casting="unsafe")
        if idx.view(np.uint64).max() >= self.num_processors:
            raise AllocationError(
                f"allocations must lie in [1, {self.num_processors}]; "
                f"got range [{a.min()}, {a.max()}]"
            )
        out = self._alloc
        np.copyto(out, a, casting="unsafe")
        return out

    def genome_key(self, alloc: np.ndarray) -> bytes:
        """Canonical cache key: the validated int64 buffer's raw bytes.

        The memoization cache keys off this so equal genomes — whatever
        their dtype or layout on arrival — share one cache entry.
        """
        return self._load_alloc(alloc).tobytes()

    def _bl_from_times(self, times: list) -> list:
        """Bottom levels as a Python list, from a task-time list.

        A reverse-topological sweep: ``bl[v] = times[v] + max over
        successors``.  IEEE max is exact and the single float64 addition
        sees the same operands as :func:`repro.graph.bottom_levels`, so
        the results are bit-identical to the layered numpy sweep — while
        costing O(V + E) scalar operations instead of per-layer array
        dispatch.
        """
        bl = list(times)
        for v, ws in self._bl_sweep:
            if type(ws) is int:
                # bottom levels are strictly positive, so the max over a
                # single successor is that successor's level
                bl[v] += bl[ws]
            else:
                m = 0.0
                for w in ws:
                    x = bl[w]
                    if x > m:
                        m = x
                bl[v] += m
        return bl

    def _bottom_levels_list(self, times: list) -> list:
        """Dispatch to the unrolled sweep when one was generated."""
        fn = self._bl_compiled
        return fn(times) if fn is not None else self._bl_from_times(times)

    def _tl_from_times(self, times: list) -> list:
        """Top levels as a Python list (interpreted fallback sweep)."""
        tl = [0.0] * self.num_tasks
        for v, us in self._tl_sweep:
            if type(us) is int:
                tl[v] = tl[us] + times[us]
            else:
                m = 0.0
                for u in us:
                    x = tl[u] + times[u]
                    if x > m:
                        m = x
                tl[v] = m
        return tl

    def _top_levels_list(self, times: list) -> list:
        """Dispatch to the unrolled sweep when one was generated."""
        fn = self._tl_compiled
        return fn(times) if fn is not None else self._tl_from_times(times)

    def levels(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bottom and top levels under per-task execution ``times``.

        Bit-identical to :func:`repro.graph.bottom_levels` /
        :func:`repro.graph.top_levels` on the kernel's PTG, but computed
        by the straight-line scalar sweeps — the CPA-family allocation
        loops call this once per growth step instead of two layered
        numpy sweeps.
        """
        t = np.ascontiguousarray(times, dtype=np.float64)
        if t.shape != (self.num_tasks,):
            raise AllocationError(
                f"times has shape {t.shape}, expected ({self.num_tasks},)"
            )
        tlist = t.tolist()
        return (
            np.array(self._bottom_levels_list(tlist)),
            np.array(self._top_levels_list(tlist)),
        )

    def _load_times(self, alloc: np.ndarray) -> list:
        """Gather ``T(v, alloc[v])`` into the time buffer, as a list.

        ``_load_alloc`` must have run (``_flat_idx`` holds alloc - 1).
        """
        idx = self._flat_idx
        np.add(idx, self._row_base, out=idx)
        self._flat_times.take(idx, out=self._times)
        return self._times.tolist()

    def bottom_levels(self, alloc: np.ndarray) -> np.ndarray:
        """Bottom levels under ``alloc`` (a fresh array, safe to keep)."""
        self._load_alloc(alloc)
        times = self._load_times(alloc)
        return np.array(self._bottom_levels_list(times))

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def run(
        self,
        alloc: np.ndarray,
        build_schedule: bool = False,
        abort_above: float | None = None,
    ):
        """List-schedule ``alloc``; same contract as the reference engine.

        Returns ``(makespan, start, finish, proc_sets)``.  ``start`` /
        ``finish`` are float64 arrays and ``proc_sets`` a list of int64
        index arrays when ``build_schedule`` is true; all three are
        ``None`` otherwise (and on rejection, where ``makespan`` is
        ``inf``).
        """
        if not build_schedule:
            return self.makespan(alloc, abort_above), None, None, None
        alloc = self._load_alloc(alloc)

        # Python-native mirrors of the per-task state: scalar reads and
        # writes in the loop below cost ~5x less than numpy indexing
        times = self._load_times(alloc)
        bl = self._bottom_levels_list(times)
        alloc_l = alloc.tolist()
        V = self.num_tasks
        P = self.num_processors
        n_waiting = self._indegree.copy()
        data_ready = [0.0] * V
        start = [0.0] * V
        finish = [0.0] * V
        proc_sets: list = [None] * V
        succ = self._succ

        free = self._free
        free.fill(0.0)
        scratch = self._scratch
        mask = self._mask
        arange = self._arange
        copyto = np.copyto
        less_equal = np.less_equal
        partition = scratch.partition
        kth_item = scratch.item
        candidates = mask.nonzero
        assign = free.put
        hpop = heappop
        hpush = heappush
        eps = _EPS

        # heap of (-bottom level, index): max first, index breaks ties —
        # the exact ordering of the reference mapper
        heap = [(-bl[v], v) for v in self._roots]
        heapify(heap)

        # start(v) + bl(v) is a lower bound on the final makespan; with
        # no incumbent the comparison against +inf is never true, which
        # matches the reference's "abort_above is None" behaviour
        bound = inf if abort_above is None else abort_above
        makespan = 0.0
        while heap:
            v = hpop(heap)[1]
            s = alloc_l[v]
            r = data_ready[v]
            if r >= makespan:
                # every free time is a past finish <= the running peak
                # <= r, so all P processors are available at r and
                # first-fit takes the index prefix: one slice write,
                # no order statistics needed
                t_start = r
                t_finish = r + times[v]
                if t_start + bl[v] >= bound:
                    return np.inf, None, None, None
                free[:s] = t_finish
                proc_sets[v] = arange[:s].copy()
            elif s == P:
                # whole-cluster task: the s-th smallest free time is the
                # maximum, and every processor is a first-fit candidate
                kth = float(free.max())
                t_start = r if r >= kth else kth
                t_finish = t_start + times[v]
                if t_start + bl[v] >= bound:
                    return np.inf, None, None, None
                free[:] = t_finish
                proc_sets[v] = arange.copy()
            else:
                # earliest start: s processors are simultaneously free
                # from the s-th smallest free time onwards (in-place
                # partition of the scratch copy, no allocation)
                copyto(scratch, free)
                partition(s - 1)
                kth = kth_item(s - 1)
                t_start = r if r >= kth else kth
                t_finish = t_start + times[v]
                if t_start + bl[v] >= bound:
                    return np.inf, None, None, None
                # first-fit by index among processors free at t_start;
                # kth <= t_start guarantees at least s candidates
                less_equal(free, t_start + eps, mask)
                chosen = candidates()[0][:s]
                assign(chosen, t_finish)
                proc_sets[v] = chosen
            start[v] = t_start
            finish[v] = t_finish
            if t_finish > makespan:
                makespan = t_finish
            for w in succ[v]:
                if t_finish > data_ready[w]:
                    data_ready[w] = t_finish
                nw = n_waiting[w] = n_waiting[w] - 1
                if not nw:
                    hpush(heap, (-bl[w], w))

        assert not any(n_waiting), "DAG invariants guarantee full coverage"
        return (
            makespan,
            np.asarray(start, dtype=np.float64),
            np.asarray(finish, dtype=np.float64),
            proc_sets,
        )

    def makespan(
        self, alloc: np.ndarray, abort_above: float | None = None
    ) -> float:
        """Makespan of the list schedule for ``alloc`` (fitness path).

        The same algorithm as :meth:`run`, specialized for the EA
        fitness loop: no start/finish/processor-set bookkeeping at all,
        only the free vector and the running peak.  Returns ``inf``
        when ``abort_above`` is given and the partial schedule provably
        cannot beat it.
        """
        if abort_above is None:
            return self._makespan_unbounded(alloc)
        return self._makespan_bounded(alloc, abort_above)

    @property
    def has_native(self) -> bool:
        """True when the native C scheduling loop is bound."""
        return self._c is not None

    @property
    def engine(self) -> str:
        """Which makespan engine fitness calls run on: ``"c"`` when the
        native library is bound, ``"numpy"`` on the fallback loop.

        Observability surfaces (run traces, ``report-trace``) record
        this so a silently missed C build is visible in every trace.
        """
        return "c" if self._c is not None else "numpy"

    def makespan_numpy(
        self, alloc: np.ndarray, abort_above: float | None = None
    ) -> float:
        """Makespan via the numpy/Python loop, bypassing the C dispatch.

        Differential verification (:mod:`repro.verify`) uses this to
        replay an allocation through the kernel's fallback engine even
        when the native library is loaded, so a silently corrupted
        native result cannot agree with itself.
        """
        alloc = self._load_alloc(alloc)
        times = self._load_times(alloc)
        if abort_above is None:
            return self._makespan_core(times, alloc.tolist())
        return self._makespan_core_bounded(
            times, alloc.tolist(), abort_above
        )

    def load_block(self, genome_block) -> np.ndarray:
        """Validate a ``(B, V)`` genome block into canonical form.

        Returns a C-contiguous int64 array — the batch analogue of
        :meth:`_load_alloc`, with the same checks and messages applied
        once across the whole block instead of per genome.
        """
        block = np.asarray(genome_block)
        if block.ndim != 2 or block.shape[1] != self.num_tasks:
            raise AllocationError(
                f"genome block has shape {block.shape}, expected "
                f"(batch, {self.num_tasks})"
            )
        if block.dtype.kind not in "iu":
            rounded = np.rint(block)
            if not np.allclose(block, rounded):
                raise AllocationError("allocations must be integers")
            block = rounded.astype(np.int64)
        else:
            block = block.astype(np.int64, copy=False)
        block = np.ascontiguousarray(block)
        if block.shape[0] == 0:
            return block
        # same single-reduction bounds check as _load_alloc, batch-wide
        if (block - 1).view(np.uint64).max() >= self.num_processors:
            raise AllocationError(
                f"allocations must lie in [1, {self.num_processors}]; "
                f"got range [{block.min()}, {block.max()}]"
            )
        return block

    def genome_block_keys(
        self, genome_block
    ) -> tuple[np.ndarray, list[bytes]]:
        """Canonical cache keys for a whole genome block at once.

        Returns ``(block, keys)`` where ``block`` is the canonical
        int64 form of the input and ``keys[i]`` equals
        ``genome_key(block[i])`` — one batch validation and one
        contiguous ``tobytes`` instead of per-genome work, which is
        what lets the memoization cache hash a population without
        re-validating every row separately.
        """
        block = self.load_block(genome_block)
        if block.shape[0] == 0:
            return block, []
        data = block.tobytes()
        step = block.shape[1] * 8
        keys = [
            data[i * step:(i + 1) * step]
            for i in range(block.shape[0])
        ]
        return block, keys

    def makespan_batch(
        self,
        genome_block,
        abort_above: float | None = None,
    ) -> list[float]:
        """Makespans for a whole batch of genomes, in input order.

        Accepts anything convertible to a ``(B, V)`` array (a stacked
        block or a list of genome vectors).  On the native path the
        whole block is scored by a single C call into the slot-based
        batch scheduler (optionally fanned across threads, see
        ``REPRO_CKERNEL_THREADS``); on the numpy path the validation,
        time-table gather and array→list conversions are vectorized
        across the batch.  Each genome's result is bit-identical to
        :meth:`makespan` on either engine.
        """
        block = self.load_block(genome_block)
        if block.shape[0] == 0:
            return []
        if self._c is not None:
            ffi, lib, const_ptrs, _ws_ptrs = self._c
            out = np.empty(block.shape[0], dtype=np.float64)
            lib.schedule_makespan_batch(
                block.shape[0],
                self.num_tasks,
                self.num_processors,
                batch_threads(),
                const_ptrs[0],
                ffi.cast("const int64_t *", block.ctypes.data),
                *const_ptrs[2:],
                inf if abort_above is None else abort_above,
                ffi.cast("double *", out.ctypes.data),
            )
            if np.isnan(out).any():
                # NaN rows mark per-thread workspace allocation
                # failures inside the C driver; replay them on the
                # numpy path (no engine ever *computes* NaN)
                for i in np.flatnonzero(np.isnan(out)):
                    out[i] = self.makespan_numpy(
                        block[i], abort_above
                    )
            return out.tolist()
        flat = (block - 1) + self._row_base  # broadcasts over rows
        times_rows = self._flat_times.take(flat).tolist()
        alloc_rows = block.tolist()
        if abort_above is None:
            core = self._makespan_core
            return [
                core(t, a) for t, a in zip(times_rows, alloc_rows)
            ]
        core_b = self._makespan_core_bounded
        return [
            core_b(t, a, abort_above)
            for t, a in zip(times_rows, alloc_rows)
        ]

    def _makespan_unbounded(self, alloc: np.ndarray) -> float:
        alloc = self._load_alloc(alloc)
        if self._c is not None:
            _ffi, lib, const_ptrs, ws_ptrs = self._c
            return lib.schedule_makespan(
                self.num_tasks,
                self.num_processors,
                *const_ptrs,
                inf,
                *ws_ptrs,
            )
        times = self._load_times(alloc)
        return self._makespan_core(times, alloc.tolist())

    def _makespan_core(self, times: list, alloc_l: list) -> float:
        # The two loops below are deliberate near-duplicates: dropping
        # the per-task abort test from the no-incumbent path (the EA
        # fitness default and every benchmark) is a measurable win, and
        # the property suite pins both against the reference engine.
        #
        # Python-native mirrors of the per-task state: scalar reads and
        # writes in the loop below cost ~5x less than numpy indexing.
        bl = self._bottom_levels_list(times)
        P = self.num_processors
        n_waiting = self._indegree.copy()
        data_ready = [0.0] * self.num_tasks
        succ = self._succ

        free = self._free
        free.fill(0.0)
        scratch = self._scratch
        mask = self._mask
        copyto = np.copyto
        less_equal = np.less_equal
        partition = scratch.partition
        kth_item = scratch.item
        candidates = mask.nonzero
        assign = free.put
        hpop = heappop
        hpush = heappush
        eps = _EPS

        # heap of (-bottom level, index): max first, index breaks ties —
        # the exact ordering of the reference mapper
        heap = [(-bl[v], v) for v in self._roots]
        heapify(heap)

        makespan = 0.0
        while heap:
            v = hpop(heap)[1]
            s = alloc_l[v]
            r = data_ready[v]
            if r >= makespan:
                # all P processors are free by r: prefix assignment,
                # and the new finish is the new peak (times > 0)
                t_finish = r + times[v]
                free[:s] = t_finish
                makespan = t_finish
            elif s == P:
                kth = float(free.max())
                t_start = r if r >= kth else kth
                t_finish = t_start + times[v]
                free[:] = t_finish
                if t_finish > makespan:
                    makespan = t_finish
            else:
                copyto(scratch, free)
                partition(s - 1)
                kth = kth_item(s - 1)
                t_start = r if r >= kth else kth
                t_finish = t_start + times[v]
                less_equal(free, t_start + eps, mask)
                assign(candidates()[0][:s], t_finish)
                if t_finish > makespan:
                    makespan = t_finish
            for w in succ[v]:
                if t_finish > data_ready[w]:
                    data_ready[w] = t_finish
                nw = n_waiting[w] = n_waiting[w] - 1
                if not nw:
                    hpush(heap, (-bl[w], w))

        assert not any(n_waiting), "DAG invariants guarantee full coverage"
        return makespan

    def _makespan_bounded(
        self, alloc: np.ndarray, abort_above: float
    ) -> float:
        alloc = self._load_alloc(alloc)
        if self._c is not None:
            _ffi, lib, const_ptrs, ws_ptrs = self._c
            return lib.schedule_makespan(
                self.num_tasks,
                self.num_processors,
                *const_ptrs,
                abort_above,
                *ws_ptrs,
            )
        times = self._load_times(alloc)
        return self._makespan_core_bounded(
            times, alloc.tolist(), abort_above
        )

    def _makespan_core_bounded(
        self, times: list, alloc_l: list, abort_above: float
    ) -> float:
        # Same loop with the rejection strategy: start(v) + bl(v) is a
        # lower bound on the final makespan, so stop as soon as it
        # reaches the incumbent (the schedule cannot beat it).
        bl = self._bottom_levels_list(times)
        P = self.num_processors
        n_waiting = self._indegree.copy()
        data_ready = [0.0] * self.num_tasks
        succ = self._succ

        free = self._free
        free.fill(0.0)
        scratch = self._scratch
        mask = self._mask
        copyto = np.copyto
        less_equal = np.less_equal
        partition = scratch.partition
        kth_item = scratch.item
        candidates = mask.nonzero
        assign = free.put
        hpop = heappop
        hpush = heappush
        eps = _EPS
        inf_ = np.inf
        bound = abort_above

        heap = [(-bl[v], v) for v in self._roots]
        heapify(heap)

        makespan = 0.0
        while heap:
            v = hpop(heap)[1]
            s = alloc_l[v]
            r = data_ready[v]
            if r >= makespan:
                t_start = r
                t_finish = r + times[v]
                if t_start + bl[v] >= bound:
                    return inf_
                free[:s] = t_finish
                makespan = t_finish
            elif s == P:
                kth = float(free.max())
                t_start = r if r >= kth else kth
                t_finish = t_start + times[v]
                if t_start + bl[v] >= bound:
                    return inf_
                free[:] = t_finish
                if t_finish > makespan:
                    makespan = t_finish
            else:
                copyto(scratch, free)
                partition(s - 1)
                kth = kth_item(s - 1)
                t_start = r if r >= kth else kth
                t_finish = t_start + times[v]
                if t_start + bl[v] >= bound:
                    return inf_
                less_equal(free, t_start + eps, mask)
                assign(candidates()[0][:s], t_finish)
                if t_finish > makespan:
                    makespan = t_finish
            for w in succ[v]:
                if t_finish > data_ready[w]:
                    data_ready[w] = t_finish
                nw = n_waiting[w] = n_waiting[w] - 1
                if not nw:
                    hpush(heap, (-bl[w], w))

        assert not any(n_waiting), "DAG invariants guarantee full coverage"
        return makespan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleKernel(V={self.num_tasks}, "
            f"P={self.num_processors}, E={self.csr.num_edges})"
        )


def kernel_for(table: "TimeTable") -> ScheduleKernel:
    """The compiled kernel of ``table`` (built once, cached on it)."""
    kernel = table._kernel
    if kernel is None:
        kernel = ScheduleKernel(table.ptg, table)
        table._kernel = kernel
    return kernel
