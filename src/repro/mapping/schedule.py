"""Schedule representation and invariant checking.

A :class:`Schedule` is the final product of any scheduling algorithm in
this library: for every task a start time, a finish time and a concrete
processor set.  :meth:`Schedule.validate` independently re-checks the
three invariants every valid mixed-parallel schedule must satisfy:

1. *allocation consistency* — task ``v`` occupies exactly ``s(v)``
   distinct processors, all within the platform;
2. *precedence* — a task starts no earlier than the finish of each of its
   predecessors;
3. *exclusivity* — no processor executes two tasks at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ScheduleError
from ..graph import PTG
from ..platform import Cluster

__all__ = ["Schedule", "ScheduledTask"]

#: Numerical slack for start/finish comparisons.
_EPS = 1e-9


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task (a convenience view into a Schedule)."""

    index: int
    name: str
    start: float
    finish: float
    processors: tuple[int, ...]

    @property
    def duration(self) -> float:
        """Execution time of the placed task."""
        return self.finish - self.start

    @property
    def allocation(self) -> int:
        """Number of processors used."""
        return len(self.processors)


class Schedule:
    """A complete schedule of a PTG on a cluster.

    Parameters
    ----------
    ptg, cluster:
        The scheduled application and platform.
    start, finish:
        Float arrays of length ``V``.
    proc_sets:
        For each task, the assigned processor indices (each an int array).
    """

    __slots__ = ("ptg", "cluster", "start", "finish", "proc_sets")

    def __init__(
        self,
        ptg: PTG,
        cluster: Cluster,
        start: np.ndarray,
        finish: np.ndarray,
        proc_sets: list[np.ndarray],
    ) -> None:
        self.ptg = ptg
        self.cluster = cluster
        self.start = np.asarray(start, dtype=np.float64)
        self.finish = np.asarray(finish, dtype=np.float64)
        self.proc_sets = [
            np.asarray(ps, dtype=np.int64) for ps in proc_sets
        ]
        V = ptg.num_tasks
        if self.start.shape != (V,) or self.finish.shape != (V,):
            raise ScheduleError(
                f"start/finish must have shape ({V},), got "
                f"{self.start.shape}/{self.finish.shape}"
            )
        if len(self.proc_sets) != V:
            raise ScheduleError(
                f"expected {V} processor sets, got {len(self.proc_sets)}"
            )

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Overall completion time — the paper's optimization objective."""
        return float(self.finish.max())

    @property
    def allocations(self) -> np.ndarray:
        """Allocation sizes ``s(v)`` recovered from the processor sets."""
        return np.array(
            [len(ps) for ps in self.proc_sets], dtype=np.int64
        )

    @property
    def utilization(self) -> float:
        """Fraction of the ``P x makespan`` area actually computing."""
        ms = self.makespan
        if ms <= 0:
            return 0.0
        area = float(
            np.sum((self.finish - self.start) * self.allocations)
        )
        return area / (self.cluster.num_processors * ms)

    def task(self, v: int) -> ScheduledTask:
        """The placement of task ``v`` as a :class:`ScheduledTask`."""
        return ScheduledTask(
            index=v,
            name=self.ptg.task(v).name,
            start=float(self.start[v]),
            finish=float(self.finish[v]),
            processors=tuple(int(p) for p in self.proc_sets[v]),
        )

    def tasks_by_start(self) -> list[ScheduledTask]:
        """All placements ordered by start time (ties: task index)."""
        order = np.lexsort((np.arange(len(self.start)), self.start))
        return [self.task(int(v)) for v in order]

    # ------------------------------------------------------------------
    def validate(self, times: np.ndarray | None = None) -> None:
        """Raise :class:`ScheduleError` if any invariant is violated.

        Parameters
        ----------
        times:
            Optional expected durations; when given, each task's
            ``finish - start`` must match.
        """
        V = self.ptg.num_tasks
        P = self.cluster.num_processors

        if np.any(self.start < -_EPS):
            raise ScheduleError("negative start time")
        if np.any(self.finish < self.start - _EPS):
            raise ScheduleError("task finishes before it starts")

        for v in range(V):
            ps = self.proc_sets[v]
            if ps.size == 0:
                raise ScheduleError(
                    f"task {self.ptg.task(v).name!r} has no processors"
                )
            if np.unique(ps).size != ps.size:
                raise ScheduleError(
                    f"task {self.ptg.task(v).name!r} lists a processor "
                    "twice"
                )
            if ps.min() < 0 or ps.max() >= P:
                raise ScheduleError(
                    f"task {self.ptg.task(v).name!r} uses an unknown "
                    "processor"
                )

        if times is not None:
            times = np.asarray(times, dtype=np.float64)
            durations = self.finish - self.start
            if not np.allclose(durations, times, rtol=1e-9, atol=1e-9):
                bad = int(np.argmax(np.abs(durations - times)))
                raise ScheduleError(
                    f"task {self.ptg.task(bad).name!r}: duration "
                    f"{durations[bad]} != expected {times[bad]}"
                )

        for u, v in self.ptg.edges:
            if self.start[v] < self.finish[u] - _EPS:
                raise ScheduleError(
                    f"precedence violated: {self.ptg.task(v).name!r} "
                    f"starts at {self.start[v]} before "
                    f"{self.ptg.task(u).name!r} finishes at "
                    f"{self.finish[u]}"
                )

        # exclusivity: per processor, intervals must not overlap
        per_proc: dict[int, list[tuple[float, float, int]]] = {}
        for v in range(V):
            for p in self.proc_sets[v]:
                per_proc.setdefault(int(p), []).append(
                    (float(self.start[v]), float(self.finish[v]), v)
                )
        for p, intervals in per_proc.items():
            intervals.sort()
            for (s1, f1, v1), (s2, f2, v2) in zip(
                intervals, intervals[1:]
            ):
                if s2 < f1 - _EPS:
                    raise ScheduleError(
                        f"processor {p} double-booked by "
                        f"{self.ptg.task(v1).name!r} and "
                        f"{self.ptg.task(v2).name!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(ptg={self.ptg.name!r}, cluster={self.cluster.name!r},"
            f" makespan={self.makespan:.6g})"
        )
