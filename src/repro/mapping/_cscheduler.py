"""Optional C implementation of the makespan scheduling loop.

The Python/numpy fast path in :mod:`repro.mapping.kernel` spends most
of its time in per-task numpy call overhead (the arrays hold only
``P`` elements, so dispatch dominates the actual work).  This module
compiles the same loop to native code at first use — plain C built
with the system compiler and loaded through :mod:`cffi`'s ABI mode, so
no Python headers are required — and caches the shared library under
the system temp directory keyed by a hash of the source.

Bit-identity with the reference engine is preserved by construction:

* every floating-point operation (the bottom-level ``max`` chains, the
  ``t_start``/``t_finish`` additions, the ``<= t_start + 1e-12``
  candidate test) maps to the identical IEEE-754 double operation —
  there is no reassociation, fused arithmetic, or extended precision
  (x86-64 SSE2 doubles, no ``-ffast-math``);
* the ready queue pops tasks in the exact (bottom level descending,
  index ascending) order — a strict total order, so any correct heap
  yields the same sequence as :mod:`heapq`;
* the quickselect only extracts the *value* of the s-th smallest free
  time, which is independent of selection order, and processors are
  committed first-fit by index with the same epsilon window.

Two entry points are exported: ``schedule_makespan`` scores one genome
per call, and ``schedule_makespan_batch`` scores a whole ``(B, V)``
allocation matrix in a single call using a slot-multiset scheduler
(sorted linked list of distinct free times, one processor bitmask per
slot) that replaces the per-task quickselect with prefix-count walks
and bit arithmetic — same IEEE-754 operations, same first-fit index
sets, bit-identical results, several times faster per genome.  The
batch loop is annotated with OpenMP pragmas; when built with
``-fopenmp`` (attempted first, plain build as fallback) the caller can
fan rows across threads via the ``nthreads`` argument.

The property suite in ``tests/test_mapping_kernel.py`` pins the native
path against the pure-Python reference with exact ``==`` comparisons.

If :mod:`cffi` or a C compiler is unavailable, or compilation fails
for any reason, :func:`load` returns ``(None, None)`` and the kernel
keeps its numpy fast path (a warning is logged so the degradation is
visible, never fatal).  A corrupted or truncated cached ``.so`` — e.g.
from a machine crash mid-publish or a cache shared across incompatible
toolchains — is detected at ``dlopen``/symbol-check time, deleted, and
rebuilt once before giving up.  Set ``REPRO_NO_CKERNEL=1`` to force
the fallback; set ``REPRO_CKERNEL_CACHE`` to relocate the build cache.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from contextlib import contextmanager
from pathlib import Path

from ..obs.log import get_logger

__all__ = ["load", "CDEF"]

_log = get_logger("mapping.ckernel")

CDEF = """
double schedule_makespan(
    int V, int P,
    const double *flat_times,
    const int64_t *alloc,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *times_ws, double *bl_ws, double *data_ready_ws,
    int32_t *n_waiting_ws, double *free_ws, double *scratch_ws,
    int32_t *heap_ws);

void schedule_makespan_batch(
    int B, int V, int P, int nthreads,
    const double *flat_times,
    const int64_t *alloc_rows,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *out);
"""

_C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

#define EPS 1e-12

/* Ready-queue ordering: bottom level descending, task index ascending
 * on ties — the exact total order of the reference mapper's
 * (-bl[v], v) heapq tuples. */
static inline int heap_before(const double *bl, int32_t a, int32_t b) {
    if (bl[a] != bl[b]) return bl[a] > bl[b];
    return a < b;
}

static void heap_push(int32_t *heap, int *n, const double *bl,
                      int32_t v) {
    int i = (*n)++;
    heap[i] = v;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (!heap_before(bl, heap[i], heap[parent]))
            break;
        int32_t tmp = heap[parent];
        heap[parent] = heap[i];
        heap[i] = tmp;
        i = parent;
    }
}

static int32_t heap_pop(int32_t *heap, int *n, const double *bl) {
    int32_t top = heap[0];
    int32_t last = heap[--(*n)];
    int m = *n;
    int i = 0;
    heap[0] = last;
    for (;;) {
        int child = 2 * i + 1;
        if (child >= m)
            break;
        if (child + 1 < m && heap_before(bl, heap[child + 1], heap[child]))
            child++;
        if (!heap_before(bl, heap[child], heap[i]))
            break;
        int32_t tmp = heap[i];
        heap[i] = heap[child];
        heap[child] = tmp;
        i = child;
    }
    return top;
}

/* Value of the k-th smallest element (0-based) — Hoare quickselect.
 * Only the value is consumed, which is independent of how ties are
 * arranged, so any correct selection algorithm is bit-identical to
 * numpy's introselect partition. */
static double kth_smallest(double *a, int n, int k) {
    int lo = 0, hi = n - 1;
    while (lo < hi) {
        double pivot = a[lo + (hi - lo) / 2];
        int i = lo, j = hi;
        while (i <= j) {
            while (a[i] < pivot) i++;
            while (a[j] > pivot) j--;
            if (i <= j) {
                double t = a[i];
                a[i] = a[j];
                a[j] = t;
                i++;
                j--;
            }
        }
        if (k <= j)
            hi = j;
        else if (k >= i)
            lo = i;
        else
            return a[k];
    }
    return a[lo];
}

double schedule_makespan(
    int V, int P,
    const double *flat_times,
    const int64_t *alloc,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *t, double *bl, double *data_ready,
    int32_t *n_waiting, double *free_v, double *scratch,
    int32_t *heap)
{
    /* per-task times from the dense table: T(v, s(v)) */
    for (int v = 0; v < V; v++)
        t[v] = flat_times[(size_t)v * P + (alloc[v] - 1)];

    /* bottom levels: reverse-topological sweep, exact max chains */
    for (int i = 0; i < V; i++) {
        int32_t v = rev_topo[i];
        int32_t s = indptr[v], e = indptr[v + 1];
        if (s == e) {
            bl[v] = t[v];
            continue;
        }
        double m = bl[indices[s]];
        for (int32_t j = s + 1; j < e; j++) {
            double x = bl[indices[j]];
            if (x > m)
                m = x;
        }
        bl[v] = t[v] + m;
    }

    int heap_n = 0;
    for (int v = 0; v < V; v++) {
        data_ready[v] = 0.0;
        n_waiting[v] = indeg[v];
        if (indeg[v] == 0)
            heap_push(heap, &heap_n, bl, v);
    }
    for (int p = 0; p < P; p++)
        free_v[p] = 0.0;

    double makespan = 0.0;
    while (heap_n > 0) {
        int32_t v = heap_pop(heap, &heap_n, bl);
        int64_t s = alloc[v];
        double r = data_ready[v];
        double t_start, t_finish;
        if (r >= makespan) {
            /* every processor is free by r: prefix assignment and the
             * new finish time is the new peak */
            t_start = r;
            t_finish = r + t[v];
            if (t_start + bl[v] >= bound)
                return INFINITY;
            for (int64_t p = 0; p < s; p++)
                free_v[p] = t_finish;
            makespan = t_finish;
        } else if (s == P) {
            double kth = free_v[0];
            for (int p = 1; p < P; p++)
                if (free_v[p] > kth)
                    kth = free_v[p];
            t_start = r >= kth ? r : kth;
            t_finish = t_start + t[v];
            if (t_start + bl[v] >= bound)
                return INFINITY;
            for (int p = 0; p < P; p++)
                free_v[p] = t_finish;
            if (t_finish > makespan)
                makespan = t_finish;
        } else {
            for (int p = 0; p < P; p++)
                scratch[p] = free_v[p];
            double kth = kth_smallest(scratch, P, (int)(s - 1));
            t_start = r >= kth ? r : kth;
            t_finish = t_start + t[v];
            if (t_start + bl[v] >= bound)
                return INFINITY;
            /* first-fit by index among processors free at t_start */
            double limit = t_start + EPS;
            int64_t left = s;
            for (int p = 0; p < P && left > 0; p++) {
                if (free_v[p] <= limit) {
                    free_v[p] = t_finish;
                    left--;
                }
            }
            if (t_finish > makespan)
                makespan = t_finish;
        }
        for (int32_t j = indptr[v]; j < indptr[v + 1]; j++) {
            int32_t w = indices[j];
            if (t_finish > data_ready[w])
                data_ready[w] = t_finish;
            if (--n_waiting[w] == 0)
                heap_push(heap, &heap_n, bl, w);
        }
    }
    return makespan;
}

/* ------------------------------------------------------------------
 * Population-at-once batch path.
 *
 * The per-genome loop above pays a quickselect over all P free times
 * for almost every task.  The batch path replaces the free-time array
 * with a *multiset of slots*: a value-sorted doubly-linked list with
 * one node per distinct free time, each node owning a bitmask of the
 * processor indices that become free at that time.  The s-th smallest
 * free time is then a prefix-count walk over a handful of nodes, and
 * the first-fit-by-index commitment is "the lowest s set bits of the
 * union of the qualifying nodes' masks" — pure integer bit tricks.
 *
 * Bit-identity with the loop above (and the numpy/python engines) is
 * preserved by construction: the floating-point operations are the
 * identical IEEE-754 doubles in the identical order, slot values are
 * compared exactly (equal finish times simply coexist as distinct
 * nodes), and the chosen processor-index set is the same first-fit
 * prefix the epsilon-window scan commits.
 */

static inline int popcount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(x);
#else
    int c = 0;
    while (x) {
        x &= x - 1;
        c++;
    }
    return c;
#endif
}

/* count of leading zeros; x must be nonzero */
static inline int clz64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clzll(x);
#else
    int c = 0;
    uint64_t top = (uint64_t)1 << 63;
    while (!(x & top)) {
        x <<= 1;
        c++;
    }
    return c;
#endif
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define REPRO_HAVE_BMI2_DISPATCH 1
#include <immintrin.h>
static int have_bmi2 = 0;
__attribute__((target("bmi2")))
static uint64_t lowest_bits_bmi2(uint64_t x, int k) {
    /* deposit a k-bit run into the positions of x's set bits: exactly
     * the lowest k set bits of x, in one instruction */
    return _pdep_u64(((uint64_t)1 << k) - 1, x);
}
#endif

/* the lowest k set bits of x, given pc = popcount(x); k >= 1 */
static inline uint64_t lowest_bits(uint64_t x, int k, int pc) {
    if (k >= pc)
        return x;
#if defined(REPRO_HAVE_BMI2_DISPATCH)
    if (have_bmi2)
        return lowest_bits_bmi2(x, k);
#endif
    if (k <= pc - k) {
        uint64_t y = x;
        for (int i = 0; i < k; i++)
            y &= y - 1;
        return x ^ y;
    }
    uint64_t y = x;
    for (int i = k; i < pc; i++)
        y &= ~(((uint64_t)1 << 63) >> clz64(y));
    return y;
}

static double schedule_makespan_slots(
    int V, int P, int W,
    const double *flat_times,
    const int64_t *alloc,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *t, double *bl, double *data_ready,
    int32_t *n_waiting, int32_t *rheap,
    double *sval, int32_t *scnt, int32_t *snext, int32_t *sprev,
    int32_t *sfree, int32_t *qs,
    uint64_t *smask, uint64_t *chosen)
{
    const int32_t SHEAD_ID = P;      /* sentinel before all slots */
    const int32_t STAIL_ID = P + 1;  /* sentinel after all slots */

    for (int v = 0; v < V; v++)
        t[v] = flat_times[(size_t)v * P + (alloc[v] - 1)];

    for (int i = 0; i < V; i++) {
        int32_t v = rev_topo[i];
        int32_t s = indptr[v], e = indptr[v + 1];
        if (s == e) {
            bl[v] = t[v];
            continue;
        }
        double m = bl[indices[s]];
        for (int32_t j = s + 1; j < e; j++) {
            double x = bl[indices[j]];
            if (x > m)
                m = x;
        }
        bl[v] = t[v] + m;
    }

    int heap_n = 0;
    for (int v = 0; v < V; v++) {
        data_ready[v] = 0.0;
        n_waiting[v] = indeg[v];
        if (indeg[v] == 0)
            heap_push(rheap, &heap_n, bl, v);
    }

    /* all processors start free at 0.0: one slot holding bits 0..P-1 */
    sval[SHEAD_ID] = -HUGE_VAL;
    sval[STAIL_ID] = HUGE_VAL;
    snext[SHEAD_ID] = 0;
    sprev[STAIL_ID] = 0;
    sval[0] = 0.0;
    scnt[0] = P;
    snext[0] = STAIL_ID;
    sprev[0] = SHEAD_ID;
    for (int w = 0; w < W - 1; w++)
        smask[w] = ~(uint64_t)0;
    smask[W - 1] = (P % 64)
        ? (((uint64_t)1 << (P % 64)) - 1)
        : ~(uint64_t)0;
    int nfree = 0;
    for (int32_t id = 1; id < P; id++)
        sfree[nfree++] = id;

    double makespan = 0.0;
    while (heap_n > 0) {
        int32_t v = heap_pop(rheap, &heap_n, bl);
        int64_t s = alloc[v];
        double r = data_ready[v];
        double t_start;
        int at_peak = r >= makespan;
        int q = 0;
        if (at_peak) {
            /* every processor is free by r */
            t_start = r;
        } else {
            /* one walk finds both the s-th smallest free time and the
             * qualifying slots: every slot counted toward the s-th
             * smallest has sval <= kth <= t_start, so it qualifies */
            int32_t sl = snext[SHEAD_ID];
            int64_t cum = scnt[sl];
            qs[q++] = sl;
            while (cum < s) {
                sl = snext[sl];
                cum += scnt[sl];
                qs[q++] = sl;
            }
            double kth = sval[sl];
            t_start = r >= kth ? r : kth;
            double limit = t_start + EPS;
            for (sl = snext[sl]; sl != STAIL_ID && sval[sl] <= limit;
                 sl = snext[sl])
                qs[q++] = sl;
        }
        double t_finish = t_start + t[v];
        if (t_start + bl[v] >= bound)
            return INFINITY;

        /* first-fit by index among processors free at t_start: the
         * lowest s bits of the union of the qualifying slots' masks */
        int top_w;  /* last word (inclusive) holding a chosen bit */
        if (at_peak) {
            /* every processor qualifies, so the first-fit choice is
             * simply processors 0..s-1: a prefix bitmask, no union
             * building needed.  Every slot is qualifying for the
             * subtraction pass below. */
            for (int32_t sl = snext[SHEAD_ID]; sl != STAIL_ID;
                 sl = snext[sl])
                qs[q++] = sl;
            int64_t full = s / 64;
            for (int w = 0; w < W; w++)
                chosen[w] = w < full ? ~(uint64_t)0 : 0;
            if (s % 64)
                chosen[full] = (((uint64_t)1 << (s % 64)) - 1);
            top_w = (int)((s - 1) / 64);
        } else if (q == 1) {
            /* single qualifying slot: it holds >= s processors, so the
             * choice is its lowest s bits and the subtraction below is
             * exact.  When the slot holds exactly s the whole slot
             * moves to t_finish — reuse it in place: no mask copy, no
             * subtraction, just a value update and a list re-link. */
            int32_t sl = qs[0];
            if (scnt[sl] == (int32_t)s) {
                int32_t before = sprev[sl], after = snext[sl];
                snext[before] = after;
                sprev[after] = before;
                sval[sl] = t_finish;
                int32_t tail = sprev[STAIL_ID];
                while (sval[tail] > t_finish)
                    tail = sprev[tail];
                int32_t nxt = snext[tail];
                snext[tail] = sl;
                sprev[sl] = tail;
                snext[sl] = nxt;
                sprev[nxt] = sl;
                if (t_finish > makespan)
                    makespan = t_finish;
                for (int32_t j = indptr[v]; j < indptr[v + 1]; j++) {
                    int32_t w2 = indices[j];
                    if (t_finish > data_ready[w2])
                        data_ready[w2] = t_finish;
                    if (--n_waiting[w2] == 0)
                        heap_push(rheap, &heap_n, bl, w2);
                }
                continue;
            }
            const uint64_t *m = smask + (size_t)sl * W;
            int64_t left = s;
            int w = 0;
            for (;; w++) {
                uint64_t x = m[w];
                int pc = popcount64(x);
                if (pc < left) {
                    chosen[w] = x;
                    left -= pc;
                } else {
                    chosen[w] = lowest_bits(x, (int)left, pc);
                    break;
                }
            }
            top_w = w;
            for (int z = top_w + 1; z < W; z++)
                chosen[z] = 0;
        } else {
            /* build the union word by word, lowest first, stopping as
             * soon as s set bits have been found: the chosen bits are
             * the lowest s of the union, so higher words are never
             * needed */
            int64_t left = s;
            int w = 0;
            for (;; w++) {
                uint64_t x = 0;
                for (int i = 0; i < q; i++)
                    x |= smask[(size_t)qs[i] * W + w];
                int pc = popcount64(x);
                if (pc < left) {
                    chosen[w] = x;
                    left -= pc;
                } else {
                    chosen[w] = lowest_bits(x, (int)left, pc);
                    break;
                }
            }
            top_w = w;
            for (int z = top_w + 1; z < W; z++)
                chosen[z] = 0;
        }

        /* subtract the chosen processors from their slots */
        for (int i = 0; i < q; i++) {
            int32_t sl = qs[i];
            uint64_t *m = smask + (size_t)sl * W;
            int removed = 0;
            for (int w = 0; w <= top_w; w++) {
                uint64_t rm = m[w] & chosen[w];
                if (rm) {
                    m[w] ^= rm;
                    removed += popcount64(rm);
                }
            }
            if (removed) {
                scnt[sl] -= removed;
                if (scnt[sl] == 0) {
                    int32_t before = sprev[sl], after = snext[sl];
                    snext[before] = after;
                    sprev[after] = before;
                    sfree[nfree++] = sl;
                }
            }
        }

        /* new slot: the chosen processors finish at t_finish */
        int32_t id = sfree[--nfree];
        sval[id] = t_finish;
        scnt[id] = (int32_t)s;
        memcpy(smask + (size_t)id * W, chosen, (size_t)W * 8);
        int32_t after = sprev[STAIL_ID];
        while (sval[after] > t_finish)
            after = sprev[after];
        int32_t nxt = snext[after];
        snext[after] = id;
        sprev[id] = after;
        snext[id] = nxt;
        sprev[nxt] = id;

        if (at_peak)
            makespan = t_finish;
        else if (t_finish > makespan)
            makespan = t_finish;

        for (int32_t j = indptr[v]; j < indptr[v + 1]; j++) {
            int32_t w = indices[j];
            if (t_finish > data_ready[w])
                data_ready[w] = t_finish;
            if (--n_waiting[w] == 0)
                heap_push(rheap, &heap_n, bl, w);
        }
    }
    return makespan;
}

void schedule_makespan_batch(
    int B, int V, int P, int nthreads,
    const double *flat_times,
    const int64_t *alloc_rows,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *out)
{
#if !defined(_OPENMP)
    nthreads = 1;
#endif
    if (nthreads < 1)
        nthreads = 1;
#if defined(REPRO_HAVE_BMI2_DISPATCH)
    have_bmi2 = __builtin_cpu_supports("bmi2");
#endif
#pragma omp parallel num_threads(nthreads) if (nthreads > 1 && B > 1)
    {
        int W = (P + 63) / 64;
        size_t n_dbl = 3 * (size_t)V + (size_t)P + 2;
        size_t n_i32 =
            2 * (size_t)V + 3 * ((size_t)P + 2) + 2 * (size_t)P;
        size_t n_u64 = (size_t)(P + 1) * (size_t)W;
        double *darena = (double *)malloc(n_dbl * sizeof(double));
        int32_t *iarena = (int32_t *)malloc(n_i32 * sizeof(int32_t));
        uint64_t *marena = (uint64_t *)malloc(n_u64 * sizeof(uint64_t));
        int ok = darena != NULL && iarena != NULL && marena != NULL;
#pragma omp for schedule(static)
        for (int b = 0; b < B; b++) {
            if (!ok) {
                /* arena allocation failed: NaN marks the row so the
                 * caller can re-run it on a fallback path */
                out[b] = NAN;
                continue;
            }
            double *t = darena, *bl = t + V, *dr = bl + V;
            double *sval = dr + V;
            int32_t *nw = iarena, *rheap = nw + V;
            int32_t *scnt = rheap + V;
            int32_t *snext = scnt + (P + 2);
            int32_t *sprev = snext + (P + 2);
            int32_t *sfree = sprev + (P + 2);
            int32_t *qs = sfree + P;
            uint64_t *smask = marena;
            uint64_t *chosen = smask + (size_t)P * W;
            out[b] = schedule_makespan_slots(
                V, P, W, flat_times, alloc_rows + (size_t)b * V,
                rev_topo, indptr, indices, indeg, bound,
                t, bl, dr, nw, rheap,
                sval, scnt, snext, sprev, sfree, qs,
                smask, chosen);
        }
        free(darena);
        free(iarena);
        free(marena);
    }
}
"""

_ffi = None
_lib = None
_tried = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CKERNEL_CACHE")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return Path(tempfile.gettempdir()) / f"repro-ckernel-{uid}"


def _flags(openmp: bool) -> list[str]:
    flags = ["-O2", "-shared", "-fPIC"]
    if openmp:
        flags.append("-fopenmp")
    return flags


def _lib_path(openmp: bool) -> Path:
    """Cached artifact path for one build variant (source+flag hash)."""
    digest = hashlib.sha256(
        (_C_SOURCE + "\0" + " ".join(_flags(openmp))).encode("utf-8")
    ).hexdigest()[:16]
    return _cache_dir() / f"scheduler-{digest}.so"


@contextmanager
def _compile_cache_lock(cache: Path):
    """Exclusive inter-process lock over compile-cache mutation.

    Concurrent service workers (and parallel CI jobs sharing one cache
    directory) race the corrupt-``.so`` delete+rebuild path: without
    serialization one process can unlink a *good* library another
    process published (or is mid-``dlopen`` on).  An ``flock`` on a
    sidecar lock file makes "inspect, delete, rebuild, publish" atomic
    across processes.  Where :mod:`fcntl` is unavailable, or the lock
    file cannot be opened (read-only cache), this degrades to a no-op:
    the atomic ``os.replace`` publish still keeps races *benign* (never
    corrupting), just wasteful.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-posix platforms
        yield
        return
    try:
        cache.mkdir(parents=True, exist_ok=True)
        handle = open(cache / ".build.lock", "a+b")
    except OSError:  # pragma: no cover - unwritable cache directory
        yield
        return
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    finally:
        handle.close()


def _build(openmp: bool) -> Path:
    """Compile the shared library (cached by source + flag hash).

    ``openmp=True`` adds ``-fopenmp`` so the batch entry point can fan
    genomes across threads (``REPRO_CKERNEL_THREADS``); the flag is
    part of the cache digest, so the two variants never collide.
    Without OpenMP the ``#pragma omp`` lines are inert and the batch
    path runs serially — same results either way.
    """
    flags = _flags(openmp)
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    lib_path = _lib_path(openmp)
    if lib_path.exists():
        return lib_path
    with _compile_cache_lock(cache):
        # double-checked under the lock: a concurrent worker may have
        # published the artifact while we waited for the flock
        if lib_path.exists():
            return lib_path
        src_path = lib_path.with_suffix(".c")
        src_path.write_text(_C_SOURCE, encoding="utf-8")
        tmp_path = cache / f"{lib_path.stem}.{os.getpid()}.tmp.so"
        compiler = os.environ.get("CC", "cc")
        try:
            subprocess.run(
                [compiler, *flags, str(src_path), "-o", str(tmp_path)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            # atomic publish: even an unlocked racer (no fcntl) only
            # replaces the file with identical content
            os.replace(tmp_path, lib_path)
        finally:
            tmp_path.unlink(missing_ok=True)
    return lib_path


def _describe_failure(exc: BaseException) -> str:
    """Human-readable cause, including the compiler's stderr if any."""
    if isinstance(exc, subprocess.CalledProcessError):
        stderr = exc.stderr or b""
        if isinstance(stderr, bytes):
            stderr = stderr.decode("utf-8", "replace")
        detail = " ".join(stderr.split())[:200]
        return f"compiler exited with status {exc.returncode}: {detail}"
    return f"{type(exc).__name__}: {exc}"


def _dlopen_checked(ffi, lib_path: Path):
    """dlopen the cached build and verify it exports both entry points.

    A truncated or stale cached library fails here — at load time,
    where the caller can rebuild — rather than mid-optimization.
    """
    lib = ffi.dlopen(str(lib_path))
    for symbol in ("schedule_makespan", "schedule_makespan_batch"):
        getattr(lib, symbol)
    return lib


def load():
    """``(ffi, lib)`` for the native scheduler, or ``(None, None)``.

    The first call compiles (or dlopens the cached build); failures of
    any kind — no cffi, no compiler, sandboxed filesystem, corrupted
    cache — degrade to ``(None, None)`` with a logged warning so
    callers keep their pure-Python path.  A cached library that fails
    to load or lacks the expected symbols is deleted and rebuilt once.
    """
    global _ffi, _lib, _tried
    if _tried:
        return _ffi, _lib
    _tried = True
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None, None
    try:
        from cffi import FFI
    except ImportError:
        _log.debug(
            "cffi is not installed; using the numpy scheduling path"
        )
        return None, None
    ffi = FFI()
    ffi.cdef(CDEF)
    # Prefer the OpenMP build (threaded batch path); fall back to a
    # plain build when -fopenmp does not compile or its runtime
    # library fails to load on this machine.
    lib = None
    failures: list[str] = []
    for openmp in (True, False):
        try:
            lib_path = _build(openmp)
        except Exception as exc:
            failures.append(_describe_failure(exc))
            continue
        try:
            lib = _dlopen_checked(ffi, lib_path)
            break
        except Exception as exc:
            _log.warning(
                "cached native scheduling kernel %s failed to load "
                "(%s); deleting it and rebuilding once",
                lib_path,
                _describe_failure(exc),
            )
            try:
                with _compile_cache_lock(_cache_dir()):
                    # under the lock: a concurrent worker may already
                    # have replaced the bad artifact while we waited —
                    # retry the load before deleting, so a *good*
                    # library is never unlinked from under a peer
                    try:
                        lib = _dlopen_checked(ffi, lib_path)
                    except Exception:
                        Path(lib_path).unlink(missing_ok=True)
                        lib = None
                if lib is None:
                    lib_path = _build(openmp)
                    lib = _dlopen_checked(ffi, lib_path)
                break
            except Exception as exc2:
                failures.append(_describe_failure(exc2))
                continue
    if lib is None:
        _log.warning(
            "could not build the native scheduling kernel (%s); "
            "falling back to the numpy path",
            "; ".join(failures) or "no compiler attempt succeeded",
        )
        return None, None
    _ffi, _lib = ffi, lib
    return _ffi, _lib
