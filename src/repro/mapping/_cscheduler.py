"""Optional C implementation of the makespan scheduling loop.

The Python/numpy fast path in :mod:`repro.mapping.kernel` spends most
of its time in per-task numpy call overhead (the arrays hold only
``P`` elements, so dispatch dominates the actual work).  This module
compiles the same loop to native code at first use — plain C built
with the system compiler and loaded through :mod:`cffi`'s ABI mode, so
no Python headers are required — and caches the shared library under
the system temp directory keyed by a hash of the source.

Bit-identity with the reference engine is preserved by construction:

* every floating-point operation (the bottom-level ``max`` chains, the
  ``t_start``/``t_finish`` additions, the ``<= t_start + 1e-12``
  candidate test) maps to the identical IEEE-754 double operation —
  there is no reassociation, fused arithmetic, or extended precision
  (x86-64 SSE2 doubles, no ``-ffast-math``);
* the ready queue pops tasks in the exact (bottom level descending,
  index ascending) order — a strict total order, so any correct heap
  yields the same sequence as :mod:`heapq`;
* the quickselect only extracts the *value* of the s-th smallest free
  time, which is independent of selection order, and processors are
  committed first-fit by index with the same epsilon window.

The property suite in ``tests/test_mapping_kernel.py`` pins the native
path against the pure-Python reference with exact ``==`` comparisons.

If :mod:`cffi` or a C compiler is unavailable, or compilation fails
for any reason, :func:`load` returns ``(None, None)`` and the kernel
keeps its numpy fast path (a warning is logged so the degradation is
visible, never fatal).  A corrupted or truncated cached ``.so`` — e.g.
from a machine crash mid-publish or a cache shared across incompatible
toolchains — is detected at ``dlopen``/symbol-check time, deleted, and
rebuilt once before giving up.  Set ``REPRO_NO_CKERNEL=1`` to force
the fallback; set ``REPRO_CKERNEL_CACHE`` to relocate the build cache.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

from ..obs.log import get_logger

__all__ = ["load", "CDEF"]

_log = get_logger("mapping.ckernel")

CDEF = """
double schedule_makespan(
    int V, int P,
    const double *flat_times,
    const int64_t *alloc,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *times_ws, double *bl_ws, double *data_ready_ws,
    int32_t *n_waiting_ws, double *free_ws, double *scratch_ws,
    int32_t *heap_ws);

void schedule_makespan_batch(
    int B, int V, int P,
    const double *flat_times,
    const int64_t *alloc_rows,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *times_ws, double *bl_ws, double *data_ready_ws,
    int32_t *n_waiting_ws, double *free_ws, double *scratch_ws,
    int32_t *heap_ws, double *out);
"""

_C_SOURCE = r"""
#include <stddef.h>
#include <stdint.h>
#include <math.h>

#define EPS 1e-12

/* Ready-queue ordering: bottom level descending, task index ascending
 * on ties — the exact total order of the reference mapper's
 * (-bl[v], v) heapq tuples. */
static inline int heap_before(const double *bl, int32_t a, int32_t b) {
    if (bl[a] != bl[b]) return bl[a] > bl[b];
    return a < b;
}

static void heap_push(int32_t *heap, int *n, const double *bl,
                      int32_t v) {
    int i = (*n)++;
    heap[i] = v;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (!heap_before(bl, heap[i], heap[parent]))
            break;
        int32_t tmp = heap[parent];
        heap[parent] = heap[i];
        heap[i] = tmp;
        i = parent;
    }
}

static int32_t heap_pop(int32_t *heap, int *n, const double *bl) {
    int32_t top = heap[0];
    int32_t last = heap[--(*n)];
    int m = *n;
    int i = 0;
    heap[0] = last;
    for (;;) {
        int child = 2 * i + 1;
        if (child >= m)
            break;
        if (child + 1 < m && heap_before(bl, heap[child + 1], heap[child]))
            child++;
        if (!heap_before(bl, heap[child], heap[i]))
            break;
        int32_t tmp = heap[i];
        heap[i] = heap[child];
        heap[child] = tmp;
        i = child;
    }
    return top;
}

/* Value of the k-th smallest element (0-based) — Hoare quickselect.
 * Only the value is consumed, which is independent of how ties are
 * arranged, so any correct selection algorithm is bit-identical to
 * numpy's introselect partition. */
static double kth_smallest(double *a, int n, int k) {
    int lo = 0, hi = n - 1;
    while (lo < hi) {
        double pivot = a[lo + (hi - lo) / 2];
        int i = lo, j = hi;
        while (i <= j) {
            while (a[i] < pivot) i++;
            while (a[j] > pivot) j--;
            if (i <= j) {
                double t = a[i];
                a[i] = a[j];
                a[j] = t;
                i++;
                j--;
            }
        }
        if (k <= j)
            hi = j;
        else if (k >= i)
            lo = i;
        else
            return a[k];
    }
    return a[lo];
}

double schedule_makespan(
    int V, int P,
    const double *flat_times,
    const int64_t *alloc,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *t, double *bl, double *data_ready,
    int32_t *n_waiting, double *free_v, double *scratch,
    int32_t *heap)
{
    /* per-task times from the dense table: T(v, s(v)) */
    for (int v = 0; v < V; v++)
        t[v] = flat_times[(size_t)v * P + (alloc[v] - 1)];

    /* bottom levels: reverse-topological sweep, exact max chains */
    for (int i = 0; i < V; i++) {
        int32_t v = rev_topo[i];
        int32_t s = indptr[v], e = indptr[v + 1];
        if (s == e) {
            bl[v] = t[v];
            continue;
        }
        double m = bl[indices[s]];
        for (int32_t j = s + 1; j < e; j++) {
            double x = bl[indices[j]];
            if (x > m)
                m = x;
        }
        bl[v] = t[v] + m;
    }

    int heap_n = 0;
    for (int v = 0; v < V; v++) {
        data_ready[v] = 0.0;
        n_waiting[v] = indeg[v];
        if (indeg[v] == 0)
            heap_push(heap, &heap_n, bl, v);
    }
    for (int p = 0; p < P; p++)
        free_v[p] = 0.0;

    double makespan = 0.0;
    while (heap_n > 0) {
        int32_t v = heap_pop(heap, &heap_n, bl);
        int64_t s = alloc[v];
        double r = data_ready[v];
        double t_start, t_finish;
        if (r >= makespan) {
            /* every processor is free by r: prefix assignment and the
             * new finish time is the new peak */
            t_start = r;
            t_finish = r + t[v];
            if (t_start + bl[v] >= bound)
                return INFINITY;
            for (int64_t p = 0; p < s; p++)
                free_v[p] = t_finish;
            makespan = t_finish;
        } else if (s == P) {
            double kth = free_v[0];
            for (int p = 1; p < P; p++)
                if (free_v[p] > kth)
                    kth = free_v[p];
            t_start = r >= kth ? r : kth;
            t_finish = t_start + t[v];
            if (t_start + bl[v] >= bound)
                return INFINITY;
            for (int p = 0; p < P; p++)
                free_v[p] = t_finish;
            if (t_finish > makespan)
                makespan = t_finish;
        } else {
            for (int p = 0; p < P; p++)
                scratch[p] = free_v[p];
            double kth = kth_smallest(scratch, P, (int)(s - 1));
            t_start = r >= kth ? r : kth;
            t_finish = t_start + t[v];
            if (t_start + bl[v] >= bound)
                return INFINITY;
            /* first-fit by index among processors free at t_start */
            double limit = t_start + EPS;
            int64_t left = s;
            for (int p = 0; p < P && left > 0; p++) {
                if (free_v[p] <= limit) {
                    free_v[p] = t_finish;
                    left--;
                }
            }
            if (t_finish > makespan)
                makespan = t_finish;
        }
        for (int32_t j = indptr[v]; j < indptr[v + 1]; j++) {
            int32_t w = indices[j];
            if (t_finish > data_ready[w])
                data_ready[w] = t_finish;
            if (--n_waiting[w] == 0)
                heap_push(heap, &heap_n, bl, w);
        }
    }
    return makespan;
}

void schedule_makespan_batch(
    int B, int V, int P,
    const double *flat_times,
    const int64_t *alloc_rows,
    const int32_t *rev_topo,
    const int32_t *indptr,
    const int32_t *indices,
    const int32_t *indeg,
    double bound,
    double *t, double *bl, double *data_ready,
    int32_t *n_waiting, double *free_v, double *scratch,
    int32_t *heap, double *out)
{
    for (int b = 0; b < B; b++)
        out[b] = schedule_makespan(
            V, P, flat_times, alloc_rows + (size_t)b * V,
            rev_topo, indptr, indices, indeg, bound,
            t, bl, data_ready, n_waiting, free_v, scratch, heap);
}
"""

_ffi = None
_lib = None
_tried = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CKERNEL_CACHE")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return Path(tempfile.gettempdir()) / f"repro-ckernel-{uid}"


def _build() -> Path:
    """Compile the shared library (cached by source hash)."""
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    lib_path = cache / f"scheduler-{digest}.so"
    if lib_path.exists():
        return lib_path
    src_path = cache / f"scheduler-{digest}.c"
    src_path.write_text(_C_SOURCE, encoding="utf-8")
    tmp_path = cache / f"scheduler-{digest}.{os.getpid()}.tmp.so"
    compiler = os.environ.get("CC", "cc")
    try:
        subprocess.run(
            [
                compiler,
                "-O2",
                "-shared",
                "-fPIC",
                str(src_path),
                "-o",
                str(tmp_path),
            ],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # atomic publish: concurrent builders race benignly to the
        # same file
        os.replace(tmp_path, lib_path)
    finally:
        tmp_path.unlink(missing_ok=True)
    return lib_path


def _describe_failure(exc: BaseException) -> str:
    """Human-readable cause, including the compiler's stderr if any."""
    if isinstance(exc, subprocess.CalledProcessError):
        stderr = exc.stderr or b""
        if isinstance(stderr, bytes):
            stderr = stderr.decode("utf-8", "replace")
        detail = " ".join(stderr.split())[:200]
        return f"compiler exited with status {exc.returncode}: {detail}"
    return f"{type(exc).__name__}: {exc}"


def _dlopen_checked(ffi, lib_path: Path):
    """dlopen the cached build and verify it exports both entry points.

    A truncated or stale cached library fails here — at load time,
    where the caller can rebuild — rather than mid-optimization.
    """
    lib = ffi.dlopen(str(lib_path))
    for symbol in ("schedule_makespan", "schedule_makespan_batch"):
        getattr(lib, symbol)
    return lib


def load():
    """``(ffi, lib)`` for the native scheduler, or ``(None, None)``.

    The first call compiles (or dlopens the cached build); failures of
    any kind — no cffi, no compiler, sandboxed filesystem, corrupted
    cache — degrade to ``(None, None)`` with a logged warning so
    callers keep their pure-Python path.  A cached library that fails
    to load or lacks the expected symbols is deleted and rebuilt once.
    """
    global _ffi, _lib, _tried
    if _tried:
        return _ffi, _lib
    _tried = True
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None, None
    try:
        from cffi import FFI
    except ImportError:
        _log.debug(
            "cffi is not installed; using the numpy scheduling path"
        )
        return None, None
    ffi = FFI()
    ffi.cdef(CDEF)
    try:
        lib_path = _build()
    except Exception as exc:
        _log.warning(
            "could not build the native scheduling kernel (%s); "
            "falling back to the numpy path",
            _describe_failure(exc),
        )
        return None, None
    try:
        lib = _dlopen_checked(ffi, lib_path)
    except Exception as exc:
        _log.warning(
            "cached native scheduling kernel %s failed to load (%s); "
            "deleting it and rebuilding once",
            lib_path,
            _describe_failure(exc),
        )
        try:
            Path(lib_path).unlink(missing_ok=True)
            lib_path = _build()
            lib = _dlopen_checked(ffi, lib_path)
        except Exception as exc2:
            _log.warning(
                "native scheduling kernel rebuild failed (%s); "
                "falling back to the numpy path",
                _describe_failure(exc2),
            )
            return None, None
    _ffi, _lib = ffi, lib
    return _ffi, _lib
