"""Execution monitoring: observed versus predicted finish times.

The monitor is the runtime's *belief state*.  It records, for every
running task, when the model says it should finish; compares that
against what actually happens; and decides when the frontier must be
re-planned.  Three conditions fire a reschedule:

* **task failure** — a retry changes the precedence frontier's timing;
* **processor loss** — the plan references capacity that no longer
  exists;
* **straggler detection** — a task observably ran past its predicted
  finish by more than the policy's threshold, so every successor's
  planned start is stale.

A fourth condition, **deadline breach**, fires at most once: when the
projected makespan (completed work, running tasks' expected finishes,
and the current frontier plan, whichever ends last) first exceeds the
deadline, the monitor grants one extra emergency re-plan and then
latches — a breached deadline that stays breached must not re-trigger
on every subsequent event.

The monitor deliberately knows *less* than the fault injector: an
undetected straggler's expected finish is the model's prediction, not
the inflated truth.  Only at the predicted finish time — the earliest
instant "still running late" is observable — does the monitor learn the
re-estimated completion.  Keeping that epistemic line honest is what
makes the rescheduler's decisions realistic.
"""

from __future__ import annotations

import numpy as np

from .policies import ReactionPolicy

__all__ = ["ExecutionMonitor", "RESCHEDULE_REASONS"]

#: Reschedule reasons the monitor can emit.
RESCHEDULE_REASONS = (
    "task-failure",
    "processor-lost",
    "straggler",
    "deadline",
)


class ExecutionMonitor:
    """Tracks predicted finishes and decides when to re-plan.

    Parameters
    ----------
    num_tasks:
        Size of the task graph being executed.
    policy:
        Supplies the straggler-detection threshold.
    deadline:
        Optional absolute completion deadline (simulated seconds).
    """

    def __init__(
        self,
        num_tasks: int,
        policy: ReactionPolicy,
        deadline: float | None = None,
    ) -> None:
        self.policy = policy
        self.deadline = None if deadline is None else float(deadline)
        self.deadline_flagged = False
        #: Expected finish of each *running* task (NaN = not running).
        self.expected_finish = np.full(
            num_tasks, np.nan, dtype=np.float64
        )
        #: Latest observed completion time so far.
        self.completed_until = 0.0

    # -- lifecycle notifications ---------------------------------------
    def task_started(self, task: int, predicted_finish: float) -> None:
        """A task began; the model promises ``predicted_finish``."""
        self.expected_finish[task] = float(predicted_finish)

    def task_finished(self, task: int, time: float) -> None:
        """A task completed at ``time``."""
        self.expected_finish[task] = np.nan
        if time > self.completed_until:
            self.completed_until = float(time)

    def task_stopped(self, task: int) -> None:
        """A task left the processors without finishing (fail/crash)."""
        self.expected_finish[task] = np.nan

    # -- straggler detection -------------------------------------------
    def is_straggler(self, factor: float) -> bool:
        """Would an inflation ``factor`` exceed the detection threshold?"""
        return float(factor) > self.policy.straggler_threshold

    def straggler_detected(
        self, task: int, expected_finish: float
    ) -> None:
        """Re-estimate a running task's finish after observing overrun."""
        self.expected_finish[task] = float(expected_finish)

    # -- projection and deadline ---------------------------------------
    def projected_makespan(self, plan_completion: float) -> float:
        """Best current estimate of the final makespan.

        The maximum of work already completed, the expected finishes of
        everything running, and the frontier plan's completion time.
        """
        running = self.expected_finish[
            ~np.isnan(self.expected_finish)
        ]
        running_max = float(running.max()) if running.size else 0.0
        return max(
            self.completed_until, running_max, float(plan_completion)
        )

    def deadline_breach(self, projected: float) -> bool:
        """True exactly once: the first projection past the deadline."""
        if self.deadline is None or self.deadline_flagged:
            return False
        if projected > self.deadline + 1e-9:
            self.deadline_flagged = True
            return True
        return False
