"""Online reactive scheduling runtime.

Static scheduling (the rest of this library) assumes the time table is
the truth: once EMTS or a CPA-family heuristic has produced a schedule,
:func:`repro.simulator.simulate` replays it passively and nothing ever
deviates.  Real clusters deviate constantly — processors crash, tasks
fail and need retries, stragglers run slower than any model predicted.

This package closes the loop.  :func:`execute_online` executes a planned
schedule under a declarative, seeded :class:`FaultPlan`; an
:class:`ExecutionMonitor` compares observed against predicted finish
times and raises reschedule events; a :class:`Rescheduler` re-optimises
only the not-yet-started frontier of the task graph under a bounded
reaction budget, degrading gracefully from a warm-started evolutionary
search down to a greedy list-scheduler patch.  The as-executed schedule
is re-verified by :meth:`repro.verify.ScheduleVerifier.verify_execution`
and, with an empty fault plan, reproduces the static simulator's
makespan bit for bit.
"""

from .events import (
    DeadlineBreached,
    OnlineEvent,
    ProcessorCrashed,
    RescheduleApplied,
    RescheduleTriggered,
    StragglerDetected,
    TaskAbandoned,
    TaskFailed,
)
from .faults import FaultPlan, ProcessorCrash, Straggler, TaskFailure
from .monitor import ExecutionMonitor
from .policies import REACTION_RUNGS, ReactionPolicy
from .rescheduler import Rescheduler, RescheduleResult
from .runtime import ONLINE_OUTCOMES, OnlineResult, execute_online

__all__ = [
    "OnlineEvent",
    "TaskFailed",
    "TaskAbandoned",
    "ProcessorCrashed",
    "StragglerDetected",
    "DeadlineBreached",
    "RescheduleTriggered",
    "RescheduleApplied",
    "ProcessorCrash",
    "TaskFailure",
    "Straggler",
    "FaultPlan",
    "ExecutionMonitor",
    "ReactionPolicy",
    "REACTION_RUNGS",
    "Rescheduler",
    "RescheduleResult",
    "ONLINE_OUTCOMES",
    "OnlineResult",
    "execute_online",
]
