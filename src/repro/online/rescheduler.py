"""Frontier rescheduling under a bounded reaction budget.

When the monitor fires, only the **frontier** — tasks that have not yet
started (including those waiting out a retry backoff) — can still be
moved; everything running or done is sunk cost.  The rescheduler
re-plans exactly that frontier against the *current* cluster state:

* per-task **release times** (``max`` of the reschedule instant, retry
  eligibility, and the expected finishes of running predecessors);
* per-processor **availability** over the *alive* processors only
  (the monitor's expected finish of whatever occupies each one — for an
  undetected straggler that is the model's prediction, not the oracle's
  truth: the rescheduler knows only what the monitor knows).

Because the cluster is homogeneous, processor identity is irrelevant to
allocation decisions: the frontier sub-problem over ``P_alive``
processors is itself a well-formed instance of the paper's moldable
scheduling problem, so the offline machinery (CPA-family allocators,
EMTS's seeded evolution) applies unchanged — it just runs against a
availability-aware variant of the bottom-level list scheduler.

The three ladder rungs (see :mod:`repro.online.policies`) share that
one frontier mapper, so every rung's plan is directly comparable and
the budget is counted in identical units.  The incumbent plan is always
evaluated alongside whatever a rung proposes and wins ties, which makes
rescheduling monotone: an applied plan is never worse than the plan it
replaces *under the information available at that moment*.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..core.mutation import AllocationMutation
from ..core.seeding import make_allocator, seed_population
from ..ea import EvolutionStrategy
from ..exceptions import ConfigurationError
from ..graph import PTG
from ..mapping.processor_state import ProcessorState
from ..platform import Cluster
from ..timemodels import TimeTable
from .._rng import ensure_generator
from .policies import ReactionPolicy

__all__ = ["Rescheduler", "RescheduleResult"]


@dataclass(frozen=True)
class RescheduleResult:
    """One installed frontier plan.

    ``frontier`` holds original task indices; ``start``/``finish``/
    ``proc_sets`` align with it, processor ids are physical (alive-set
    members).  ``completion`` is the plan's last finish; ``evaluations``
    is what the rung actually consumed from the reaction budget.
    """

    rung: str
    evaluations: int
    completion: float
    frontier: np.ndarray
    start: np.ndarray
    finish: np.ndarray
    proc_sets: list[np.ndarray]
    allocation: np.ndarray


class _FrontierProblem:
    """The frontier sub-instance, reindexed to ``0..n-1`` local tasks."""

    def __init__(
        self,
        ptg: PTG,
        table: TimeTable,
        topo: np.ndarray,
        frontier: np.ndarray,
        release: np.ndarray,
        alive: np.ndarray,
        avail: np.ndarray,
    ) -> None:
        self.frontier = frontier
        self.release = release
        self.alive = alive
        self.avail = avail
        self.n = int(frontier.size)
        self.P_alive = int(alive.size)
        pos = {int(v): i for i, v in enumerate(frontier)}
        self.pos = pos
        # execution-time rows truncated to the alive count: homogeneity
        # means T(v, s) depends only on s, so columns 0..P_alive-1 of
        # the full table are exactly the feasible sub-instance times
        self.times = table.array[frontier][:, : self.P_alive]
        self.preds = [
            [pos[u] for u in ptg.predecessors(int(v)) if u in pos]
            for v in frontier
        ]
        self.succs = [
            [pos[w] for w in ptg.successors(int(v)) if w in pos]
            for v in frontier
        ]
        self.topo = [pos[int(v)] for v in topo if int(v) in pos]
        self._ptg = ptg
        self._table = table
        self._sub = None

    # -- the availability-aware frontier mapper ------------------------
    def evaluate(
        self, sub_alloc: np.ndarray, build: bool = False
    ) -> tuple[float, np.ndarray, np.ndarray, list | None]:
        """List-schedule the frontier under release/availability bounds.

        Identical to the paper's bottom-level mapper except that tasks
        are data-ready no earlier than their release time and processors
        no earlier than their availability.  Returns ``(completion,
        start, finish, local_proc_sets)``; processor indices are local
        (``alive``-relative) and only materialised when ``build``.
        """
        n, P = self.n, self.P_alive
        a = np.clip(np.asarray(sub_alloc, dtype=np.int64), 1, P)
        t = self.times[np.arange(n), a - 1]
        bl = np.zeros(n, dtype=np.float64)
        for i in reversed(self.topo):
            succ = self.succs[i]
            bl[i] = t[i] + (max(bl[j] for j in succ) if succ else 0.0)
        n_waiting = np.array(
            [len(p) for p in self.preds], dtype=np.int64
        )
        data_ready = self.release.astype(np.float64).copy()
        start = np.zeros(n, dtype=np.float64)
        finish = np.zeros(n, dtype=np.float64)
        proc_sets: list | None = [None] * n if build else None
        state = ProcessorState(P)
        state.free[:] = self.avail
        heap = [(-bl[i], i) for i in range(n) if n_waiting[i] == 0]
        heapq.heapify(heap)
        completion = 0.0
        while heap:
            _, i = heapq.heappop(heap)
            s = int(a[i])
            t_start = state.earliest_start(s, float(data_ready[i]))
            t_finish = t_start + float(t[i])
            chosen = state.assign(s, t_start, t_finish)
            if build:
                proc_sets[i] = chosen
            start[i] = t_start
            finish[i] = t_finish
            if t_finish > completion:
                completion = t_finish
            for j in self.succs[i]:
                if t_finish > data_ready[j]:
                    data_ready[j] = t_finish
                n_waiting[j] -= 1
                if n_waiting[j] == 0:
                    heapq.heappush(heap, (-bl[j], j))
        return completion, start, finish, proc_sets

    def completion_of(self, sub_alloc: np.ndarray) -> float:
        """Fitness view of :meth:`evaluate` for the evolution rung."""
        return self.evaluate(sub_alloc, build=False)[0]

    # -- sub-instance objects for the offline allocators ---------------
    def sub_instance(self) -> tuple[PTG, TimeTable]:
        """Frontier reindexed as a standalone (PTG, TimeTable) pair.

        Built lazily: the greedy rung never needs it.  The allocators
        see a pristine sub-cluster (no release/availability) — their
        output is only a *starting* allocation, always re-evaluated by
        the availability-aware mapper above.
        """
        if self._sub is None:
            edges = [
                (i, j)
                for i in range(self.n)
                for j in self.succs[i]
            ]
            sub_ptg = PTG(
                [self._ptg.task(int(v)) for v in self.frontier],
                edges,
                name=f"{self._ptg.name}/frontier",
            )
            sub_cluster = Cluster(
                name=f"{self._table.cluster.name}/alive",
                num_processors=self.P_alive,
                speed_gflops=self._table.cluster.speed_gflops,
            )
            sub_table = TimeTable(
                sub_ptg,
                sub_cluster,
                self.times.copy(),
                model_name=f"{self._table.model_name}/frontier",
            )
            self._sub = (sub_ptg, sub_table)
        return self._sub


class Rescheduler:
    """Re-plans schedule frontiers down the graceful-degradation ladder."""

    def __init__(
        self,
        ptg: PTG,
        table: TimeTable,
        policy: ReactionPolicy | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.ptg = ptg
        self.table = table
        self.policy = policy or ReactionPolicy()
        self.rng = ensure_generator(rng, "online", "rescheduler")
        self._topo = np.asarray(ptg.topological_order)

    def reschedule(
        self,
        now: float,
        frontier: np.ndarray,
        release: np.ndarray,
        allocation: np.ndarray,
        alive: np.ndarray,
        avail: np.ndarray,
        remaining_budget: int,
    ) -> RescheduleResult:
        """Produce a new frontier plan within ``remaining_budget``.

        Parameters mirror the runtime's state snapshot: ``frontier`` are
        original task ids (not yet started), ``release``/``allocation``
        align with it, ``alive`` are surviving processor ids with
        ``avail`` their expected availability times.  The rung is chosen
        deterministically from the remaining budget (evaluation units —
        never wall-clock, which would break cross-machine determinism).
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            raise ConfigurationError(
                "cannot reschedule an empty frontier"
            )
        alive = np.asarray(alive, dtype=np.int64)
        if alive.size == 0:
            raise ConfigurationError(
                "cannot reschedule with no alive processors"
            )
        problem = _FrontierProblem(
            self.ptg,
            self.table,
            self._topo,
            frontier,
            np.asarray(release, dtype=np.float64),
            alive,
            np.asarray(avail, dtype=np.float64),
        )
        incumbent = np.clip(
            np.asarray(allocation, dtype=np.int64), 1, problem.P_alive
        )
        rung = self.policy.rung_for(remaining_budget)
        if rung == "emts":
            best, evals = self._run_emts(problem, incumbent)
        elif rung == "repair":
            best, evals = self._run_repair(problem, incumbent)
        else:
            best, evals = incumbent, 1
        completion, start, finish, local_sets = problem.evaluate(
            best, build=True
        )
        proc_sets = [alive[chosen] for chosen in local_sets]
        return RescheduleResult(
            rung=rung,
            evaluations=evals,
            completion=float(completion),
            frontier=frontier,
            start=start,
            finish=finish,
            proc_sets=proc_sets,
            allocation=np.clip(best, 1, problem.P_alive),
        )

    # -- ladder rungs ---------------------------------------------------
    def _run_repair(
        self, problem: _FrontierProblem, incumbent: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Heuristic repair: best of {repair allocator, incumbent}."""
        sub_ptg, sub_table = problem.sub_instance()
        allocator = make_allocator(self.policy.repair_heuristic)
        proposal = np.clip(
            allocator.allocate(sub_ptg, sub_table), 1, problem.P_alive
        )
        proposal_completion = problem.completion_of(proposal)
        incumbent_completion = problem.completion_of(incumbent)
        if proposal_completion < incumbent_completion - 1e-12:
            return proposal, 2
        return incumbent, 2

    def _run_emts(
        self, problem: _FrontierProblem, incumbent: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Warm-started (mu + lambda) evolution over the frontier.

        The incumbent plan seeds the population first, so under plus
        selection the evolved winner can never be worse than the plan
        being replaced.
        """
        policy = self.policy
        sub_ptg, sub_table = problem.sub_instance()
        mutation = AllocationMutation(problem.P_alive)
        individuals, _ = seed_population(
            sub_ptg,
            sub_table,
            policy.heuristics,
            policy.emts_mu,
            mutation,
            self.rng,
            incumbent=incumbent,
        )
        strategy = EvolutionStrategy(
            mu=policy.emts_mu,
            lam=policy.emts_lam,
            mutation=mutation,
        )
        result = strategy.evolve(
            individuals,
            problem.completion_of,
            self.rng,
            total_generations=policy.emts_generations,
        )
        # +1 for the final build-mode evaluation of the winner
        return result.best.genome, result.evaluations + 1
