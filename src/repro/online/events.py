"""Observable events emitted by the online runtime.

These are *runtime* events — faults firing, reschedules triggering and
resolving — distinct from the simulator's
:class:`~repro.simulator.TaskStarted`/:class:`~repro.simulator.TaskFinished`
execution events.  The runtime collects them in order on
:attr:`repro.online.OnlineResult.events` and mirrors each onto the
observability tracer (``fault`` and ``reschedule`` trace kinds), so a
post-mortem can replay exactly what the monitor saw and when.

All fields are simulated quantities; every event carries the simulated
``time`` at which it occurred.  Two runs with the same schedule, fault
plan and policy produce identical event lists.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "OnlineEvent",
    "TaskFailed",
    "TaskAbandoned",
    "ProcessorCrashed",
    "StragglerDetected",
    "DeadlineBreached",
    "RescheduleTriggered",
    "RescheduleApplied",
]


@dataclass(frozen=True)
class OnlineEvent:
    """Base class: something the monitor observed at simulated ``time``."""

    time: float

    @property
    def kind(self) -> str:
        """Stable event-type label used in traces and summaries."""
        return _KIND_BY_TYPE[type(self).__name__]

    def to_attrs(self) -> dict:
        """Flat primitive dict for trace/metrics emission."""
        attrs = {"event": self.kind}
        for key, value in asdict(self).items():
            if key == "time":
                attrs["sim_time"] = float(value)
            elif isinstance(value, tuple):
                attrs[key] = list(value)
            else:
                attrs[key] = value
        return attrs


@dataclass(frozen=True)
class TaskFailed(OnlineEvent):
    """An executing task attempt failed (transient fault or crash victim).

    ``retry_at`` is the simulated time at which the retry becomes
    eligible (failure time plus exponential backoff); ``None`` means the
    retry budget is exhausted and a :class:`TaskAbandoned` follows.
    """

    task: int
    task_name: str
    processors: tuple[int, ...]
    attempt: int
    retry_at: float | None


@dataclass(frozen=True)
class TaskAbandoned(OnlineEvent):
    """A task exhausted its retry budget; the run aborts."""

    task: int
    task_name: str
    attempts: int


@dataclass(frozen=True)
class ProcessorCrashed(OnlineEvent):
    """A processor failed permanently; ``victims`` were running on it."""

    processor: int
    victims: tuple[int, ...]


@dataclass(frozen=True)
class StragglerDetected(OnlineEvent):
    """A running task overshot its predicted finish time.

    Detection happens at the *predicted* finish (the earliest moment the
    monitor can observe "still running past the model's promise"), at
    which point the runtime re-estimates the true completion as
    ``expected_finish``.
    """

    task: int
    task_name: str
    factor: float
    expected_finish: float


@dataclass(frozen=True)
class DeadlineBreached(OnlineEvent):
    """The projected makespan first exceeded the deadline."""

    projected: float
    deadline: float


@dataclass(frozen=True)
class RescheduleTriggered(OnlineEvent):
    """The monitor decided the remaining frontier must be re-planned."""

    reason: str
    frontier: int


@dataclass(frozen=True)
class RescheduleApplied(OnlineEvent):
    """A frontier re-plan was computed and installed.

    ``rung`` names the degradation-ladder level that produced the plan
    (``"emts"``, ``"repair"`` or ``"greedy"``); ``evaluations`` is the
    number of schedule evaluations it consumed from the reaction budget.
    """

    reason: str
    rung: str
    frontier: int
    evaluations: int
    budget_remaining: int
    projected_makespan: float


_KIND_BY_TYPE = {
    "TaskFailed": "task-failed",
    "TaskAbandoned": "task-abandoned",
    "ProcessorCrashed": "processor-crashed",
    "StragglerDetected": "straggler-detected",
    "DeadlineBreached": "deadline-breached",
    "RescheduleTriggered": "reschedule-triggered",
    "RescheduleApplied": "reschedule-applied",
}
