"""Reaction policies: how hard the runtime may think before acting.

When a fault fires, the frontier must be re-planned *now* — a scheduler
that deliberates for longer than the tasks it reschedules is useless.
The paper's offline luxury (minutes of evolution) collapses online into
a bounded **reaction budget**, and the :class:`Rescheduler` spends it
down a graceful-degradation ladder:

====================  ==================================================
rung                  strategy
====================  ==================================================
``emts``              warm-started (mu + lambda) evolution over the
                      frontier, incumbent-seeded so the result can never
                      be worse than the current plan
``repair``            CPA-family heuristic re-allocation of the
                      frontier, best of {heuristic, current plan}
``greedy``            list-scheduler patch of the current allocation —
                      the floor, always affordable
====================  ==================================================

The budget is measured in **schedule evaluations**, not wall-clock
seconds.  An evaluation (one frontier mapping) is the rescheduler's unit
of work, and counting units keeps rung selection — and therefore the
entire event history — bit-identical across machines of different
speeds.  Wall-clock reaction times are still *measured* and exported to
metrics and benchmarks (``check_perf.py --online`` gates them); they
just never influence control flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.seeding import SEED_REGISTRY
from ..exceptions import ConfigurationError

__all__ = ["ReactionPolicy", "REACTION_RUNGS"]

#: The degradation ladder, strongest rung first.
REACTION_RUNGS = ("emts", "repair", "greedy")


@dataclass(frozen=True)
class ReactionPolicy:
    """Tunable limits on one run's rescheduling effort.

    Attributes
    ----------
    budget_evaluations:
        Total frontier evaluations the run may spend across *all*
        reschedules.  Each reschedule picks the strongest rung still
        affordable from the remainder; the greedy floor runs even at
        zero, so a plan is always produced.
    emts_mu / emts_lam / emts_generations:
        Shape of the warm-started evolution rung (deliberately tiny
        next to the offline EMTS5/EMTS10 configurations).
    heuristics:
        Seed allocators for the evolution rung's initial population,
        alongside the incumbent.
    repair_heuristic:
        The single allocator used by the ``repair`` rung.
    straggler_threshold:
        Relative overshoot of a task's predicted finish before the
        monitor flags it as a straggler (1.05 = 5 % late).
    """

    budget_evaluations: int = 2048
    emts_mu: int = 4
    emts_lam: int = 12
    emts_generations: int = 4
    heuristics: tuple[str, ...] = ("mcpa", "hcpa")
    repair_heuristic: str = "hcpa"
    straggler_threshold: float = 1.05

    def __post_init__(self) -> None:
        if self.budget_evaluations < 0:
            raise ConfigurationError(
                f"reaction budget must be >= 0 evaluations, got "
                f"{self.budget_evaluations}"
            )
        if self.emts_mu < 1 or self.emts_lam < 1:
            raise ConfigurationError(
                f"emts rung needs mu >= 1 and lambda >= 1, got "
                f"({self.emts_mu}, {self.emts_lam})"
            )
        if self.emts_generations < 1:
            raise ConfigurationError(
                f"emts rung needs >= 1 generation, got "
                f"{self.emts_generations}"
            )
        for name in (*self.heuristics, self.repair_heuristic):
            if name not in SEED_REGISTRY:
                known = ", ".join(sorted(SEED_REGISTRY))
                raise ConfigurationError(
                    f"unknown reaction heuristic {name!r}; known: "
                    f"{known}"
                )
        if self.straggler_threshold <= 1.0:
            raise ConfigurationError(
                f"straggler threshold must exceed 1.0, got "
                f"{self.straggler_threshold}"
            )

    # -- rung arithmetic ------------------------------------------------
    def emts_cost(self) -> int:
        """Worst-case evaluations of one evolution-rung reschedule."""
        seeds = len(self.heuristics) + 1  # heuristics + incumbent
        return (
            max(seeds, self.emts_mu)
            + self.emts_lam * self.emts_generations
            + 1  # final plan rebuild
        )

    def repair_cost(self) -> int:
        """Evaluations of one repair-rung reschedule (heuristic + incumbent)."""
        return 2

    def rung_for(self, remaining: int) -> str:
        """Strongest ladder rung affordable with ``remaining`` budget."""
        if remaining >= self.emts_cost():
            return "emts"
        if remaining >= self.repair_cost():
            return "repair"
        return "greedy"
