"""Declarative fault plans for the online runtime.

A :class:`FaultPlan` is data, not behaviour: it lists which processors
crash when, which tasks fail transiently, and which tasks straggle.  The
runtime interprets it.  Keeping the plan declarative makes chaos runs
reproducible (two runs with the same plan see byte-identical fault
sequences) and serialisable into experiment manifests.

Plans can be written literally or drawn from a seed with
:meth:`FaultPlan.sampled`, which reuses the same per-index sampling
primitive as :meth:`repro.testing.ChaosPlan.sampled` — one chaos
vocabulary across the evaluation pool and the execution runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..testing.chaos import sample_indices

__all__ = ["ProcessorCrash", "TaskFailure", "Straggler", "FaultPlan"]


@dataclass(frozen=True)
class ProcessorCrash:
    """Processor ``processor`` fails permanently at simulated ``time``.

    Any task running on it at that moment fails (consuming one retry
    attempt) and the processor never returns to the alive set.
    """

    processor: int
    time: float


@dataclass(frozen=True)
class TaskFailure:
    """Task ``task`` fails transiently on its first ``attempts`` tries.

    Each doomed attempt aborts at ``at_fraction`` of its (possibly
    straggler-inflated) running time; the retry becomes eligible after
    an exponential backoff governed by the plan.  Once ``attempts``
    failures have fired, subsequent attempts succeed.
    """

    task: int
    attempts: int = 1
    at_fraction: float = 0.5


@dataclass(frozen=True)
class Straggler:
    """Task ``task`` runs ``factor`` times slower than the model predicts.

    The monitor only learns this at the task's *predicted* finish time,
    when the task is observably still running.
    """

    task: int
    factor: float = 2.0


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one online run.

    Attributes
    ----------
    crashes / failures / stragglers:
        The fault descriptors, at most one per processor respectively
        task (a task may both straggle *and* fail).
    max_retries:
        Retries allowed per task beyond the first attempt; a task whose
        failures exceed this is abandoned and the run aborts.
    backoff_seconds:
        Simulated delay before the first retry of a task.
    backoff_factor:
        Multiplier applied to the backoff on each further retry
        (``backoff_seconds * backoff_factor ** (attempt - 1)``).
    """

    crashes: tuple[ProcessorCrash, ...] = ()
    failures: tuple[TaskFailure, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    max_retries: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.crashes or self.failures or self.stragglers)

    def validate(self, num_tasks: int, num_processors: int) -> None:
        """Raise :class:`ConfigurationError` on an ill-formed plan."""
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_seconds < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 0 seconds with factor >= 1, got "
                f"{self.backoff_seconds}s x{self.backoff_factor}"
            )
        seen_procs: set[int] = set()
        for crash in self.crashes:
            if not (0 <= crash.processor < num_processors):
                raise ConfigurationError(
                    f"crash names processor {crash.processor}, outside "
                    f"[0, {num_processors})"
                )
            if crash.processor in seen_procs:
                raise ConfigurationError(
                    f"processor {crash.processor} crashes twice"
                )
            seen_procs.add(crash.processor)
            if crash.time < 0 or not np.isfinite(crash.time):
                raise ConfigurationError(
                    f"crash time {crash.time!r} must be finite and >= 0"
                )
        if len(seen_procs) >= num_processors:
            raise ConfigurationError(
                "the plan crashes every processor; nothing could run"
            )
        seen_failures: set[int] = set()
        for failure in self.failures:
            if not (0 <= failure.task < num_tasks):
                raise ConfigurationError(
                    f"failure names task {failure.task}, outside "
                    f"[0, {num_tasks})"
                )
            if failure.task in seen_failures:
                raise ConfigurationError(
                    f"task {failure.task} has two failure descriptors"
                )
            seen_failures.add(failure.task)
            if failure.attempts < 1:
                raise ConfigurationError(
                    f"failure attempts must be >= 1, got "
                    f"{failure.attempts}"
                )
            if not (0.0 < failure.at_fraction <= 1.0):
                raise ConfigurationError(
                    f"at_fraction must lie in (0, 1], got "
                    f"{failure.at_fraction}"
                )
        seen_stragglers: set[int] = set()
        for straggler in self.stragglers:
            if not (0 <= straggler.task < num_tasks):
                raise ConfigurationError(
                    f"straggler names task {straggler.task}, outside "
                    f"[0, {num_tasks})"
                )
            if straggler.task in seen_stragglers:
                raise ConfigurationError(
                    f"task {straggler.task} has two straggler "
                    "descriptors"
                )
            seen_stragglers.add(straggler.task)
            if straggler.factor < 1.0 or not np.isfinite(
                straggler.factor
            ):
                raise ConfigurationError(
                    f"straggler factor must be finite and >= 1, got "
                    f"{straggler.factor}"
                )

    @classmethod
    def sampled(
        cls,
        rng: np.random.Generator | int,
        num_tasks: int,
        num_processors: int,
        *,
        horizon: float,
        crash_rate: float = 0.0,
        failure_rate: float = 0.0,
        straggler_rate: float = 0.0,
        straggler_factor: float = 2.0,
        fail_fraction: float = 0.5,
        max_retries: int = 3,
        backoff_factor: float = 2.0,
    ) -> "FaultPlan":
        """Draw a seed-reproducible plan.

        Each processor crashes with ``crash_rate`` (never all of them —
        the last survivor is spared), at a time uniform in
        ``(0, horizon)``; each task fails once with ``failure_rate`` and
        straggles by ``straggler_factor`` with ``straggler_rate``.
        ``horizon`` is normally the planned makespan; the backoff base
        is scaled to 2 % of it so retry delays stay proportionate to
        the workload.  Zero-rate fault types consume no randomness.
        """
        gen = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        if horizon <= 0 or not np.isfinite(horizon):
            raise ConfigurationError(
                f"horizon must be finite and > 0, got {horizon!r}"
            )
        crash_procs = sorted(
            sample_indices(gen, num_processors, crash_rate)
        )
        if len(crash_procs) >= num_processors:
            crash_procs = crash_procs[: num_processors - 1]
        crashes = tuple(
            ProcessorCrash(
                processor=p,
                time=float(gen.uniform(0.0, horizon)),
            )
            for p in crash_procs
        )
        failures = tuple(
            TaskFailure(task=v, attempts=1, at_fraction=fail_fraction)
            for v in sorted(sample_indices(gen, num_tasks, failure_rate))
        )
        stragglers = tuple(
            Straggler(task=v, factor=straggler_factor)
            for v in sorted(
                sample_indices(gen, num_tasks, straggler_rate)
            )
        )
        return cls(
            crashes=crashes,
            failures=failures,
            stragglers=stragglers,
            max_retries=max_retries,
            backoff_seconds=0.02 * float(horizon),
            backoff_factor=backoff_factor,
        )

    def summary(self) -> dict:
        """Counters for traces and result reporting."""
        return {
            "crashes": len(self.crashes),
            "failures": len(self.failures),
            "stragglers": len(self.stragglers),
        }
