"""The closed-loop online execution runtime.

:func:`execute_online` takes a planned :class:`~repro.mapping.Schedule`
and *executes* it under a :class:`FaultPlan`, reacting to every
deviation instead of replaying passively:

* tasks dispatch when the plan says so — but only once their
  predecessors have actually finished and their processors are actually
  free, so a deferred dispatch absorbs upstream slippage;
* injected faults (transient failures with exponential-backoff retries,
  permanent processor crashes, silent stragglers) perturb execution;
* the :class:`ExecutionMonitor` detects each deviation and the
  :class:`Rescheduler` re-plans the not-yet-started frontier within the
  policy's reaction budget.

**Determinism contract.**  Simulated time is the only clock that drives
control flow: fault times come from the plan, rung selection counts
evaluation units, and random draws flow from the seeded rescheduler
stream.  Two runs with identical inputs produce identical event lists,
identical as-executed schedules and — after
:func:`repro.obs.strip_timestamps` removes wall-clock attributes —
bit-identical traces on any machine.  With an *empty* fault plan the
runtime reduces exactly to :func:`repro.simulator.simulate`: every
dispatch fires at its planned start, every duration matches the plan,
and the final makespan is bit-identical to the static simulator's.

**Event ordering.**  A single heap drives execution, keyed by
``(time, priority, sequence)`` with priorities *crash < failure <
finish < straggler-detect < retry-release < dispatch*.  Finishes
preceding dispatches at equal times mirrors the static simulator's
finish-before-start rule; crashes preceding everything makes a
processor that dies at *t* unavailable to any task starting at *t*.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from ..mapping import Schedule
from ..simulator import SimulationTrace, TaskFinished, TaskStarted
from ..timemodels import TimeTable
from ..util.backoff import exponential_delay
from ..verify import ScheduleVerifier
from .events import (
    DeadlineBreached,
    OnlineEvent,
    ProcessorCrashed,
    RescheduleApplied,
    RescheduleTriggered,
    StragglerDetected,
    TaskAbandoned,
    TaskFailed,
)
from .faults import FaultPlan
from .monitor import ExecutionMonitor
from .policies import ReactionPolicy
from .rescheduler import Rescheduler

__all__ = [
    "execute_online",
    "OnlineResult",
    "ONLINE_OUTCOMES",
    "REACTION_BUCKETS",
]

#: Terminal states of one online run.
ONLINE_OUTCOMES = ("completed", "deadline-missed", "aborted")

#: Buckets (seconds) of the ``online.reaction.seconds`` histogram.
#: Finer than the decade-stepped defaults around the 500 ms reaction
#: budget the SLO engine and ``check_perf.py --online`` both gate on —
#: interpolating "99 % within 0.5 s" across a 0.1–1.0 decade bucket
#: would be guesswork.
REACTION_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

# task lifecycle
_PENDING, _RUNNING, _DONE, _WAITING = 0, 1, 2, 3

# heap priorities: what happens first at equal simulated time
_PRIO_CRASH = 0
_PRIO_FAIL = 1
_PRIO_FINISH = 2
_PRIO_DETECT = 3
_PRIO_RELEASE = 4
_PRIO_DISPATCH = 5

_EPS = 1e-9


@dataclass
class OnlineResult:
    """Everything one online run produced.

    ``outcome`` is one of :data:`ONLINE_OUTCOMES`; ``schedule`` and
    ``trace`` describe the as-executed placements (``None`` when the
    run aborted before completing every task).
    """

    outcome: str
    makespan: float
    planned_makespan: float
    schedule: Schedule | None
    trace: SimulationTrace | None
    events: list[OnlineEvent] = field(default_factory=list)
    reschedules: int = 0
    faults_injected: int = 0
    retries: int = 0
    rungs: dict = field(default_factory=dict)
    budget_used: int = 0
    deadline: float | None = None
    verified: bool = False
    reason: str | None = None

    def summary(self) -> dict:
        """Flat primitive dict for CLI/JSON reporting."""
        return {
            "outcome": self.outcome,
            "makespan": self.makespan,
            "planned_makespan": self.planned_makespan,
            "events": len(self.events),
            "reschedules": self.reschedules,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "rungs": dict(self.rungs),
            "budget_used": self.budget_used,
            "deadline": self.deadline,
            "verified": self.verified,
            "reason": self.reason,
        }


class _OnlineRun:
    """Mutable state of one execution; see :func:`execute_online`."""

    def __init__(
        self,
        schedule: Schedule,
        table: TimeTable,
        plan: FaultPlan,
        policy: ReactionPolicy,
        deadline: float | None,
        rng,
        tracer,
        metrics,
    ) -> None:
        ptg = schedule.ptg
        V = ptg.num_tasks
        P = schedule.cluster.num_processors
        plan.validate(V, P)
        self.schedule = schedule
        self.table = table
        self.ptg = ptg
        self.V, self.P = V, P
        self.plan = plan
        self.policy = policy
        self.tracer = tracer
        self.metrics = metrics
        self.monitor = ExecutionMonitor(V, policy, deadline)
        self.rescheduler = Rescheduler(ptg, table, policy, rng)

        # the *current* plan, rewritten by every reschedule
        self.plan_start = schedule.start.astype(np.float64).copy()
        self.plan_finish = schedule.finish.astype(np.float64).copy()
        self.plan_procs = [ps.copy() for ps in schedule.proc_sets]
        self.plan_version = 0

        # fault bookkeeping
        self.fail_left = np.zeros(V, dtype=np.int64)
        self.fail_fraction = np.full(V, 0.5, dtype=np.float64)
        for failure in plan.failures:
            self.fail_left[failure.task] = failure.attempts
            self.fail_fraction[failure.task] = failure.at_fraction
        self.inflation = np.ones(V, dtype=np.float64)
        for straggler in plan.stragglers:
            self.inflation[straggler.task] = straggler.factor

        # execution state
        self.status = np.full(V, _PENDING, dtype=np.int64)
        self.attempts = np.zeros(V, dtype=np.int64)
        self.retry_at = np.zeros(V, dtype=np.float64)
        self.actual_start = np.zeros(V, dtype=np.float64)
        self.actual_finish = np.zeros(V, dtype=np.float64)
        self.actual_procs: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(V)
        ]
        self.alive = np.ones(P, dtype=bool)
        self.proc_free = np.zeros(P, dtype=np.float64)
        self.running_on = np.full(P, -1, dtype=np.int64)
        self.done_count = 0

        # result accumulators
        self.events: list[OnlineEvent] = []
        self.reschedules = 0
        self.faults_injected = 0
        self.retries = 0
        self.rungs: dict[str, int] = {}
        self.budget_used = 0
        self.outcome: str | None = None
        self.reason: str | None = None

        self.heap: list = []
        self._seq = 0

    # -- heap helpers ---------------------------------------------------
    def push(self, time: float, prio: int, kind: str, a: int, b: int = 0):
        heapq.heappush(
            self.heap, (float(time), prio, self._seq, kind, a, b)
        )
        self._seq += 1

    def wake_pending(self, now: float) -> None:
        """Re-arm a dispatch for every pending task.

        Dispatch events are cheap and idempotent (the handler re-checks
        feasibility), so over-waking is safe; under-waking would
        deadlock a deferred task.
        """
        for v in np.flatnonzero(self.status == _PENDING):
            v = int(v)
            self.push(
                max(now, self.plan_start[v]),
                _PRIO_DISPATCH,
                "dispatch",
                v,
                self.plan_version,
            )

    # -- event emission -------------------------------------------------
    def emit(self, event: OnlineEvent, trace_kind: str | None) -> None:
        self.events.append(event)
        if self.tracer is not None and trace_kind is not None:
            self.tracer.event(trace_kind, attrs=event.to_attrs())

    def count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- run ------------------------------------------------------------
    def run(self) -> OnlineResult:
        for crash in self.plan.crashes:
            self.push(
                crash.time, _PRIO_CRASH, "crash", crash.processor
            )
        self.wake_pending(0.0)
        # a deadline tighter than the plan itself breaches immediately
        # and gets its emergency re-plan before anything dispatches
        self._check_deadline(0.0)

        while self.heap and self.outcome is None:
            t, _prio, _seq, kind, a, b = heapq.heappop(self.heap)
            if kind == "crash":
                self._on_crash(t, a)
            elif kind == "fail":
                self._on_fail(t, a, b)
            elif kind == "finish":
                self._on_finish(t, a, b)
            elif kind == "detect":
                self._on_detect(t, a, b)
            elif kind == "release":
                self._on_release(t, a)
            else:
                self._on_dispatch(t, a, b)

        if self.outcome is None:
            if self.done_count != self.V:
                stuck = int(np.flatnonzero(self.status != _DONE)[0])
                raise SimulationError(
                    f"online run drained its event heap with task "
                    f"{self.ptg.task(stuck).name!r} not done",
                    task=stuck,
                )
            makespan = float(self.actual_finish.max()) if self.V else 0.0
            if (
                self.monitor.deadline is not None
                and makespan > self.monitor.deadline + _EPS
            ):
                self.outcome = "deadline-missed"
                self.reason = (
                    f"finished at {makespan:.6g}, deadline was "
                    f"{self.monitor.deadline:.6g}"
                )
            else:
                self.outcome = "completed"
        else:
            makespan = (
                float(self.actual_finish[self.status == _DONE].max())
                if self.done_count
                else 0.0
            )
        return self._finalize(makespan)

    # -- handlers -------------------------------------------------------
    def _on_dispatch(self, t: float, v: int, version: int) -> None:
        if self.status[v] != _PENDING or version != self.plan_version:
            return
        if t < self.plan_start[v] - _EPS:
            return  # superseded by a later re-arm
        procs = self.plan_procs[v]
        if not self.alive[procs].all():
            raise SimulationError(
                f"plan places task {self.ptg.task(v).name!r} on a "
                "crashed processor — reschedule-on-crash failed",
                task=v,
                processors=tuple(int(p) for p in procs),
                time=t,
            )
        ready = all(
            self.status[u] == _DONE for u in self.ptg.predecessors(v)
        )
        free = bool((self.proc_free[procs] <= t + _EPS).all())
        if not (ready and free):
            return  # deferred; a finish/release/reschedule re-arms it
        base = float(self.plan_finish[v] - self.plan_start[v])
        predicted = t + base
        true_dur = base * float(self.inflation[v])
        self.status[v] = _RUNNING
        self.attempts[v] += 1
        attempt = int(self.attempts[v])
        self.actual_start[v] = t
        self.actual_procs[v] = procs.copy()
        self.monitor.task_started(v, predicted)
        if self.fail_left[v] > 0:
            ends = t + true_dur * float(self.fail_fraction[v])
            self.push(ends, _PRIO_FAIL, "fail", v, attempt)
        else:
            ends = t + true_dur
            self.push(ends, _PRIO_FINISH, "finish", v, attempt)
            if self.inflation[v] > 1.0 and self.monitor.is_straggler(
                self.inflation[v]
            ):
                self.push(predicted, _PRIO_DETECT, "detect", v, attempt)
        self.proc_free[procs] = ends
        self.running_on[procs] = v

    def _on_finish(self, t: float, v: int, attempt: int) -> None:
        if self.status[v] != _RUNNING or self.attempts[v] != attempt:
            return
        self.status[v] = _DONE
        self.actual_finish[v] = t
        self.done_count += 1
        procs = self.actual_procs[v]
        self.proc_free[procs] = t
        self.running_on[procs] = -1
        self.monitor.task_finished(v, t)
        self.wake_pending(t)
        self._check_deadline(t)

    def _fail_attempt(self, t: float, v: int) -> bool:
        """Shared failure path (transient fault or crash victim).

        Returns ``True`` when the task may retry, ``False`` when it is
        abandoned (the run aborts).
        """
        procs = self.actual_procs[v]
        for p in procs:
            if self.alive[p]:
                self.proc_free[p] = t
            self.running_on[p] = -1
        self.monitor.task_stopped(v)
        self.faults_injected += 1
        self.count("online.faults.failure")
        name = self.ptg.task(v).name
        attempt = int(self.attempts[v])
        if attempt <= self.plan.max_retries:
            # simulated-time backoff: exponential_delay keeps the exact
            # floating-point expression, so event times stay bit-identical
            backoff = exponential_delay(
                self.plan.backoff_seconds,
                attempt,
                factor=self.plan.backoff_factor,
            )
            retry = t + backoff
            self.status[v] = _WAITING
            self.retry_at[v] = retry
            self.retries += 1
            self.count("online.retries")
            self.emit(
                TaskFailed(
                    time=t,
                    task=v,
                    task_name=name,
                    processors=tuple(int(p) for p in procs),
                    attempt=attempt,
                    retry_at=retry,
                ),
                "fault",
            )
            self.push(retry, _PRIO_RELEASE, "release", v)
            return True
        self.emit(
            TaskFailed(
                time=t,
                task=v,
                task_name=name,
                processors=tuple(int(p) for p in procs),
                attempt=attempt,
                retry_at=None,
            ),
            "fault",
        )
        self.emit(
            TaskAbandoned(
                time=t, task=v, task_name=name, attempts=attempt
            ),
            "fault",
        )
        self.count("online.tasks.abandoned")
        self.outcome = "aborted"
        self.reason = (
            f"task {name!r} failed {attempt} times, retry budget "
            f"({self.plan.max_retries}) exhausted"
        )
        return False

    def _on_fail(self, t: float, v: int, attempt: int) -> None:
        if self.status[v] != _RUNNING or self.attempts[v] != attempt:
            return
        self.fail_left[v] -= 1
        if self._fail_attempt(t, v):
            self._reschedule(t, "task-failure")
            self._check_deadline(t)

    def _on_detect(self, t: float, v: int, attempt: int) -> None:
        if self.status[v] != _RUNNING or self.attempts[v] != attempt:
            return
        base = float(self.plan_finish[v] - self.plan_start[v])
        expected = self.actual_start[v] + base * float(
            self.inflation[v]
        )
        self.monitor.straggler_detected(v, expected)
        self.faults_injected += 1
        self.count("online.faults.straggler")
        self.emit(
            StragglerDetected(
                time=t,
                task=v,
                task_name=self.ptg.task(v).name,
                factor=float(self.inflation[v]),
                expected_finish=expected,
            ),
            "fault",
        )
        self._reschedule(t, "straggler")
        self._check_deadline(t)

    def _on_crash(self, t: float, p: int) -> None:
        if not self.alive[p]:
            return
        self.alive[p] = False
        self.proc_free[p] = np.inf
        victim = int(self.running_on[p])
        self.running_on[p] = -1
        self.faults_injected += 1
        self.count("online.faults.crash")
        victims = (victim,) if victim >= 0 else ()
        self.emit(
            ProcessorCrashed(time=t, processor=p, victims=victims),
            "fault",
        )
        if not self.alive.any():
            self.outcome = "aborted"
            self.reason = "every processor has crashed"
            return
        if victim >= 0:
            # the victim's attempt dies with the processor; this
            # consumes one retry attempt, exactly like a transient
            # failure — the runtime cannot tell the causes apart
            if not self._fail_attempt(t, victim):
                return
        self._reschedule(t, "processor-lost")
        self._check_deadline(t)

    def _on_release(self, t: float, v: int) -> None:
        if self.status[v] != _WAITING:
            return
        self.status[v] = _PENDING
        self.push(
            max(t, self.plan_start[v]),
            _PRIO_DISPATCH,
            "dispatch",
            v,
            self.plan_version,
        )

    # -- rescheduling ---------------------------------------------------
    def _plan_completion(self) -> float:
        """Last planned finish over everything not yet done."""
        not_done = self.status != _DONE
        if not not_done.any():
            return 0.0
        return float(self.plan_finish[not_done].max())

    def _reschedule(self, now: float, reason: str) -> None:
        frontier = np.flatnonzero(
            (self.status == _PENDING) | (self.status == _WAITING)
        ).astype(np.int64)
        if frontier.size == 0:
            return
        self.emit(
            RescheduleTriggered(
                time=now, reason=reason, frontier=int(frontier.size)
            ),
            None,
        )
        release = np.full(frontier.size, now, dtype=np.float64)
        for i, v in enumerate(frontier):
            v = int(v)
            if self.status[v] == _WAITING:
                release[i] = max(release[i], self.retry_at[v])
            for u in self.ptg.predecessors(v):
                if self.status[u] == _DONE:
                    release[i] = max(release[i], self.actual_finish[u])
                elif self.status[u] == _RUNNING:
                    release[i] = max(
                        release[i], self.monitor.expected_finish[u]
                    )
        alive = np.flatnonzero(self.alive).astype(np.int64)
        avail = np.full(alive.size, now, dtype=np.float64)
        for i, p in enumerate(alive):
            occupant = int(self.running_on[p])
            if occupant >= 0:
                # the monitor's belief, not the fault plan's truth: an
                # undetected straggler still looks punctual here
                avail[i] = max(
                    now, self.monitor.expected_finish[occupant]
                )
        allocation = np.array(
            [len(self.plan_procs[int(v)]) for v in frontier],
            dtype=np.int64,
        )
        remaining = max(
            0, self.policy.budget_evaluations - self.budget_used
        )
        t0 = _time.perf_counter()
        result = self.rescheduler.reschedule(
            now, frontier, release, allocation, alive, avail, remaining
        )
        reaction = _time.perf_counter() - t0
        self.budget_used += result.evaluations
        for i, v in enumerate(frontier):
            v = int(v)
            self.plan_start[v] = result.start[i]
            self.plan_finish[v] = result.finish[i]
            self.plan_procs[v] = result.proc_sets[i]
        self.plan_version += 1
        self.reschedules += 1
        self.rungs[result.rung] = self.rungs.get(result.rung, 0) + 1
        projected = self.monitor.projected_makespan(
            self._plan_completion()
        )
        applied = RescheduleApplied(
            time=now,
            reason=reason,
            rung=result.rung,
            frontier=int(frontier.size),
            evaluations=result.evaluations,
            budget_remaining=max(
                0, self.policy.budget_evaluations - self.budget_used
            ),
            projected_makespan=projected,
        )
        self.emit(applied, None)
        if self.tracer is not None:
            attrs = applied.to_attrs()
            # wall-clock, deliberately under a *_seconds suffix so
            # strip_timestamps removes it from canonical traces
            attrs["reaction_seconds"] = reaction
            self.tracer.event("reschedule", attrs=attrs)
        self.count("online.reschedules")
        self.count(f"online.reschedule.rung.{result.rung}")
        if self.metrics is not None:
            self.metrics.histogram(
                "online.reaction.seconds", buckets=REACTION_BUCKETS
            ).observe(reaction)
        self.wake_pending(now)

    def _check_deadline(self, now: float) -> None:
        projected = self.monitor.projected_makespan(
            self._plan_completion()
        )
        if self.monitor.deadline_breach(projected):
            self.emit(
                DeadlineBreached(
                    time=now,
                    projected=projected,
                    deadline=self.monitor.deadline,
                ),
                "fault",
            )
            self.count("online.deadline.breaches")
            # one emergency re-plan; the latch stops any repetition
            self._reschedule(now, "deadline")

    # -- result assembly ------------------------------------------------
    def _finalize(self, makespan: float) -> OnlineResult:
        completed = self.outcome in ("completed", "deadline-missed")
        schedule = trace = None
        verified = False
        if completed:
            schedule = Schedule(
                self.ptg,
                self.schedule.cluster,
                self.actual_start.copy(),
                self.actual_finish.copy(),
                [ps.copy() for ps in self.actual_procs],
            )
            trace = SimulationTrace(num_processors=self.P)
            # same ordering as simulate(): by time, finishes before
            # starts at equal times, task index breaking ties
            entries = sorted(
                [
                    (float(self.actual_finish[v]), 1, v)
                    for v in range(self.V)
                ]
                + [
                    (float(self.actual_start[v]), 0, v)
                    for v in range(self.V)
                ],
                key=lambda e: (e[0], -e[1], e[2]),
            )
            for when, is_finish, v in entries:
                cls = TaskFinished if is_finish else TaskStarted
                trace.record(
                    cls(
                        time=when,
                        task=v,
                        task_name=self.ptg.task(v).name,
                        processors=tuple(
                            int(p) for p in self.actual_procs[v]
                        ),
                    )
                )
            verifier = ScheduleVerifier(self.ptg, self.table)
            verifier.verify_execution(
                schedule, expected_makespan=makespan
            )
            verified = True
        if self.metrics is not None:
            self.metrics.gauge("online.makespan").set(makespan)
        return OnlineResult(
            outcome=self.outcome,
            makespan=makespan,
            planned_makespan=float(self.schedule.makespan),
            schedule=schedule,
            trace=trace,
            events=self.events,
            reschedules=self.reschedules,
            faults_injected=self.faults_injected,
            retries=self.retries,
            rungs=self.rungs,
            budget_used=self.budget_used,
            deadline=self.monitor.deadline,
            verified=verified,
            reason=self.reason,
        )


def execute_online(
    schedule: Schedule,
    table: TimeTable,
    plan: FaultPlan | None = None,
    policy: ReactionPolicy | None = None,
    deadline: float | None = None,
    rng=None,
    tracer=None,
    metrics=None,
) -> OnlineResult:
    """Execute ``schedule`` reactively under an optional fault plan.

    Parameters
    ----------
    schedule:
        The planned schedule (from EMTS, a heuristic, or a file).
    table:
        The time table the schedule was planned against; re-used for
        frontier re-planning and as-executed verification.
    plan:
        Fault injections; ``None`` or an empty plan reproduces the
        static simulator's makespan bit for bit.
    policy:
        Reaction limits (see :class:`ReactionPolicy`).
    deadline:
        Optional absolute completion deadline in simulated seconds;
        breaching its projection triggers one emergency reschedule and
        an over-deadline completion is reported as ``deadline-missed``.
    rng:
        Seed or generator for the rescheduler's evolution rung.
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / metrics registry; the
        runtime emits ``fault`` and ``reschedule`` events and
        ``online.*`` instruments.

    Returns
    -------
    OnlineResult
        Typed outcome, as-executed schedule and trace (verified by
        :meth:`repro.verify.ScheduleVerifier.verify_execution`), the
        ordered online event list and reaction accounting.
    """
    run = _OnlineRun(
        schedule,
        table,
        plan or FaultPlan(),
        policy or ReactionPolicy(),
        deadline,
        rng,
        tracer,
        metrics,
    )
    if run.tracer is not None:
        run.tracer.event(
            "online_start",
            attrs={
                "tasks": run.V,
                "processors": run.P,
                "planned_makespan": float(schedule.makespan),
                "deadline": deadline,
                "budget_evaluations": run.policy.budget_evaluations,
                **run.plan.summary(),
            },
        )
    result = run.run()
    if run.tracer is not None:
        run.tracer.event(
            "online_end",
            attrs={
                "outcome": result.outcome,
                "makespan": result.makespan,
                "reschedules": result.reschedules,
                "faults_injected": result.faults_injected,
                "retries": result.retries,
                "budget_used": result.budget_used,
                "verified": result.verified,
            },
        )
    return result
