"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish graph problems from scheduling
problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "ValidationError",
    "PlatformError",
    "AllocationError",
    "ScheduleError",
    "VerificationError",
    "SimulationError",
    "ModelError",
    "TimeModelError",
    "ConfigurationError",
    "EvaluationError",
    "CheckpointError",
    "CampaignError",
    "TraceError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A parallel task graph is structurally invalid."""


class CycleError(GraphError):
    """A task graph contains a dependency cycle (must be a DAG)."""


class ValidationError(ReproError):
    """An object failed an internal consistency check."""


class PlatformError(ReproError):
    """A platform description is invalid (e.g. non-positive speed)."""


class AllocationError(ReproError):
    """A processor-allocation vector is invalid for a PTG/platform pair."""


class ScheduleError(ReproError):
    """A schedule violates precedence or resource constraints."""


class VerificationError(ScheduleError):
    """A schedule failed independent verification.

    Raised by :class:`repro.verify.ScheduleVerifier` (and the
    differential replay built on it) when a schedule violates one of the
    invariants every valid mixed-parallel schedule must satisfy, or when
    two scheduling engines disagree about the same allocation.

    ``kind`` is a stable machine-checkable tag naming the violated
    invariant (``"overlap"``, ``"precedence"``, ``"wrong-duration"``,
    ``"allocation-range"``, ``"non-finite"``, ``"makespan-mismatch"``,
    ``"engine-divergence"``, ...); ``task`` and ``processor`` carry the
    offending indices when the violation is localized.
    """

    def __init__(
        self,
        message: str,
        kind: str = "invalid",
        task: int | None = None,
        processor: int | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.task = task
        self.processor = processor


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency.

    Raised by :func:`repro.simulator.simulate` (and the online runtime
    built on top of it) when a replayed schedule violates precedence,
    exclusivity or duration consistency.  The structured fields make a
    divergence actionable without parsing the message: ``task`` is the
    offending task index, ``processors`` the processor set involved and
    ``time`` the simulated instant at which the violation was observed.
    """

    def __init__(
        self,
        message: str,
        task: int | None = None,
        processors: tuple[int, ...] | None = None,
        time: float | None = None,
    ) -> None:
        super().__init__(message)
        self.task = task
        self.processors = (
            None
            if processors is None
            else tuple(int(p) for p in processors)
        )
        self.time = None if time is None else float(time)


class ModelError(ReproError):
    """An execution-time model received invalid parameters."""


class TimeModelError(ModelError):
    """An execution-time model produced an unusable prediction.

    Raised when a model yields a NaN, infinite, or non-positive
    ``T(v, p)`` — values that would otherwise silently propagate into
    makespans and corrupt every downstream comparison.  ``task`` names
    the offending task, ``p`` the processor count and ``model`` the
    model that produced the value.
    """

    def __init__(
        self,
        message: str,
        task: str | None = None,
        p: int | None = None,
        model: str | None = None,
    ) -> None:
        super().__init__(message)
        self.task = task
        self.p = p
        self.model = model


class ConfigurationError(ReproError):
    """An algorithm configuration is invalid (e.g. mu <= 0)."""


class EvaluationError(ReproError):
    """A fitness evaluation failed permanently.

    Raised by the evaluation engine once every recovery avenue (pool
    rebuilds, bounded retries, the serial in-process fallback) has been
    exhausted for a batch.  ``genome_indices`` identifies the positions,
    within the submitted batch, of the genomes whose evaluation failed —
    so callers can log, drop or re-enqueue exactly the affected
    individuals.
    """

    def __init__(
        self, message: str, genome_indices: tuple[int, ...] | list[int] = ()
    ) -> None:
        super().__init__(message)
        self.genome_indices: tuple[int, ...] = tuple(
            int(i) for i in genome_indices
        )


class CheckpointError(ReproError):
    """A run checkpoint could not be written, read, or resumed from.

    Covers I/O failures, corrupted or truncated checkpoint files,
    unsupported format versions, and attempts to resume a checkpoint
    against a different problem or algorithm configuration than the one
    that produced it.
    """


class CampaignError(ReproError):
    """An experiment campaign is misconfigured or its state is unusable.

    Covers invalid trial specifications (duplicate or unsafe keys,
    results that cannot be serialized) and attempts to resume a campaign
    directory that belongs to a different campaign.
    """


class TraceError(ReproError):
    """A run trace could not be written, read, or understood.

    Covers I/O failures while writing trace events, truncated or
    corrupt JSONL trace files, unsupported schema versions, and events
    that violate the documented :class:`repro.obs.TraceEvent` schema.
    The message always names the offending file (and line, when one is
    identifiable).
    """


class ServiceError(ReproError):
    """A scheduling-service request could not be served.

    ``status`` is the HTTP status the daemon maps the error to and
    ``code`` a stable machine-checkable tag (``"bad-request"``,
    ``"queue-full"``, ``"quota-exceeded"``, ``"not-found"``,
    ``"draining"``, ...) so clients can branch without parsing the
    human-readable message.  ``retry_after`` carries the backpressure
    hint (seconds) that becomes the ``Retry-After`` header on 429/503
    responses.
    """

    def __init__(
        self,
        message: str,
        code: str = "bad-request",
        status: int = 400,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = int(status)
        self.retry_after = retry_after
