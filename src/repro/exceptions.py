"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish graph problems from scheduling
problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "ValidationError",
    "PlatformError",
    "AllocationError",
    "ScheduleError",
    "SimulationError",
    "ModelError",
    "ConfigurationError",
    "EvaluationError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A parallel task graph is structurally invalid."""


class CycleError(GraphError):
    """A task graph contains a dependency cycle (must be a DAG)."""


class ValidationError(ReproError):
    """An object failed an internal consistency check."""


class PlatformError(ReproError):
    """A platform description is invalid (e.g. non-positive speed)."""


class AllocationError(ReproError):
    """A processor-allocation vector is invalid for a PTG/platform pair."""


class ScheduleError(ReproError):
    """A schedule violates precedence or resource constraints."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency."""


class ModelError(ReproError):
    """An execution-time model received invalid parameters."""


class ConfigurationError(ReproError):
    """An algorithm configuration is invalid (e.g. mu <= 0)."""


class EvaluationError(ReproError):
    """A fitness evaluation failed permanently.

    Raised by the evaluation engine once every recovery avenue (pool
    rebuilds, bounded retries, the serial in-process fallback) has been
    exhausted for a batch.  ``genome_indices`` identifies the positions,
    within the submitted batch, of the genomes whose evaluation failed —
    so callers can log, drop or re-enqueue exactly the affected
    individuals.
    """

    def __init__(
        self, message: str, genome_indices: tuple[int, ...] | list[int] = ()
    ) -> None:
        super().__init__(message)
        self.genome_indices: tuple[int, ...] = tuple(
            int(i) for i in genome_indices
        )


class CheckpointError(ReproError):
    """A run checkpoint could not be written, read, or resumed from.

    Covers I/O failures, corrupted or truncated checkpoint files,
    unsupported format versions, and attempts to resume a checkpoint
    against a different problem or algorithm configuration than the one
    that produced it.
    """
