"""Small dependency-free utilities shared across the repro stack.

Everything here is importable without numpy so the stdlib-only service
client (and the chaos harness that attacks it) can reuse the exact
retry arithmetic the heavyweight components run on.
"""

from .backoff import (
    Backoff,
    decorrelated_jitter,
    exponential_delay,
)
from .crash import (
    CRASH_ENV_VAR,
    CRASH_EXIT_CODE,
    KNOWN_CRASH_POINTS,
    crash_point,
    register_crash_hook,
    reset_crash_counts,
    reset_crash_hooks,
)

__all__ = [
    "Backoff",
    "decorrelated_jitter",
    "exponential_delay",
    "CRASH_ENV_VAR",
    "CRASH_EXIT_CODE",
    "KNOWN_CRASH_POINTS",
    "crash_point",
    "register_crash_hook",
    "reset_crash_counts",
    "reset_crash_hooks",
]
