"""Named crash points: deterministic process death for recovery tests.

Crash-only software is a hypothesis until you crash it.  The daemon's
durability story (atomic spool records, per-generation checkpoints,
restart recovery) claims that dying at *any* instant loses nothing —
this module makes specific instants addressable so the kill-restart
acceptance suite can detonate each one on purpose.

A production code path marks its dangerous instants with
``crash_point("name")``.  The call is a no-op unless the
``REPRO_CRASH_POINT`` environment variable selects that name, in which
case the process dies *hard* — ``os._exit``: no ``atexit`` handlers, no
flushing, no graceful anything, exactly like ``kill -9`` landing on
that line.  The variable accepts an optional 1-based hit count,
``name:N``, to detonate on the N-th crossing (e.g.
``mid-checkpoint:3`` dies while journalling the third checkpoint).

Overhead when unarmed: one dict lookup on ``os.environ`` per crossing.
Every call site sits on a cold persistence path (spool writes, drain,
checkpoint journalling), never in the evaluation hot loop.
"""

from __future__ import annotations

import os
from typing import Callable

__all__ = [
    "CRASH_ENV_VAR",
    "CRASH_EXIT_CODE",
    "KNOWN_CRASH_POINTS",
    "crash_point",
    "register_crash_hook",
    "reset_crash_counts",
    "reset_crash_hooks",
]

CRASH_ENV_VAR = "REPRO_CRASH_POINT"

#: Exit status of a detonated crash point — distinct from every
#: sysexits/service code so a harness can assert the death was the
#: *injected* one and not collateral damage.
CRASH_EXIT_CODE = 66

#: Every crash point wired into the serving path, in request order.
#: (The tuple is documentation plus a test fixture — ``crash_point``
#: itself accepts any name, so adding a point is a one-line change.)
KNOWN_CRASH_POINTS = (
    "pre-spool-write",    # job record not yet on disk
    "mid-spool-write",    # temp record written, rename not yet done
    "post-spool-write",   # record durable, caller not yet told
    "post-enqueue",       # job queued + durable, ack not yet sent
    "mid-checkpoint",     # run checkpoint temp written, not published
    "pre-result-persist", # run finished, result not yet durable
    "mid-drain",          # drain started, workers not yet joined
)

# per-process crossing counters, keyed by point name
_hits: dict[str, int] = {}

# last-gasp callbacks run right before ``os._exit`` — the flight
# recorder registers its dump here.  Hooks must be exception-proof in
# spirit; they are wrapped anyway because a crash simulation that
# crashes differently defeats the test.
_hooks: list[Callable[[str], None]] = []


def register_crash_hook(hook: Callable[[str], None]) -> None:
    """Run ``hook(point_name)`` just before a crash point detonates.

    Hooks fire in registration order, each shielded from exceptions;
    ``os._exit`` follows regardless.  This is the only pre-death
    extension point — everything else about the death stays as brutal
    as ``kill -9``.
    """
    if hook not in _hooks:
        _hooks.append(hook)


def reset_crash_hooks() -> None:
    """Drop every registered hook (test isolation)."""
    _hooks.clear()


def crash_point(name: str) -> None:
    """Die with :data:`CRASH_EXIT_CODE` if this point is armed.

    Reads :data:`CRASH_ENV_VAR` on every call (the armed case is a test
    subprocess; the unarmed case must stay cheap and re-readable so one
    long-lived pytest process can arm and disarm freely).
    """
    spec = os.environ.get(CRASH_ENV_VAR)
    if not spec:
        return
    target, _, count = spec.partition(":")
    if target != name:
        return
    _hits[name] = _hits.get(name, 0) + 1
    threshold = int(count) if count else 1
    if _hits[name] >= threshold:
        for hook in _hooks:
            try:
                hook(name)
            except Exception:  # pragma: no cover - must still die
                pass
        os._exit(CRASH_EXIT_CODE)


def reset_crash_counts() -> None:
    """Forget crossing counts (in-process tests re-arming points)."""
    _hits.clear()
