"""One backoff implementation for every retry loop in the repo.

Three call sites grew their own ``base * factor ** (attempt - 1)``
arithmetic over PRs 3, 4 and 8 (the pool evaluator's chunk retries, the
campaign runner's trial retries, and the online runtime's task-failure
backoff).  They all route through :func:`exponential_delay` now, which
keeps the exact floating-point expression they used — bit-identical
delays matter: the online runtime's backoff feeds *simulated time*, and
a reordered multiply would silently change every fault-injected trace.

The service retry layer (:class:`repro.service.RetryPolicy`) adds
*decorrelated jitter* on top (:func:`decorrelated_jitter`, after Marc
Brooker's "Exponential Backoff And Jitter"): each sleep is drawn
uniformly from ``[base, previous * 3]`` and capped, which spreads a
thundering herd of retrying clients apart instead of synchronizing them
on the same exponential schedule.

Stdlib-only on purpose — the service client must stay importable
without numpy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["exponential_delay", "decorrelated_jitter", "Backoff"]


def exponential_delay(
    base: float,
    attempt: int,
    *,
    factor: float = 2.0,
    cap: float | None = None,
) -> float:
    """Deterministic exponential backoff for retry ``attempt`` (1-based).

    Returns ``base * factor ** (attempt - 1)``, clamped to ``cap`` when
    one is given.  ``attempt`` counts *failures so far*: the delay slept
    after the first failure is ``base``, after the second ``base *
    factor``, and so on.  A non-positive ``base`` always yields 0.0 so
    callers can disable sleeping with ``base=0``.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if base <= 0:
        return 0.0
    delay = base * factor ** (attempt - 1)
    if cap is not None and delay > cap:
        return float(cap)
    return float(delay)


def decorrelated_jitter(
    rng: random.Random,
    previous: float,
    base: float,
    cap: float,
) -> float:
    """One decorrelated-jitter sleep: ``min(cap, U(base, previous*3))``.

    ``previous`` is the last sleep (pass ``base`` — or 0.0 — before the
    first retry).  Unlike "full jitter" the draw depends on the previous
    sleep rather than the attempt number, so two clients that collide
    once diverge immediately instead of colliding again next round.
    """
    if base <= 0:
        return 0.0
    low = base
    high = max(low, previous * 3.0)
    return min(float(cap), rng.uniform(low, high))


@dataclass
class Backoff:
    """A stateful backoff schedule: call :meth:`next_delay` per failure.

    ``jitter="none"`` reproduces the classic deterministic exponential
    ladder; ``jitter="decorrelated"`` draws each sleep from the seeded
    ``random.Random`` stream, so a retry schedule is reproducible from
    its seed but uncorrelated with every other client's.

    >>> b = Backoff(base=0.1, cap=5.0, seed=7)
    >>> delays = [b.next_delay() for _ in range(3)]
    >>> all(0.1 <= d <= 5.0 for d in delays)
    True
    """

    base: float = 0.05
    cap: float = 30.0
    factor: float = 2.0
    jitter: str = "decorrelated"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.cap < self.base:
            raise ValueError(
                f"cap must be >= base, got cap={self.cap} base={self.base}"
            )
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(
                f"jitter must be 'none' or 'decorrelated', "
                f"got {self.jitter!r}"
            )
        self._rng = random.Random(self.seed)
        self._attempt = 0
        self._previous = self.base

    def next_delay(self) -> float:
        """The sleep to take after the next failure."""
        self._attempt += 1
        if self.jitter == "none":
            delay = exponential_delay(
                self.base, self._attempt, factor=self.factor, cap=self.cap
            )
        else:
            delay = decorrelated_jitter(
                self._rng, self._previous, self.base, self.cap
            )
        self._previous = delay
        return delay

    def reset(self) -> None:
        """Rewind to the pre-first-failure state (success observed)."""
        self._attempt = 0
        self._previous = self.base
        self._rng = random.Random(self.seed)
