"""Execution traces produced by the schedule simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import Event, TaskFinished, TaskStarted

__all__ = ["SimulationTrace"]


@dataclass
class SimulationTrace:
    """Chronological event log of one simulated schedule execution."""

    num_processors: int
    events: list[Event] = field(default_factory=list)

    def record(self, event: Event) -> None:
        """Append one event (events must arrive in time order)."""
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"event at t={event.time} arrived after t="
                f"{self.events[-1].time}"
            )
        self.events.append(event)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Time of the last TaskFinished event."""
        finishes = [
            e.time for e in self.events if isinstance(e, TaskFinished)
        ]
        return max(finishes) if finishes else 0.0

    @property
    def num_tasks_completed(self) -> int:
        """Number of TaskFinished events."""
        return sum(1 for e in self.events if isinstance(e, TaskFinished))

    def events_for_task(self, task: int) -> list[Event]:
        """All events concerning one task."""
        return [e for e in self.events if e.task == task]

    def busy_time_per_processor(self) -> np.ndarray:
        """Total busy seconds of each processor."""
        busy = np.zeros(self.num_processors, dtype=np.float64)
        started: dict[int, float] = {}
        for e in self.events:
            if isinstance(e, TaskStarted):
                started[e.task] = e.time
            elif isinstance(e, TaskFinished):
                duration = e.time - started.pop(e.task)
                for p in e.processors:
                    busy[p] += duration
        return busy

    def utilization(self) -> float:
        """Average processor utilization over the makespan."""
        ms = self.makespan
        if ms <= 0:
            return 0.0
        return float(
            self.busy_time_per_processor().sum()
            / (self.num_processors * ms)
        )

    def concurrency_profile(self) -> list[tuple[float, int]]:
        """Piecewise-constant count of busy processors over time.

        Returns ``(time, busy_processors)`` breakpoints — the count holds
        from each breakpoint until the next.
        """
        profile: list[tuple[float, int]] = []
        busy = 0
        for e in self.events:
            if isinstance(e, TaskStarted):
                busy += len(e.processors)
            elif isinstance(e, TaskFinished):
                busy -= len(e.processors)
            else:  # pragma: no cover - no other event kinds exist
                continue
            if profile and abs(profile[-1][0] - e.time) < 1e-15:
                profile[-1] = (e.time, busy)
            else:
                profile.append((e.time, busy))
        return profile

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        lines = [f"trace: {len(self.events)} events"]
        for e in self.events:
            lines.append(
                f"  t={e.time:>12.6g}  {e.kind:<13} {e.task_name}"
            )
        return "\n".join(lines)
