"""Discrete-event schedule simulator (paper Section IV).

Public API: :func:`simulate` (replay + verify a schedule),
:class:`SimulationResult`, :class:`SimulationTrace` and the event types.
"""

from .engine import SimulationResult, simulate
from .events import Event, TaskFinished, TaskStarted
from .trace import SimulationTrace

__all__ = [
    "simulate",
    "SimulationResult",
    "SimulationTrace",
    "Event",
    "TaskStarted",
    "TaskFinished",
]
