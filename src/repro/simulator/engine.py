"""Discrete-event execution of a schedule on the platform model.

The simulator replays a :class:`~repro.mapping.Schedule` event by event,
*independently* enforcing the platform semantics of paper Section IV:

* a processor executes one task at a time;
* a task starts only after every predecessor has finished;
* a task occupies exactly its assigned processors for exactly its
  predicted duration (durations come from the time table, not from the
  schedule, so a scheduler bug that records wrong finish times is
  caught).

It is the cross-check between the analytic list scheduler and "what would
actually happen" on the simulated cluster: every experiment's makespan is
validated through :func:`simulate` in the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..exceptions import SimulationError
from ..mapping import Schedule
from ..timemodels import TimeTable
from .events import TaskFinished, TaskStarted
from .trace import SimulationTrace

__all__ = ["simulate", "SimulationResult"]

_EPS = 1e-9


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    trace: SimulationTrace
    makespan: float

    @property
    def utilization(self) -> float:
        """Average processor utilization observed during the run."""
        return self.trace.utilization()


def simulate(
    schedule: Schedule,
    table: TimeTable | None = None,
) -> SimulationResult:
    """Execute ``schedule`` in simulated time.

    Parameters
    ----------
    schedule:
        The schedule to replay.
    table:
        Optional time table; when given, task durations are re-derived
        from it (``T(v, |procs(v)|)``) instead of trusting the schedule's
        recorded ``finish - start``, and any disagreement raises
        :class:`SimulationError`.

    Raises
    ------
    SimulationError
        On any violation of precedence, exclusivity or duration
        consistency.
    """
    ptg = schedule.ptg
    P = schedule.cluster.num_processors
    V = ptg.num_tasks

    durations = schedule.finish - schedule.start
    if table is not None:
        expected = np.array(
            [
                table.time(v, len(schedule.proc_sets[v]))
                for v in range(V)
            ]
        )
        if not np.allclose(durations, expected, rtol=1e-9, atol=1e-9):
            bad = int(np.argmax(np.abs(durations - expected)))
            raise SimulationError(
                f"task {ptg.task(bad).name!r}: schedule duration "
                f"{durations[bad]:.9g} disagrees with the time table's "
                f"{expected[bad]:.9g}",
                task=bad,
                processors=tuple(
                    int(p) for p in schedule.proc_sets[bad]
                ),
                time=float(schedule.start[bad]),
            )

    # event queue: (time, order, is_finish, task) — starts sort before
    # finishes at equal time is WRONG (a predecessor finishing at t must
    # release before a successor starting at t), so finishes get order 0
    # and starts order 1.
    queue: list[tuple[float, int, int, int]] = []
    for v in range(V):
        heapq.heappush(queue, (float(schedule.start[v]), 1, 1, v))

    trace = SimulationTrace(num_processors=P)
    busy_until = np.zeros(P, dtype=np.float64)
    running_on: list[int | None] = [None] * P
    done = np.zeros(V, dtype=bool)

    while queue:
        t, order, kind, v = heapq.heappop(queue)
        name = ptg.task(v).name
        procs = tuple(int(p) for p in schedule.proc_sets[v])
        if kind == 1:  # start
            for u in ptg.predecessors(v):
                if not done[u]:
                    raise SimulationError(
                        f"task {name!r} started at t={t} before "
                        f"predecessor {ptg.task(u).name!r} finished",
                        task=v,
                        processors=procs,
                        time=t,
                    )
            for p in procs:
                if busy_until[p] > t + _EPS:
                    raise SimulationError(
                        f"task {name!r} started at t={t} on busy "
                        f"processor {p} (occupied by task "
                        f"{running_on[p]} until {busy_until[p]})",
                        task=v,
                        processors=(int(p),),
                        time=t,
                    )
            finish = t + float(durations[v])
            for p in procs:
                busy_until[p] = finish
                running_on[p] = v
            trace.record(
                TaskStarted(
                    time=t, task=v, task_name=name, processors=procs
                )
            )
            heapq.heappush(queue, (finish, 0, 0, v))
        else:  # finish
            done[v] = True
            for p in procs:
                if running_on[p] == v:
                    running_on[p] = None
            trace.record(
                TaskFinished(
                    time=t, task=v, task_name=name, processors=procs
                )
            )

    if not done.all():
        first = int(np.flatnonzero(~done)[0])
        missing = [ptg.task(v).name for v in np.flatnonzero(~done)]
        raise SimulationError(
            f"simulation ended with unfinished tasks: {missing[:5]}",
            task=first,
            time=trace.makespan,
        )
    makespan = trace.makespan
    if abs(makespan - schedule.makespan) > 1e-6 * max(1.0, makespan):
        raise SimulationError(
            f"simulated makespan {makespan} disagrees with the "
            f"schedule's {schedule.makespan}",
            time=makespan,
        )
    return SimulationResult(trace=trace, makespan=makespan)
