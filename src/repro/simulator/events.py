"""Event types of the discrete-event schedule simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event", "TaskStarted", "TaskFinished"]


@dataclass(frozen=True)
class Event:
    """Base event: something happened at simulated time ``time``."""

    time: float
    task: int
    task_name: str

    @property
    def kind(self) -> str:
        """Event type label used in trace rendering."""
        return type(self).__name__


@dataclass(frozen=True)
class TaskStarted(Event):
    """A task began executing on ``processors``."""

    processors: tuple[int, ...]


@dataclass(frozen=True)
class TaskFinished(Event):
    """A task completed and released ``processors``."""

    processors: tuple[int, ...]
