"""Individual encoding for EMTS (paper Section III-A, Figure 2).

EMTS encodes the set of processor allocations of a PTG directly as an
integer vector: individual ``I_j`` of PTG ``G_j`` holds at position ``i``
the number of processors allocated to task ``v_i`` — ``I_j(i) = s(v_i)``.
This module provides the clamp/validate/repair helpers shared by the
mutation operator and the seeding logic.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import AllocationError
from ..graph import PTG

__all__ = [
    "clamp_allocations",
    "validate_genome",
    "random_allocations",
    "describe_genome",
]


def clamp_allocations(genome: np.ndarray, P: int) -> np.ndarray:
    """Clamp every allocation into the feasible range ``[1, P]``.

    The Eq. 1 mutation operator may push an allele below 1 or above the
    machine size; clamping is EMTS's repair rule.
    """
    return np.clip(np.asarray(genome, dtype=np.int64), 1, P)


def validate_genome(genome: np.ndarray, V: int, P: int) -> np.ndarray:
    """Check that ``genome`` is a feasible allocation vector.

    Returns the canonical int64 copy; raises :class:`AllocationError`
    otherwise.
    """
    genome = np.asarray(genome)
    if genome.shape != (V,):
        raise AllocationError(
            f"genome has shape {genome.shape}, expected ({V},)"
        )
    out = genome.astype(np.int64)
    if not np.array_equal(out, genome):
        raise AllocationError("genome entries must be integers")
    if out.min() < 1 or out.max() > P:
        raise AllocationError(
            f"genome entries must lie in [1, {P}], got range "
            f"[{out.min()}, {out.max()}]"
        )
    return out


def random_allocations(
    V: int, P: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random allocation vector (used by the seeding ablation)."""
    if V < 1 or P < 1:
        raise AllocationError(f"V and P must be >= 1, got V={V}, P={P}")
    return rng.integers(1, P + 1, size=V, dtype=np.int64)


def describe_genome(ptg: PTG, genome: np.ndarray) -> str:
    """Human-readable rendering of an encoded individual (Figure 2 style).

    >>> from repro.graph import chain
    >>> import numpy as np
    >>> print(describe_genome(chain([1.0, 1.0]), np.array([3, 1])))
    position | task | allocation
           0 | t0   | 3
           1 | t1   | 1
    """
    genome = np.asarray(genome)
    name_w = max(4, max(len(t.name) for t in ptg.tasks))
    lines = [f"position | {'task'.ljust(name_w)} | allocation"]
    for i, t in enumerate(ptg.tasks):
        lines.append(
            f"{i:>8} | {t.name.ljust(name_w)} | {int(genome[i])}"
        )
    return "\n".join(lines)
