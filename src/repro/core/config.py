"""EMTS configuration and the paper's EMTS5 / EMTS10 presets
(Sections III and V).

Paper parameter values:

=====================  =======  ==========================================
parameter              value    meaning
=====================  =======  ==========================================
``delta``              0.9      Δ-criticality threshold of the seed
``f_m``                0.33     initial fraction of mutated allocations
``sigma``              5        std-dev of both mutation half-normals
``a``                  0.2      probability that an allocation *shrinks*
(mu, lambda), U        (5+25),5   EMTS5 — the "quick" configuration
(mu, lambda), U        (10+100),10  EMTS10 — the "thorough" configuration
=====================  =======  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError

__all__ = ["EMTSConfig", "emts5_config", "emts10_config"]


@dataclass(frozen=True)
class EMTSConfig:
    """Complete parameterization of one EMTS run.

    Attributes
    ----------
    mu, lam:
        Parent and offspring counts of the (mu + lambda) strategy.
    generations:
        The horizon ``U``; also drives the mutation-count annealing
        ``m = (1 - u/U) * f_m * V``.
    fm:
        Fraction of alleles mutated in the first generation.
    sigma_stretch, sigma_shrink:
        Standard deviations sigma_1 / sigma_2 of the mutation magnitudes
        (paper: both 5).
    shrink_probability:
        The Bernoulli parameter ``a``: probability that a mutated
        allocation loses processors (paper: 0.2).
    delta:
        Threshold of the Δ-critical seeding heuristic (paper: 0.9).
    seed_heuristics:
        Names of the allocators whose results seed the population, from
        {"mcpa", "hcpa", "delta-critical", "serial", "cpa", "mcpa2"}.
    selection:
        "plus" (paper) or "comma" (ablation).
    use_rejection:
        Enable the mapper's early-abort rejection strategy (the paper's
        future-work optimization): candidate mappings that provably
        cannot beat the incumbent are cut short.
    time_budget_seconds:
        Optional wall-clock cap on the evolutionary search.
    workers:
        Fitness-evaluation worker processes.  0 or 1 = serial (the
        historical behavior); N >= 2 fans offspring batches out to N
        worker processes.  Results are bit-identical either way.
    fitness_cache:
        Memoize makespans by allocation vector so duplicate offspring
        are never re-scheduled (exact, bounded LRU; on by default).
    fitness_cache_size:
        Capacity of the memoization cache (genomes).
    eval_max_retries:
        How often the parallel evaluator rebuilds a crashed worker pool
        and re-dispatches the failed chunks before falling back to
        serial evaluation (ignored for ``workers <= 1``).
    eval_retry_backoff:
        Base of the exponential backoff (seconds) slept between pool
        rebuild attempts.
    eval_timeout:
        Optional per-chunk wall-clock timeout (seconds) for the parallel
        evaluator; a hung worker then counts as a retriable failure
        instead of blocking the run forever.
    verify:
        Online differential verification of fitness values: ``"off"``
        (default), ``"sample"`` (NaN scan every batch plus one full
        differential replay per :data:`repro.verify.evaluator
        .DEFAULT_SAMPLE_INTERVAL` genomes) or ``"full"`` (every finite
        value replayed through every scheduling engine).
    islands:
        0 (default) runs the classic panmictic (mu + lambda) engine.
        Any value >= 1 switches to the island model
        (:mod:`repro.core.islands`): ``mu`` logical single-parent
        islands with ring migration, evaluated in ``islands``
        contiguous execution shards.  The shard count is a pure
        execution knob — same-seed results are bit-identical for any
        value in ``{1, ..., mu}``.  Requires plus selection and
        ``lam >= mu``.
    migration_interval:
        Generations between ring migrations in island mode (>= 1;
        ignored when ``islands == 0``).
    """

    mu: int = 5
    lam: int = 25
    generations: int = 5
    fm: float = 0.33
    sigma_stretch: float = 5.0
    sigma_shrink: float = 5.0
    shrink_probability: float = 0.2
    delta: float = 0.9
    seed_heuristics: tuple[str, ...] = (
        "mcpa",
        "hcpa",
        "delta-critical",
    )
    selection: str = "plus"
    use_rejection: bool = False
    time_budget_seconds: float | None = None
    workers: int = 0
    fitness_cache: bool = True
    fitness_cache_size: int = 65_536
    eval_max_retries: int = 3
    eval_retry_backoff: float = 0.05
    eval_timeout: float | None = None
    verify: str = "off"
    islands: int = 0
    migration_interval: int = 1
    name: str = "emts"

    def __post_init__(self) -> None:
        if self.mu < 1:
            raise ConfigurationError(f"mu must be >= 1, got {self.mu}")
        if self.lam < 1:
            raise ConfigurationError(f"lambda must be >= 1, got {self.lam}")
        if self.generations < 1:
            raise ConfigurationError(
                f"generations must be >= 1, got {self.generations}"
            )
        if not (0.0 < self.fm <= 1.0):
            raise ConfigurationError(
                f"f_m must lie in (0, 1], got {self.fm}"
            )
        if self.sigma_stretch <= 0 or self.sigma_shrink <= 0:
            raise ConfigurationError("mutation sigmas must be > 0")
        if not (0.0 <= self.shrink_probability <= 1.0):
            raise ConfigurationError(
                "shrink probability must lie in [0, 1], got "
                f"{self.shrink_probability}"
            )
        if not (0.0 <= self.delta <= 1.0):
            raise ConfigurationError(
                f"delta must lie in [0, 1], got {self.delta}"
            )
        if not self.seed_heuristics:
            raise ConfigurationError(
                "at least one seed heuristic is required"
            )
        if self.selection not in ("plus", "comma"):
            raise ConfigurationError(
                f"selection must be 'plus' or 'comma', got "
                f"{self.selection!r}"
            )
        if (
            self.time_budget_seconds is not None
            and self.time_budget_seconds <= 0
        ):
            raise ConfigurationError("time budget must be > 0 seconds")
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.fitness_cache_size < 1:
            raise ConfigurationError(
                "fitness cache size must be >= 1, got "
                f"{self.fitness_cache_size}"
            )
        if self.eval_max_retries < 0:
            raise ConfigurationError(
                "eval_max_retries must be >= 0, got "
                f"{self.eval_max_retries}"
            )
        if self.eval_retry_backoff < 0:
            raise ConfigurationError(
                "eval_retry_backoff must be >= 0 seconds, got "
                f"{self.eval_retry_backoff}"
            )
        if self.eval_timeout is not None and self.eval_timeout <= 0:
            raise ConfigurationError(
                f"eval_timeout must be > 0 seconds, got {self.eval_timeout}"
            )
        if self.verify not in ("off", "sample", "full"):
            raise ConfigurationError(
                f"verify must be 'off', 'sample' or 'full', got "
                f"{self.verify!r}"
            )
        if self.islands < 0:
            raise ConfigurationError(
                f"islands must be >= 0, got {self.islands}"
            )
        if self.migration_interval < 1:
            raise ConfigurationError(
                f"migration_interval must be >= 1, got "
                f"{self.migration_interval}"
            )
        if self.islands > 0:
            if self.selection != "plus":
                raise ConfigurationError(
                    "the island model is elitist per island and "
                    "requires selection='plus'"
                )
            if self.lam < self.mu:
                raise ConfigurationError(
                    f"island mode needs lambda >= mu so every island "
                    f"produces offspring ({self.lam} < {self.mu})"
                )

    def with_updates(self, **changes) -> "EMTSConfig":
        """A modified copy (frozen dataclass helper)."""
        return replace(self, **changes)


def emts5_config() -> EMTSConfig:
    """The paper's EMTS5: a (5 + 25)-EA over 5 generations."""
    return EMTSConfig(mu=5, lam=25, generations=5, name="emts5")


def emts10_config() -> EMTSConfig:
    """The paper's EMTS10: a (10 + 100)-EA over 10 generations."""
    return EMTSConfig(mu=10, lam=100, generations=10, name="emts10")
