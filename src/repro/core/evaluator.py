"""Pluggable fitness-evaluation engine for the EMTS hot path.

The paper's complexity analysis (Section III-E) identifies fitness
evaluation — one list-scheduler run per offspring — as the cost driver of
the whole algorithm: EMTS spends essentially all of its wall-clock time
inside :func:`repro.mapping.makespan_of`.  This module turns that hot
path into a swappable component:

* :class:`SerialEvaluator` — the historical behavior: one in-process
  mapper call per genome, in submission order (the default backend).
* :class:`ProcessPoolEvaluator` — chunked ``concurrent.futures``
  fan-out of offspring genomes across worker processes.  The immutable
  problem description (PTG + time table) is shipped **once per worker**
  via the pool initializer; per-batch traffic is just a stacked int64
  genome block per chunk.  The rejection bound (``abort_above``) is
  re-sent with *every chunk at dispatch time*, so the paper's rejection
  strategy keeps working under parallelism.
* :class:`MemoizedEvaluator` — a bounded-LRU genome cache that wraps any
  backend.  Duplicate offspring (common under the annealed Eq. 1
  mutation, which mutates ever fewer alleles in late generations) are
  never re-scheduled.

All backends are **exact**: for the same genome they return bit-identical
makespans, so swapping backends never changes the optimization outcome
for a fixed RNG seed.  Fitness is counted in two ways: *evaluations*
(genomes submitted — the paper's ``U * mu * lambda`` quantity) and
*mapper calls* (list-scheduler runs actually executed); the difference is
what the cache saved.

Rejection + memoization soundness
---------------------------------
``makespan_of(..., abort_above=b)`` returns ``inf`` for any genome whose
makespan provably reaches ``b`` — a value that depends on ``b``, not just
the genome.  The cache therefore stores rejections as ``(inf, b)``
markers: a later lookup under a bound ``b' <= b`` may reuse the rejection
(the true makespan is ``>= b >= b'``), while a lookup under a laxer (or
absent) bound re-evaluates.  Finite cached values are exact makespans and
are valid under every bound.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..mapping import ScheduleKernel, makespan_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..graph import PTG
    from ..timemodels import TimeTable

__all__ = [
    "EvaluationStats",
    "FitnessEvaluator",
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "MemoizedEvaluator",
    "create_evaluator",
]

#: Default capacity of the genome memoization cache.  An EMTS10 run
#: submits ``10 + 10 * 100`` genomes, so the default never evicts in
#: practice while still bounding memory for very long searches.
DEFAULT_CACHE_SIZE = 65_536


@dataclass
class EvaluationStats:
    """Counters accumulated by a :class:`FitnessEvaluator`.

    Attributes
    ----------
    evaluations:
        Genomes submitted for evaluation (logical fitness evaluations;
        one per offspring, cache hits included).
    mapper_calls:
        List-scheduler runs actually executed (``evaluations`` minus the
        work the cache saved).
    cache_hits, cache_misses:
        Memoization-cache outcomes (both zero without a cache).
    batches:
        Number of ``evaluate`` calls (one per EA generation, typically).
    wall_seconds:
        Total wall-clock time spent inside ``evaluate``.
    """

    evaluations: int = 0
    mapper_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    wall_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of submitted genomes served from the cache."""
        if self.evaluations == 0:
            return 0.0
        return self.cache_hits / self.evaluations

    def copy(self) -> "EvaluationStats":
        """An independent snapshot of the current counters."""
        return EvaluationStats(
            evaluations=self.evaluations,
            mapper_calls=self.mapper_calls,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            batches=self.batches,
            wall_seconds=self.wall_seconds,
        )

    def merge(self, other: "EvaluationStats") -> None:
        """Add ``other``'s counters into this one (pool aggregation)."""
        self.evaluations += other.evaluations
        self.mapper_calls += other.mapper_calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.batches += other.batches
        self.wall_seconds += other.wall_seconds

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.evaluations} evaluations "
            f"({self.mapper_calls} mapper calls, "
            f"{self.cache_hits} cache hits, "
            f"{self.hit_rate:.1%} hit rate) "
            f"in {self.wall_seconds:.3f} s"
        )


class FitnessEvaluator(ABC):
    """Batch fitness evaluation: allocation genomes → makespans.

    Subclasses implement :meth:`_evaluate_batch`; the public
    :meth:`evaluate` wrapper adds statistics and timing.  Evaluators are
    context managers — leaving the ``with`` block releases any worker
    processes.
    """

    def __init__(self) -> None:
        self.stats = EvaluationStats()

    # -- public API ----------------------------------------------------
    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        """Makespan of every genome, in input order.

        ``abort_above`` enables the mapper's rejection strategy: genomes
        whose makespan provably reaches the bound come back as ``inf``.
        """
        genomes = list(genomes)
        if not genomes:
            return []
        t0 = time.perf_counter()
        values = self._evaluate_batch(genomes, abort_above)
        self.stats.batches += 1
        self.stats.evaluations += len(genomes)
        self.stats.wall_seconds += time.perf_counter() - t0
        return values

    def __call__(self, genome: np.ndarray) -> float:
        """Single-genome convenience (drop-in for a fitness closure)."""
        return self.evaluate([genome])[0]

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __enter__(self) -> "FitnessEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- subclass hook -------------------------------------------------
    @abstractmethod
    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        """Evaluate one batch; must preserve input order."""


def _kernel_if_matching(
    ptg: "PTG", table: "TimeTable"
) -> ScheduleKernel | None:
    """The table's compiled kernel when it was built for ``ptg``."""
    from ..mapping import kernel_for

    if ptg is table.ptg or ptg == table.ptg:
        return kernel_for(table)
    return None


def _genome_bytes(genome: np.ndarray) -> bytes:
    """Fallback cache key: the genome's canonical int64 byte content."""
    return np.ascontiguousarray(genome, dtype=np.int64).tobytes()


class SerialEvaluator(FitnessEvaluator):
    """In-process evaluation, one mapper call per genome (the default).

    The compiled :class:`~repro.mapping.ScheduleKernel` is built once in
    the constructor and every fitness call runs directly on its
    preallocated buffers, skipping the per-call engine dispatch of
    :func:`repro.mapping.makespan_of` (results are bit-identical).
    """

    def __init__(self, ptg: "PTG", table: "TimeTable") -> None:
        super().__init__()
        self.ptg = ptg
        self.table = table
        self._kernel = _kernel_if_matching(ptg, table)

    def genome_key(self, genome: np.ndarray) -> bytes:
        """Canonical cache key (the kernel's validated int64 buffer)."""
        if self._kernel is not None:
            return self._kernel.genome_key(genome)
        return _genome_bytes(genome)

    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        self.stats.mapper_calls += len(genomes)
        kernel = self._kernel
        if kernel is not None:
            # batch entry: validation and the time-table gather are
            # vectorized across all genomes in one shot
            return kernel.makespan_batch(genomes, abort_above)
        return [
            makespan_of(self.ptg, self.table, g, abort_above=abort_above)
            for g in genomes
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SerialEvaluator(ptg={self.ptg.name!r})"


# -- worker-process plumbing (module level: must be picklable) ---------
# Each worker holds one batch-makespan callable: the compiled kernel's
# batch entry in the common case (the kernel pickles as bare index/time
# arrays — no PTG or TimeTable object graph crosses the process
# boundary), or a reference-engine closure as the fallback.
_WORKER_EVALUATE = None


def _pool_initializer(problem) -> None:
    """Install the shared problem in a worker process (runs once)."""
    global _WORKER_EVALUATE
    if isinstance(problem, ScheduleKernel):
        _WORKER_EVALUATE = problem.makespan_batch
    else:
        ptg, table = problem

        def _reference_batch(
            genome_block: np.ndarray, abort_above: float | None
        ) -> list[float]:
            return [
                makespan_of(ptg, table, g, abort_above=abort_above)
                for g in genome_block
            ]

        _WORKER_EVALUATE = _reference_batch


def _pool_evaluate_chunk(
    genome_block: np.ndarray, abort_above: float | None
) -> list[float]:
    """Evaluate one chunk of genomes inside a worker process.

    ``abort_above`` arrives with every chunk — the dispatcher's current
    rejection bound, not a value frozen at pool start-up.
    """
    return _WORKER_EVALUATE(genome_block, abort_above)


class ProcessPoolEvaluator(FitnessEvaluator):
    """Chunked multi-process evaluation via ``concurrent.futures``.

    Parameters
    ----------
    ptg, table:
        The scheduling problem; serialized **once per worker** through
        the pool initializer, never per batch.
    workers:
        Worker-process count (>= 1).  Values above ``os.cpu_count()``
        are allowed — useful for tests — but add no throughput.
    chunk_size:
        Genomes per submitted task.  Default: batch split into about
        four chunks per worker, so stragglers rebalance.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
        default.
    """

    def __init__(
        self,
        ptg: "PTG",
        table: "TimeTable",
        workers: int,
        chunk_size: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ConfigurationError(
                f"ProcessPoolEvaluator needs workers >= 1, got {workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.ptg = ptg
        self.table = table
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self._kernel = _kernel_if_matching(ptg, table)
        self._executor: ProcessPoolExecutor | None = None

    def genome_key(self, genome: np.ndarray) -> bytes:
        """Canonical cache key (the kernel's validated int64 buffer)."""
        if self._kernel is not None:
            return self._kernel.genome_key(genome)
        return _genome_bytes(genome)

    # -- pool lifecycle ------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context is not None
                else None
            )
            problem = (
                self._kernel
                if self._kernel is not None
                else (self.ptg, self.table)
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_pool_initializer,
                initargs=(problem,),
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- evaluation ----------------------------------------------------
    def _chunks(self, genomes: list[np.ndarray]) -> list[np.ndarray]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(genomes) // (self.workers * 4)))
        block = np.stack(genomes).astype(np.int64, copy=False)
        return [block[i : i + size] for i in range(0, len(block), size)]

    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        executor = self._ensure_executor()
        self.stats.mapper_calls += len(genomes)
        futures = [
            executor.submit(_pool_evaluate_chunk, chunk, abort_above)
            for chunk in self._chunks(genomes)
        ]
        values: list[float] = []
        for future in futures:  # submission order == input order
            values.extend(future.result())
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolEvaluator(ptg={self.ptg.name!r}, "
            f"workers={self.workers})"
        )


class MemoizedEvaluator(FitnessEvaluator):
    """Bounded-LRU genome cache around any :class:`FitnessEvaluator`.

    The key is the raw byte content of the backend kernel's validated
    int64 allocation buffer (``ScheduleKernel.genome_key``), so equal
    genomes share one entry whatever their dtype or layout on arrival;
    backends without a kernel fall back to canonical int64 bytes — the
    identical key for every valid genome.  Exact makespans are cached
    unconditionally; rejected evaluations (``inf`` under
    ``abort_above=b``) are cached together with their bound and only
    reused while still sound (see module docstring).
    """

    def __init__(
        self,
        inner: FitnessEvaluator,
        max_entries: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__()
        if max_entries < 1:
            raise ConfigurationError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        self.inner = inner
        self.max_entries = int(max_entries)
        self._key_fn = getattr(inner, "genome_key", _genome_bytes)
        # key -> (value, bound). bound is None for exact values and the
        # abort_above under which the rejection was observed otherwise.
        self._cache: OrderedDict[bytes, tuple[float, float | None]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._cache)

    def close(self) -> None:
        self.inner.close()

    def _lookup(
        self, key: bytes, abort_above: float | None
    ) -> float | None:
        entry = self._cache.get(key)
        if entry is None:
            return None
        value, bound = entry
        if bound is None:  # exact makespan: valid under any bound
            if abort_above is not None and value >= abort_above:
                # the serial-with-rejection path would have aborted
                self._cache.move_to_end(key)
                return float("inf")
            self._cache.move_to_end(key)
            return value
        # rejection marker: reusable only under an equal-or-tighter bound
        if abort_above is not None and abort_above <= bound:
            self._cache.move_to_end(key)
            return float("inf")
        return None  # laxer bound: must re-evaluate

    def _store(
        self, key: bytes, value: float, abort_above: float | None
    ) -> None:
        bound = abort_above if np.isinf(value) else None
        self._cache[key] = (value, bound)
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        key_fn = self._key_fn
        keys = [key_fn(g) for g in genomes]
        values: list[float | None] = []
        miss_order: list[bytes] = []  # unique misses, first-seen order
        miss_genomes: list[np.ndarray] = []
        pending: set[bytes] = set()
        for key, genome in zip(keys, genomes):
            hit = self._lookup(key, abort_above)
            if hit is not None:
                self.stats.cache_hits += 1
                values.append(hit)
            elif key in pending:
                # duplicate within this batch: evaluated once below
                self.stats.cache_hits += 1
                values.append(None)
            else:
                self.stats.cache_misses += 1
                pending.add(key)
                miss_order.append(key)
                miss_genomes.append(genome)
                values.append(None)
        if miss_genomes:
            fresh = self.inner.evaluate(miss_genomes, abort_above)
            for key, value in zip(miss_order, fresh):
                self._store(key, value, abort_above)
        out: list[float] = []
        for key, value in zip(keys, values):
            if value is None:
                value = self._lookup(key, abort_above)
            out.append(value)
        return out

    @property
    def mapper_calls(self) -> int:
        """Mapper invocations executed by the wrapped backend."""
        return self.inner.stats.mapper_calls

    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        values = super().evaluate(genomes, abort_above)
        # mirror the backend's mapper-call count into our own stats so
        # callers only ever need to read the outermost evaluator
        self.stats.mapper_calls = self.inner.stats.mapper_calls
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoizedEvaluator({self.inner!r}, "
            f"entries={len(self)}/{self.max_entries})"
        )


def create_evaluator(
    ptg: "PTG",
    table: "TimeTable",
    workers: int = 0,
    cache: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    mp_context: str | None = None,
) -> FitnessEvaluator:
    """Build the evaluator stack for one EMTS run.

    ``workers <= 1`` selects the serial backend (a single-worker pool
    would only add IPC overhead); larger values fan out across that many
    worker processes.  ``cache=True`` wraps the backend in the genome
    memoization cache.  ``os.cpu_count()`` is *not* consulted: the
    caller's explicit worker count wins, even above the core count.
    """
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0, got {workers}"
        )
    backend: FitnessEvaluator
    if workers <= 1:
        backend = SerialEvaluator(ptg, table)
    else:
        backend = ProcessPoolEvaluator(
            ptg, table, workers=workers, mp_context=mp_context
        )
    if cache:
        return MemoizedEvaluator(backend, max_entries=cache_size)
    return backend


def recommended_workers() -> int:
    """A sensible worker count for ``--workers auto``: the core count."""
    return os.cpu_count() or 1
