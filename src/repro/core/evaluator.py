"""Pluggable fitness-evaluation engine for the EMTS hot path.

The paper's complexity analysis (Section III-E) identifies fitness
evaluation — one list-scheduler run per offspring — as the cost driver of
the whole algorithm: EMTS spends essentially all of its wall-clock time
inside :func:`repro.mapping.makespan_of`.  This module turns that hot
path into a swappable component:

* :class:`SerialEvaluator` — the historical behavior: one in-process
  mapper call per genome, in submission order (the default backend).
* :class:`ProcessPoolEvaluator` — chunked ``concurrent.futures``
  fan-out of offspring genomes across worker processes.  The immutable
  problem description (PTG + time table) is shipped **once per worker**
  via the pool initializer; per-batch traffic is just a stacked int64
  genome block per chunk.  The rejection bound (``abort_above``) is
  re-sent with *every chunk at dispatch time*, so the paper's rejection
  strategy keeps working under parallelism.
* :class:`MemoizedEvaluator` — a bounded-LRU genome cache that wraps any
  backend.  Duplicate offspring (common under the annealed Eq. 1
  mutation, which mutates ever fewer alleles in late generations) are
  never re-scheduled.

All backends are **exact**: for the same genome they return bit-identical
makespans, so swapping backends never changes the optimization outcome
for a fixed RNG seed.  Fitness is counted in two ways: *evaluations*
(genomes submitted — the paper's ``U * mu * lambda`` quantity) and
*mapper calls* (list-scheduler runs actually executed); the difference is
what the cache saved.

Rejection + memoization soundness
---------------------------------
``makespan_of(..., abort_above=b)`` returns ``inf`` for any genome whose
makespan provably reaches ``b`` — a value that depends on ``b``, not just
the genome.  The cache therefore stores rejections as ``(inf, b)``
markers: a later lookup under a bound ``b' <= b`` may reuse the rejection
(the true makespan is ``>= b >= b'``), while a lookup under a laxer (or
absent) bound re-evaluates.  Finite cached values are exact makespans and
are valid under every bound.

Fault tolerance
---------------
:class:`ProcessPoolEvaluator` treats worker-process failure as a
recoverable event, not a run-ending one.  A chunk whose future raises
(``BrokenProcessPool`` after a killed or crashed worker, an exception
propagated out of the worker function, or a per-chunk wall-clock
timeout turning a hung worker into a failure) is retried with bounded
attempts and exponential backoff, rebuilding the pool between
attempts; once retries are exhausted the chunk is evaluated serially
in-process as a last resort.  Because fitness is a deterministic
function of the genome, re-evaluation is always safe and the recovered
results are bit-identical to a fault-free run.  Only when the serial
fallback itself fails does the evaluator raise
:class:`~repro.exceptions.EvaluationError`, carrying the batch indices
of the genomes in the failing chunk.  Deterministic input errors
(:class:`~repro.exceptions.AllocationError` for invalid genomes) are
never retried — they would fail identically every time.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..exceptions import (
    AllocationError,
    ConfigurationError,
    EvaluationError,
)
from ..mapping import ScheduleKernel, makespan_of
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..util.backoff import exponential_delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..graph import PTG
    from ..timemodels import TimeTable

__all__ = [
    "EvaluationStats",
    "FitnessEvaluator",
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "MemoizedEvaluator",
    "create_evaluator",
]

#: Default capacity of the genome memoization cache.  An EMTS10 run
#: submits ``10 + 10 * 100`` genomes, so the default never evicts in
#: practice while still bounding memory for very long searches.
DEFAULT_CACHE_SIZE = 65_536

#: Default bounded-retry budget for failed worker chunks.
DEFAULT_MAX_RETRIES = 3

#: Default base delay of the exponential retry backoff (seconds); the
#: n-th retry waits ``backoff * 2**(n-1)``.
DEFAULT_RETRY_BACKOFF = 0.05

_log = get_logger("core.evaluator")


@dataclass
class EvaluationStats:
    """Counters accumulated by a :class:`FitnessEvaluator`.

    Attributes
    ----------
    evaluations:
        Genomes submitted for evaluation (logical fitness evaluations;
        one per offspring, cache hits included).
    mapper_calls:
        List-scheduler runs actually executed (``evaluations`` minus the
        work the cache saved).
    cache_hits, cache_misses:
        Memoization-cache outcomes (both zero without a cache).
    evictions:
        Entries dropped from a full memoization cache (0 until the
        genome stream exceeds the cache capacity).
    batches:
        Number of ``evaluate`` calls (one per EA generation, typically).
    wall_seconds:
        Total wall-clock time spent inside ``evaluate``.
    retries:
        Chunk evaluations re-dispatched after a worker failure or
        timeout (0 on a fault-free run).
    pool_rebuilds:
        Worker pools torn down and rebuilt after a failure.
    """

    evaluations: int = 0
    mapper_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    batches: int = 0
    wall_seconds: float = 0.0
    retries: int = 0
    pool_rebuilds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of submitted genomes served from the cache."""
        if self.evaluations == 0:
            return 0.0
        return self.cache_hits / self.evaluations

    def copy(self) -> "EvaluationStats":
        """An independent snapshot of the current counters."""
        return EvaluationStats(
            evaluations=self.evaluations,
            mapper_calls=self.mapper_calls,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            evictions=self.evictions,
            batches=self.batches,
            wall_seconds=self.wall_seconds,
            retries=self.retries,
            pool_rebuilds=self.pool_rebuilds,
        )

    def merge(self, other: "EvaluationStats") -> None:
        """Add ``other``'s counters into this one (pool aggregation)."""
        self.evaluations += other.evaluations
        self.mapper_calls += other.mapper_calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.evictions += other.evictions
        self.batches += other.batches
        self.wall_seconds += other.wall_seconds
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds

    def summary(self) -> str:
        """One-line human-readable digest."""
        text = (
            f"{self.evaluations} evaluations "
            f"({self.mapper_calls} mapper calls, "
            f"{self.cache_hits} cache hits, "
            f"{self.hit_rate:.1%} hit rate) "
            f"in {self.wall_seconds:.3f} s"
        )
        if self.evictions:
            text += f" [{self.evictions} cache evictions]"
        if self.retries or self.pool_rebuilds:
            text += (
                f" [{self.retries} chunk retries, "
                f"{self.pool_rebuilds} pool rebuilds]"
            )
        return text


class FitnessEvaluator(ABC):
    """Batch fitness evaluation: allocation genomes → makespans.

    Subclasses implement :meth:`_evaluate_batch`; the public
    :meth:`evaluate` wrapper adds statistics and timing.  Evaluators are
    context managers — leaving the ``with`` block releases any worker
    processes.
    """

    def __init__(self) -> None:
        self.stats = EvaluationStats()

    # -- public API ----------------------------------------------------
    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        """Makespan of every genome, in input order.

        ``abort_above`` enables the mapper's rejection strategy: genomes
        whose makespan provably reaches the bound come back as ``inf``.
        """
        genomes = list(genomes)
        if not genomes:
            return []
        t0 = time.perf_counter()
        values = self._evaluate_batch(genomes, abort_above)
        self.stats.batches += 1
        self.stats.evaluations += len(genomes)
        self.stats.wall_seconds += time.perf_counter() - t0
        return values

    def evaluate_batch(
        self,
        genome_block: np.ndarray,
        abort_above: float | None = None,
    ) -> list[float]:
        """Makespan of every row of a stacked ``(B, V)`` genome block.

        The population-at-once entry point: the whole block flows to
        the backend as one array — one vectorized validation, one
        native batch call, index slices (not pickled genomes) across
        pool workers.  Results are bit-identical to ``evaluate`` on the
        same genomes in the same order.
        """
        block = np.asarray(genome_block)
        if block.ndim != 2:
            raise AllocationError(
                f"genome block has shape {block.shape}, expected "
                f"(batch, num_tasks)"
            )
        if block.shape[0] == 0:
            return []
        t0 = time.perf_counter()
        values = self._evaluate_block(block, abort_above)
        self.stats.batches += 1
        self.stats.evaluations += block.shape[0]
        self.stats.wall_seconds += time.perf_counter() - t0
        return values

    def __call__(self, genome: np.ndarray) -> float:
        """Single-genome convenience (drop-in for a fitness closure)."""
        return self.evaluate([genome])[0]

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __enter__(self) -> "FitnessEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- subclass hooks ------------------------------------------------
    @abstractmethod
    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        """Evaluate one batch; must preserve input order."""

    def _evaluate_block(
        self,
        block: np.ndarray,
        abort_above: float | None,
    ) -> list[float]:
        """Evaluate one stacked block; must preserve row order.

        Subclasses with a faster whole-block path override this; the
        default unstacks into the per-genome hook.
        """
        return self._evaluate_batch(list(block), abort_above)


def _kernel_if_matching(
    ptg: "PTG", table: "TimeTable"
) -> ScheduleKernel | None:
    """The table's compiled kernel when it was built for ``ptg``."""
    from ..mapping import kernel_for

    if ptg is table.ptg or ptg == table.ptg:
        return kernel_for(table)
    return None


def _genome_bytes(genome: np.ndarray) -> bytes:
    """Fallback cache key: the genome's canonical int64 byte content."""
    return np.ascontiguousarray(genome, dtype=np.int64).tobytes()


def _genome_block_bytes(
    genome_block: np.ndarray,
) -> tuple[np.ndarray, list[bytes]]:
    """Fallback batch keys: one contiguous serialization, sliced per row.

    Mirrors ``ScheduleKernel.genome_block_keys`` for backends without a
    compiled kernel: ``keys[i]`` equals ``_genome_bytes(block[i])``, but
    the block is canonicalized and serialized once instead of B times.
    """
    block = np.ascontiguousarray(genome_block, dtype=np.int64)
    data = block.tobytes()
    step = block.shape[1] * 8
    keys = [data[i * step : (i + 1) * step] for i in range(block.shape[0])]
    return block, keys


class SerialEvaluator(FitnessEvaluator):
    """In-process evaluation, one mapper call per genome (the default).

    The compiled :class:`~repro.mapping.ScheduleKernel` is built once in
    the constructor and every fitness call runs directly on its
    preallocated buffers, skipping the per-call engine dispatch of
    :func:`repro.mapping.makespan_of` (results are bit-identical).
    """

    def __init__(self, ptg: "PTG", table: "TimeTable") -> None:
        super().__init__()
        self.ptg = ptg
        self.table = table
        self._kernel = _kernel_if_matching(ptg, table)

    def genome_key(self, genome: np.ndarray) -> bytes:
        """Canonical cache key (the kernel's validated int64 buffer)."""
        if self._kernel is not None:
            return self._kernel.genome_key(genome)
        return _genome_bytes(genome)

    def genome_block_keys(
        self, genome_block: np.ndarray
    ) -> tuple[np.ndarray, list[bytes]]:
        """Canonical block plus one cache key per row (hashed once)."""
        if self._kernel is not None:
            return self._kernel.genome_block_keys(genome_block)
        return _genome_block_bytes(genome_block)

    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        self.stats.mapper_calls += len(genomes)
        kernel = self._kernel
        if kernel is not None:
            # batch entry: validation and the time-table gather are
            # vectorized across all genomes in one shot
            return kernel.makespan_batch(genomes, abort_above)
        return [
            makespan_of(self.ptg, self.table, g, abort_above=abort_above)
            for g in genomes
        ]

    def _evaluate_block(
        self,
        block: np.ndarray,
        abort_above: float | None,
    ) -> list[float]:
        self.stats.mapper_calls += block.shape[0]
        kernel = self._kernel
        if kernel is not None:
            # population-at-once: one native call scores the whole block
            return kernel.makespan_batch(block, abort_above)
        return [
            makespan_of(self.ptg, self.table, g, abort_above=abort_above)
            for g in block
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SerialEvaluator(ptg={self.ptg.name!r})"


# -- worker-process plumbing (module level: must be picklable) ---------
# Each worker holds one batch-makespan callable: the compiled kernel's
# batch entry in the common case (the kernel pickles as bare index/time
# arrays — no PTG or TimeTable object graph crosses the process
# boundary), or a reference-engine closure as the fallback.
_WORKER_EVALUATE = None
_WORKER_FAULT_HOOK = None
# Worker-local metrics registry (None unless the parent run has metrics
# enabled).  Workers never share state: each accumulates locally and
# ships a drained snapshot back with every chunk result, which the
# dispatching process merges — no cross-process locking anywhere.
_WORKER_METRICS = None


def _pool_initializer(
    problem, fault_hook=None, collect_metrics=False
) -> None:
    """Install the shared problem in a worker process (runs once)."""
    global _WORKER_EVALUATE, _WORKER_FAULT_HOOK, _WORKER_METRICS
    _WORKER_FAULT_HOOK = fault_hook
    _WORKER_METRICS = MetricsRegistry() if collect_metrics else None
    if isinstance(problem, ScheduleKernel):
        _WORKER_EVALUATE = problem.makespan_batch
    else:
        ptg, table = problem

        def _reference_batch(
            genome_block: np.ndarray, abort_above: float | None
        ) -> list[float]:
            return [
                makespan_of(ptg, table, g, abort_above=abort_above)
                for g in genome_block
            ]

        _WORKER_EVALUATE = _reference_batch


def _pool_evaluate_chunk(
    genome_block: np.ndarray, abort_above: float | None
):
    """Evaluate one chunk of genomes inside a worker process.

    ``abort_above`` arrives with every chunk — the dispatcher's current
    rejection bound, not a value frozen at pool start-up.  The fault
    hook (chaos testing only) runs first so injected failures hit
    before any real work.

    Returns the bare makespan list when worker metrics are off (the
    historical wire format) and ``(values, metrics_snapshot)`` when
    on — the snapshot is the worker registry's drained delta since the
    previous chunk, so merging it on the parent never double-counts.
    """
    if _WORKER_FAULT_HOOK is not None:
        _WORKER_FAULT_HOOK(genome_block)
    if _WORKER_METRICS is None:
        return _WORKER_EVALUATE(genome_block, abort_above)
    t0 = time.perf_counter()
    values = _WORKER_EVALUATE(genome_block, abort_above)
    _WORKER_METRICS.counter("worker.chunks").inc()
    _WORKER_METRICS.counter("worker.genomes").inc(len(genome_block))
    _WORKER_METRICS.timer("worker.chunk_seconds").observe(
        time.perf_counter() - t0
    )
    return values, _WORKER_METRICS.drain()


# One attached shared-memory segment per worker process: the dispatcher
# publishes each genome block under a fresh name, so caching the last
# attachment and swapping it on a name change keeps every slice task of
# one batch on a single mmap while bounding the worker's footprint to
# one block.
_WORKER_SHM = None


def _worker_attach_shm(shm_name: str):
    """Attach (or reuse) the published genome block in a worker."""
    global _WORKER_SHM
    if _WORKER_SHM is not None and _WORKER_SHM.name == shm_name:
        return _WORKER_SHM
    from multiprocessing import resource_tracker, shared_memory

    if _WORKER_SHM is not None:
        try:
            _WORKER_SHM.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        _WORKER_SHM = None
    # The dispatching process owns the segment's lifetime.  Before
    # Python 3.13 (`track=False`), merely attaching registers the name
    # with the resource tracker, which then unlinks it when this worker
    # dies (spawn) or floods the shared tracker with stale unregisters
    # (fork) — so suppress shared-memory registration for the attach.
    original_register = resource_tracker.register

    def _register_except_shm(name, rtype):
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = _register_except_shm
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original_register
    _WORKER_SHM = shm
    return shm


def _pool_evaluate_slice(
    shm_name: str,
    shape: tuple[int, int],
    start: int,
    stop: int,
    abort_above: float | None,
):
    """Evaluate rows ``[start, stop)`` of a shared genome block.

    The index-slice wire format: instead of pickling genome arrays into
    every task, the dispatcher publishes the stacked ``(B, V)`` int64
    block once through :mod:`multiprocessing.shared_memory` and each
    task carries only ``(name, shape, start, stop)``.  Fault hook,
    metrics and the returned wire format are exactly those of
    :func:`_pool_evaluate_chunk` on the equivalent rows.
    """
    shm = _worker_attach_shm(shm_name)
    block = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
    return _pool_evaluate_chunk(block[start:stop], abort_above)


class ProcessPoolEvaluator(FitnessEvaluator):
    """Chunked multi-process evaluation via ``concurrent.futures``.

    Parameters
    ----------
    ptg, table:
        The scheduling problem; serialized **once per worker** through
        the pool initializer, never per batch.
    workers:
        Worker-process count (>= 1).  Values above ``os.cpu_count()``
        are allowed — useful for tests — but add no throughput.
    chunk_size:
        Genomes per submitted task.  Default: batch split into about
        four chunks per worker, so stragglers rebalance.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` uses the platform
        default.
    max_retries:
        How many times a failed chunk is re-dispatched (with the pool
        rebuilt and exponential backoff between attempts) before the
        serial in-process fallback takes over.
    retry_backoff:
        Base delay of the exponential backoff; the n-th retry round
        sleeps ``retry_backoff * 2**(n-1)`` seconds.  0 disables the
        sleep (tests).
    chunk_timeout:
        Per-chunk wall-clock limit in seconds; a worker that exceeds it
        is treated as hung and its chunk becomes a retriable failure.
        ``None`` (the default) waits indefinitely.
    fault_hook:
        Chaos-testing injection point: a picklable callable invoked
        with each genome chunk before it is evaluated, both inside
        worker processes and in the serial fallback.  Production code
        leaves this ``None``; see :mod:`repro.testing.chaos`.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  When given, each
        worker process keeps a local registry and returns its drained
        delta with every chunk; the deltas are merged here, at chunk
        completion, so ``worker.*`` metrics aggregate without any
        shared state.  ``None`` (the default) keeps the historical
        wire format and adds no work in the workers.
    """

    def __init__(
        self,
        ptg: "PTG",
        table: "TimeTable",
        workers: int,
        chunk_size: int | None = None,
        mp_context: str | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        chunk_timeout: float | None = None,
        fault_hook: Callable | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ConfigurationError(
                f"ProcessPoolEvaluator needs workers >= 1, got {workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be > 0 seconds, got {chunk_timeout}"
            )
        self.ptg = ptg
        self.table = table
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.chunk_timeout = chunk_timeout
        self.fault_hook = fault_hook
        self.metrics = metrics
        self._kernel = _kernel_if_matching(ptg, table)
        self._executor: ProcessPoolExecutor | None = None

    def genome_key(self, genome: np.ndarray) -> bytes:
        """Canonical cache key (the kernel's validated int64 buffer)."""
        if self._kernel is not None:
            return self._kernel.genome_key(genome)
        return _genome_bytes(genome)

    # -- pool lifecycle ------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context is not None
                else None
            )
            problem = (
                self._kernel
                if self._kernel is not None
                else (self.ptg, self.table)
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_pool_initializer,
                initargs=(
                    problem,
                    self.fault_hook,
                    self.metrics is not None,
                ),
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _discard_executor(self) -> None:
        """Tear down a broken/hung pool without waiting on its workers."""
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # a broken pool may refuse even shutdown
                pass
            self._executor = None
        self.stats.pool_rebuilds += 1

    # -- evaluation ----------------------------------------------------
    def _chunk_size_for(self, n: int) -> int:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n // (self.workers * 4)))
        return size

    def _slices(self, n: int) -> list[tuple[int, int]]:
        size = self._chunk_size_for(n)
        return [(i, min(i + size, n)) for i in range(0, n, size)]

    def _publish_block(self, block: np.ndarray):
        """Copy the block into a fresh shared-memory segment.

        Returns the :class:`~multiprocessing.shared_memory.SharedMemory`
        handle (the caller owns close+unlink), or ``None`` when shared
        memory is unavailable — the dispatcher then falls back to
        pickling row slices into each task.
        """
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=block.nbytes
            )
        except Exception as exc:
            _log.warning(
                "shared-memory publish unavailable (%s); "
                "falling back to pickled chunk dispatch",
                exc,
            )
            return None
        view = np.ndarray(block.shape, dtype=np.int64, buffer=shm.buf)
        view[:] = block
        return shm

    def genome_block_keys(
        self, genome_block: np.ndarray
    ) -> tuple[np.ndarray, list[bytes]]:
        """Canonical block plus one cache key per row (hashed once)."""
        if self._kernel is not None:
            return self._kernel.genome_block_keys(genome_block)
        return _genome_block_bytes(genome_block)

    def _serial_chunk(
        self, chunk: np.ndarray, abort_above: float | None
    ) -> list[float]:
        """Last-resort in-process evaluation of one chunk."""
        if self.fault_hook is not None:
            self.fault_hook(chunk)
        if self._kernel is not None:
            return self._kernel.makespan_batch(chunk, abort_above)
        return [
            makespan_of(self.ptg, self.table, g, abort_above=abort_above)
            for g in chunk
        ]

    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        block = np.stack(genomes).astype(np.int64, copy=False)
        return self._dispatch_block(
            np.ascontiguousarray(block), abort_above
        )

    def _evaluate_block(
        self,
        block: np.ndarray,
        abort_above: float | None,
    ) -> list[float]:
        if self._kernel is not None:
            # validate once here so a malformed block raises the same
            # deterministic AllocationError the serial backend gives,
            # before any worker round-trip
            block = self._kernel.load_block(block)
        else:
            block = np.ascontiguousarray(block, dtype=np.int64)
        return self._dispatch_block(block, abort_above)

    def _dispatch_block(
        self,
        block: np.ndarray,
        abort_above: float | None,
    ) -> list[float]:
        """Fan a canonical int64 block across the pool as index slices.

        The block is published once through shared memory and each task
        carries only its ``[start, stop)`` row range; when shared memory
        is unavailable the same slices ship as pickled sub-blocks.  The
        retry loop, serial fallback and metrics plumbing are identical
        in both modes.
        """
        self.stats.mapper_calls += block.shape[0]
        slices = self._slices(block.shape[0])
        shm = self._publish_block(block)
        try:
            return self._run_slices(block, slices, shm, abort_above)
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def _run_slices(
        self,
        block: np.ndarray,
        slices: list[tuple[int, int]],
        shm,
        abort_above: float | None,
    ) -> list[float]:
        results: list[list[float] | None] = [None] * len(slices)
        pending = list(range(len(slices)))
        attempt = 0
        while pending:
            executor = self._ensure_executor()
            futures = {}
            failed: list[int] = []
            last_error: BaseException | None = None
            try:
                for i in pending:
                    start, stop = slices[i]
                    if shm is not None:
                        futures[i] = executor.submit(
                            _pool_evaluate_slice,
                            shm.name,
                            block.shape,
                            start,
                            stop,
                            abort_above,
                        )
                    else:
                        futures[i] = executor.submit(
                            _pool_evaluate_chunk,
                            block[start:stop],
                            abort_above,
                        )
            except (BrokenExecutor, RuntimeError) as exc:
                # a worker killed while the pool sat idle is only
                # detected asynchronously: the break can surface here,
                # at submission, before any future exists
                last_error = exc
                failed.extend(i for i in pending if i not in futures)
            for i in futures:
                try:
                    outcome = futures[i].result(
                        timeout=self.chunk_timeout
                    )
                    if isinstance(outcome, tuple):
                        # (values, worker-metrics delta) wire format
                        outcome, delta = outcome
                        if self.metrics is not None:
                            self.metrics.merge(delta)
                    results[i] = outcome
                except AllocationError:
                    # deterministic input error: retrying cannot help,
                    # and the serial backend would raise it too
                    raise
                except FutureTimeoutError as exc:
                    last_error = exc
                    failed.append(i)
                except Exception as exc:
                    # BrokenProcessPool (killed/crashed worker) or an
                    # exception escaping the worker function
                    last_error = exc
                    failed.append(i)
            if not failed:
                break
            # every retry round gets a fresh pool: a broken executor
            # never recovers, and after a timeout the old pool may
            # still be wedged behind the hung worker
            self._discard_executor()
            attempt += 1
            if attempt > self.max_retries:
                _log.warning(
                    "%d chunk(s) still failing after %d retries "
                    "(%s); shrinking to serial in-process evaluation",
                    len(failed),
                    self.max_retries,
                    last_error,
                )
                for i in failed:
                    start, stop = slices[i]
                    try:
                        results[i] = self._serial_chunk(
                            block[start:stop], abort_above
                        )
                    except Exception as exc:
                        raise EvaluationError(
                            f"evaluation of genomes "
                            f"{list(range(start, stop))} failed after "
                            f"{self.max_retries} pool retries and the "
                            f"serial fallback: {exc}",
                            genome_indices=range(start, stop),
                        ) from exc
                pending = []
            else:
                self.stats.retries += len(failed)
                _log.warning(
                    "retrying %d failed chunk(s), attempt %d/%d "
                    "(cause: %s)",
                    len(failed),
                    attempt,
                    self.max_retries,
                    last_error,
                )
                if self.retry_backoff > 0:
                    time.sleep(
                        exponential_delay(self.retry_backoff, attempt)
                    )
                pending = failed
        values: list[float] = []
        for chunk_values in results:  # slice order == input order
            values.extend(chunk_values)
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolEvaluator(ptg={self.ptg.name!r}, "
            f"workers={self.workers})"
        )


class MemoizedEvaluator(FitnessEvaluator):
    """Bounded-LRU genome cache around any :class:`FitnessEvaluator`.

    The key is the raw byte content of the backend kernel's validated
    int64 allocation buffer (``ScheduleKernel.genome_key``), so equal
    genomes share one entry whatever their dtype or layout on arrival;
    backends without a kernel fall back to canonical int64 bytes — the
    identical key for every valid genome.  Exact makespans are cached
    unconditionally; rejected evaluations (``inf`` under
    ``abort_above=b``) are cached together with their bound and only
    reused while still sound (see module docstring).
    """

    def __init__(
        self,
        inner: FitnessEvaluator,
        max_entries: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__()
        if max_entries < 1:
            raise ConfigurationError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        self.inner = inner
        self.max_entries = int(max_entries)
        self._key_fn = getattr(inner, "genome_key", _genome_bytes)
        self._block_key_fn = getattr(
            inner, "genome_block_keys", _genome_block_bytes
        )
        # key -> (value, bound). bound is None for exact values and the
        # abort_above under which the rejection was observed otherwise.
        self._cache: OrderedDict[bytes, tuple[float, float | None]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._cache)

    def close(self) -> None:
        self.inner.close()

    def rebind(self, inner: FitnessEvaluator) -> "MemoizedEvaluator":
        """Swap the wrapped backend while keeping the cache contents.

        The scheduling service keeps one :class:`MemoizedEvaluator` per
        problem fingerprint alive across requests; each EMTS run builds
        a fresh backend stack, and ``rebind`` splices the long-lived
        cache around it (via ``EMTS.schedule(evaluator_wrapper=...)``).
        Sound because cached finite values are exact makespans of the
        *problem*, not of any particular backend — every backend is
        bit-identical — and rejection markers keep their recorded
        bounds.  Returns ``self`` so it can be used directly as an
        ``evaluator_wrapper`` callable.
        """
        self.inner = inner
        self._key_fn = getattr(inner, "genome_key", _genome_bytes)
        self._block_key_fn = getattr(
            inner, "genome_block_keys", _genome_block_bytes
        )
        return self

    def _lookup(
        self, key: bytes, abort_above: float | None
    ) -> float | None:
        entry = self._cache.get(key)
        if entry is None:
            return None
        value, bound = entry
        if bound is None:  # exact makespan: valid under any bound
            if abort_above is not None and value >= abort_above:
                # the serial-with-rejection path would have aborted
                self._cache.move_to_end(key)
                return float("inf")
            self._cache.move_to_end(key)
            return value
        # rejection marker: reusable only under an equal-or-tighter bound
        if abort_above is not None and abort_above <= bound:
            self._cache.move_to_end(key)
            return float("inf")
        return None  # laxer bound: must re-evaluate

    def _store(
        self, key: bytes, value: float, abort_above: float | None
    ) -> None:
        if np.isnan(value):
            # a NaN is not a makespan — never let a transient fault
            # (chaos injection, corrupted worker) poison the cache
            return
        bound = abort_above if np.isinf(value) else None
        self._cache[key] = (value, bound)
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    def _evaluate_keyed(
        self,
        keys: list[bytes],
        abort_above: float | None,
        evaluate_misses: Callable[[list[int]], list[float]],
    ) -> list[float]:
        """Shared hit/miss resolution for the list and block paths.

        ``evaluate_misses`` receives the input positions of the unique
        misses (first-seen order) and returns their fresh values.
        """
        values: list[float | None] = []
        miss_order: list[bytes] = []  # unique misses, first-seen order
        miss_rows: list[int] = []
        pending: set[bytes] = set()
        for row, key in enumerate(keys):
            hit = self._lookup(key, abort_above)
            if hit is not None:
                self.stats.cache_hits += 1
                values.append(hit)
            elif key in pending:
                # duplicate within this batch: evaluated once below
                self.stats.cache_hits += 1
                values.append(None)
            else:
                self.stats.cache_misses += 1
                pending.add(key)
                miss_order.append(key)
                miss_rows.append(row)
                values.append(None)
        fresh_by_key: dict[bytes, float] = {}
        if miss_rows:
            fresh = evaluate_misses(miss_rows)
            for key, value in zip(miss_order, fresh):
                fresh_by_key[key] = value
                self._store(key, value, abort_above)
        out: list[float] = []
        for key, value in zip(keys, values):
            if value is None:
                # prefer the cache (it normalizes rejection markers),
                # but fall back to the raw fresh value for results the
                # cache refused to store (NaN)
                hit = self._lookup(key, abort_above)
                value = hit if hit is not None else fresh_by_key[key]
            out.append(value)
        return out

    def _evaluate_batch(
        self,
        genomes: list[np.ndarray],
        abort_above: float | None,
    ) -> list[float]:
        key_fn = self._key_fn
        keys = [key_fn(g) for g in genomes]
        return self._evaluate_keyed(
            keys,
            abort_above,
            lambda rows: self.inner.evaluate(
                [genomes[r] for r in rows], abort_above
            ),
        )

    def _evaluate_block(
        self,
        block: np.ndarray,
        abort_above: float | None,
    ) -> list[float]:
        # one batch validation + one contiguous serialization for the
        # whole block — not a per-genome re-hash of every row
        block, keys = self._block_key_fn(block)
        return self._evaluate_keyed(
            keys,
            abort_above,
            lambda rows: self.inner.evaluate_batch(
                block[np.asarray(rows)], abort_above
            ),
        )

    @property
    def mapper_calls(self) -> int:
        """Mapper invocations executed by the wrapped backend."""
        return self.inner.stats.mapper_calls

    def evaluate(
        self,
        genomes: Sequence[np.ndarray],
        abort_above: float | None = None,
    ) -> list[float]:
        values = super().evaluate(genomes, abort_above)
        self._mirror_inner_stats()
        return values

    def evaluate_batch(
        self,
        genome_block: np.ndarray,
        abort_above: float | None = None,
    ) -> list[float]:
        values = super().evaluate_batch(genome_block, abort_above)
        self._mirror_inner_stats()
        return values

    def _mirror_inner_stats(self) -> None:
        # mirror the backend's mapper-call and fault-recovery counters
        # into our own stats so callers only ever need to read the
        # outermost evaluator
        self.stats.mapper_calls = self.inner.stats.mapper_calls
        self.stats.retries = self.inner.stats.retries
        self.stats.pool_rebuilds = self.inner.stats.pool_rebuilds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoizedEvaluator({self.inner!r}, "
            f"entries={len(self)}/{self.max_entries})"
        )


def create_evaluator(
    ptg: "PTG",
    table: "TimeTable",
    workers: int = 0,
    cache: bool = True,
    cache_size: int = DEFAULT_CACHE_SIZE,
    mp_context: str | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    chunk_timeout: float | None = None,
    fault_hook: Callable | None = None,
    verify: str = "off",
    verify_interval: int | None = None,
    metrics: MetricsRegistry | None = None,
) -> FitnessEvaluator:
    """Build the evaluator stack for one EMTS run.

    ``workers <= 1`` selects the serial backend (a single-worker pool
    would only add IPC overhead); larger values fan out across that many
    worker processes.  ``cache=True`` wraps the backend in the genome
    memoization cache.  ``os.cpu_count()`` is *not* consulted: the
    caller's explicit worker count wins, even above the core count.
    ``max_retries`` / ``retry_backoff`` / ``chunk_timeout`` configure
    the pool backend's crash recovery and ``fault_hook`` its
    chaos-testing injection point; all four are ignored by the serial
    backend.

    ``verify`` stacks a :class:`repro.verify.VerifyingEvaluator` on the
    outside — ``"sample"`` replays one genome per ``verify_interval``
    submissions through every scheduling engine, ``"full"`` replays all
    of them; both scan every batch for NaN.  ``"off"`` adds nothing.

    ``metrics`` enables the pool backend's per-worker metric
    collection (ignored by the serial backend, whose work is already
    visible to the caller's own instrumentation).
    """
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0, got {workers}"
        )
    if verify not in ("off", "sample", "full"):
        raise ConfigurationError(
            f"verify must be 'off', 'sample' or 'full', got {verify!r}"
        )
    backend: FitnessEvaluator
    if workers <= 1:
        backend = SerialEvaluator(ptg, table)
    else:
        backend = ProcessPoolEvaluator(
            ptg,
            table,
            workers=workers,
            mp_context=mp_context,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            chunk_timeout=chunk_timeout,
            fault_hook=fault_hook,
            metrics=metrics,
        )
    evaluator: FitnessEvaluator = backend
    if cache:
        evaluator = MemoizedEvaluator(backend, max_entries=cache_size)
    if verify != "off":
        # imported lazily: repro.verify pulls in the mapping and
        # simulator packages, which in turn import this module
        from ..verify import DEFAULT_SAMPLE_INTERVAL, VerifyingEvaluator

        evaluator = VerifyingEvaluator(
            evaluator,
            ptg,
            table,
            mode=verify,
            sample_interval=(
                DEFAULT_SAMPLE_INTERVAL
                if verify_interval is None
                else verify_interval
            ),
        )
    return evaluator


def recommended_workers() -> int:
    """A sensible worker count for ``--workers auto``: the core count."""
    return os.cpu_count() or 1
