"""EMTS — the paper's primary contribution (Section III).

Public API:

* :class:`EMTS`, :func:`emts5`, :func:`emts10` — the algorithm and the
  paper's two presets;
* :class:`EMTSConfig` — full parameterization;
* :class:`EMTSResult` — schedule + seed baselines + evolution log;
* :class:`AllocationMutation`, :func:`mutation_count`,
  :func:`sample_adjustments`, :func:`adjustment_pmf` — the Eq. 1 mutation
  operator (Figure 3);
* :func:`seed_population` — heuristic-seeded initial populations;
* encoding helpers (:func:`clamp_allocations` etc., Figure 2);
* the fitness-evaluation engine (:class:`FitnessEvaluator` with serial,
  process-pool and memoizing backends, :func:`create_evaluator`);
* resumable run checkpoints (:class:`Checkpoint`,
  :func:`save_checkpoint`, :func:`load_checkpoint`,
  :func:`verify_resumable`).
"""

from .checkpoint import (
    Checkpoint,
    fingerprint_digest,
    load_checkpoint,
    problem_fingerprint,
    save_checkpoint,
    verify_resumable,
)
from .config import EMTSConfig, emts5_config, emts10_config
from .emts import EMTS, EMTSResult, emts5, emts10
from .evaluator import (
    EvaluationStats,
    FitnessEvaluator,
    MemoizedEvaluator,
    ProcessPoolEvaluator,
    SerialEvaluator,
    create_evaluator,
)
from .encoding import (
    clamp_allocations,
    describe_genome,
    random_allocations,
    validate_genome,
)
from .mutation import (
    AllocationMutation,
    adjustment_pmf,
    mutation_count,
    sample_adjustments,
)
from .seeding import SEED_REGISTRY, make_allocator, seed_population

__all__ = [
    "EMTS",
    "EMTSResult",
    "emts5",
    "emts10",
    "EMTSConfig",
    "emts5_config",
    "emts10_config",
    "AllocationMutation",
    "mutation_count",
    "sample_adjustments",
    "adjustment_pmf",
    "clamp_allocations",
    "validate_genome",
    "random_allocations",
    "describe_genome",
    "seed_population",
    "make_allocator",
    "SEED_REGISTRY",
    "EvaluationStats",
    "FitnessEvaluator",
    "SerialEvaluator",
    "ProcessPoolEvaluator",
    "MemoizedEvaluator",
    "create_evaluator",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "problem_fingerprint",
    "fingerprint_digest",
    "verify_resumable",
]
