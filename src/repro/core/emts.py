"""EMTS — Evolutionary Moldable Task Scheduling (paper Section III).

EMTS is a two-step scheduler.  *Allocation* is solved by a (mu + lambda)
evolution strategy over allocation vectors: the initial population is
seeded with the allocation functions of MCPA, HCPA and the Δ-critical
heuristic; offspring are produced by the annealed Eq. 1 mutation; fitness
of an individual is the makespan of the list schedule built from its
allocations.  *Mapping* is the shared bottom-level list scheduler —
since the mapping function also evaluates every individual's fitness, the
fast makespan-only path of :mod:`repro.mapping` is used inside the loop
and the full schedule is reconstructed only once for the winner.

Because the EA only ever consults the precomputed
:class:`~repro.timemodels.TimeTable`, EMTS works unchanged with Amdahl's
law, the synthetic non-monotone model, Downey curves, or measured tables —
the model-independence that is the paper's main point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._rng import ensure_generator
from ..exceptions import ConfigurationError
from ..ea import (
    AnyOf,
    EvolutionLog,
    EvolutionStrategy,
    GenerationLimit,
    TimeBudget,
)
from ..graph import PTG
from ..mapping import Schedule, kernel_for, map_allocations
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, TimeTable
from .config import EMTSConfig, emts5_config, emts10_config
from .evaluator import EvaluationStats, create_evaluator
from .mutation import AllocationMutation
from .seeding import seed_population

__all__ = ["EMTS", "EMTSResult", "emts5", "emts10"]


@dataclass
class EMTSResult:
    """Outcome of one EMTS run.

    Attributes
    ----------
    schedule:
        The full schedule reconstructed from the best allocation vector.
    allocation:
        The winning allocation vector ``s(v)``.
    seed_makespans:
        Makespan of each seed heuristic's own schedule — the baselines
        EMTS starts from (used for the paper's relative-makespan plots).
    log:
        Per-generation statistics of the evolutionary search.
    elapsed_seconds:
        Wall-clock time of the whole EMTS run (seeding + evolution +
        final mapping) — the quantity reported in Section V's runtime
        discussion.
    evaluation_stats:
        Counters of the fitness-evaluation engine: genomes submitted,
        mapper calls actually executed, cache hits and evaluation
        wall-time (see :class:`repro.core.evaluator.EvaluationStats`).
    """

    schedule: Schedule
    allocation: np.ndarray
    seed_makespans: dict[str, float]
    log: EvolutionLog
    elapsed_seconds: float
    config: EMTSConfig = field(repr=False)
    evaluation_stats: EvaluationStats | None = None

    @property
    def makespan(self) -> float:
        """Makespan of the best schedule found."""
        return self.schedule.makespan

    @property
    def evaluations(self) -> int:
        """Total number of fitness (mapping) evaluations."""
        return self.log.total_evaluations

    def improvement_over(self, heuristic: str) -> float:
        """Relative makespan ``T_heuristic / T_EMTS`` (>= 1 when EMTS wins)."""
        try:
            base = self.seed_makespans[heuristic]
        except KeyError:
            known = ", ".join(sorted(self.seed_makespans))
            raise KeyError(
                f"no seed named {heuristic!r}; recorded seeds: {known}"
            ) from None
        return base / self.makespan


class EMTS:
    """The Evolutionary Moldable Task Scheduling algorithm.

    Parameters
    ----------
    config:
        Full parameterization; defaults to the paper's EMTS5 preset.

    Example
    -------
    >>> from repro import EMTS, grelon, SyntheticModel
    >>> from repro.workloads import generate_fft
    >>> result = EMTS().schedule(
    ...     generate_fft(4, rng=7), grelon(), SyntheticModel(), rng=7
    ... )
    >>> result.makespan <= min(result.seed_makespans.values()) + 1e-12
    True
    """

    def __init__(self, config: EMTSConfig | None = None) -> None:
        self.config = config or emts5_config()

    @property
    def name(self) -> str:
        """Configuration name (``emts5``, ``emts10``, ...)."""
        return self.config.name

    # ------------------------------------------------------------------
    def schedule(
        self,
        ptg: PTG,
        cluster: Cluster,
        model: ExecutionTimeModel | TimeTable,
        rng: np.random.Generator | int | None = None,
    ) -> EMTSResult:
        """Schedule ``ptg`` on ``cluster`` under ``model``.

        ``model`` may be an :class:`ExecutionTimeModel` (the table is
        built internally) or an already-built :class:`TimeTable` (reused
        across algorithms in the experiment harness).
        """
        t_start = time.perf_counter()
        cfg = self.config
        rng = ensure_generator(rng, "emts", cfg.name)

        if isinstance(model, TimeTable):
            table = model
            if table.ptg != ptg:
                raise ConfigurationError(
                    f"time table was built for PTG {table.ptg.name!r}, "
                    f"not {ptg.name!r}"
                )
            if table.cluster != cluster:
                raise ConfigurationError(
                    f"time table was built for cluster "
                    f"{table.cluster.name!r}, not {cluster.name!r}"
                )
        else:
            table = TimeTable.build(model, ptg, cluster)

        mutation = AllocationMutation(
            P=table.num_processors,
            fm=cfg.fm,
            sigma_stretch=cfg.sigma_stretch,
            sigma_shrink=cfg.sigma_shrink,
            shrink_probability=cfg.shrink_probability,
        )
        initial, seed_allocs = seed_population(
            ptg,
            table,
            heuristics=cfg.seed_heuristics,
            population_size=cfg.mu,
            mutation=mutation,
            rng=rng,
            delta=cfg.delta,
        )
        # Build the compiled scheduling kernel up front: every fitness
        # call of the run (seeding included) reuses its CSR arrays and
        # preallocated buffers, and the construction cost stays out of
        # the first generation's timing.
        kernel_for(table)
        evaluator = create_evaluator(
            ptg,
            table,
            workers=cfg.workers,
            cache=cfg.fitness_cache,
            cache_size=cfg.fitness_cache_size,
        )

        # Rejection strategy (paper Section VI, future work): abort a
        # candidate's mapping once it provably cannot enter the survivor
        # set.  Under plus selection the cutoff is the *worst current
        # parent*: every parent survives unless displaced by a strictly
        # better offspring, so an offspring whose makespan lower bound
        # already reaches the worst parent's fitness can never be
        # selected (ties go to parents).  Using this bound — rather than
        # the best incumbent — keeps the optimization outcome bit-for-bit
        # identical to the unrejected run.  The bound is re-derived each
        # generation and handed to the evaluator with every dispatched
        # batch, so worker processes always reject against the current
        # survivor set.
        def abort_bound(parents) -> float | None:
            if cfg.use_rejection and cfg.selection == "plus":
                return max(
                    ind.evaluated_fitness() for ind in parents
                )
            return None

        termination = GenerationLimit(cfg.generations)
        if cfg.time_budget_seconds is not None:
            termination = AnyOf(
                termination, TimeBudget(cfg.time_budget_seconds)
            )

        strategy = EvolutionStrategy(
            mu=cfg.mu,
            lam=cfg.lam,
            mutation=mutation,
            selection=cfg.selection,
        )
        try:
            # Seed baselines go through the evaluator too: exact values
            # that double as cache warm-up for the initial population.
            seed_names = list(seed_allocs)
            seed_values = evaluator.evaluate(
                [seed_allocs[name] for name in seed_names]
            )
            seed_makespans = dict(zip(seed_names, seed_values))

            outcome = strategy.evolve(
                initial,
                evaluator,
                rng=rng,
                termination=termination,
                total_generations=cfg.generations,
                abort_bound=abort_bound,
            )
        finally:
            evaluator.close()

        best_alloc = np.asarray(outcome.best.genome, dtype=np.int64)
        schedule = map_allocations(ptg, table, best_alloc)
        elapsed = time.perf_counter() - t_start
        return EMTSResult(
            schedule=schedule,
            allocation=best_alloc,
            seed_makespans=seed_makespans,
            log=outcome.log,
            elapsed_seconds=elapsed,
            config=cfg,
            evaluation_stats=evaluator.stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"EMTS(({c.mu}+{c.lam})-EA, U={c.generations}, "
            f"seeds={list(c.seed_heuristics)})"
        )


def emts5(**overrides) -> EMTS:
    """The paper's EMTS5: (5 + 25)-EA, 5 generations."""
    return EMTS(emts5_config().with_updates(**overrides))


def emts10(**overrides) -> EMTS:
    """The paper's EMTS10: (10 + 100)-EA, 10 generations."""
    return EMTS(emts10_config().with_updates(**overrides))
