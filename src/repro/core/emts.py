"""EMTS — Evolutionary Moldable Task Scheduling (paper Section III).

EMTS is a two-step scheduler.  *Allocation* is solved by a (mu + lambda)
evolution strategy over allocation vectors: the initial population is
seeded with the allocation functions of MCPA, HCPA and the Δ-critical
heuristic; offspring are produced by the annealed Eq. 1 mutation; fitness
of an individual is the makespan of the list schedule built from its
allocations.  *Mapping* is the shared bottom-level list scheduler —
since the mapping function also evaluates every individual's fitness, the
fast makespan-only path of :mod:`repro.mapping` is used inside the loop
and the full schedule is reconstructed only once for the winner.

Because the EA only ever consults the precomputed
:class:`~repro.timemodels.TimeTable`, EMTS works unchanged with Amdahl's
law, the synthetic non-monotone model, Downey curves, or measured tables —
the model-independence that is the paper's main point.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .._rng import ensure_generator, spawn_children
from ..exceptions import CheckpointError, ConfigurationError
from ..ea import (
    AnyOf,
    Deadline,
    EvolutionLog,
    EvolutionStrategy,
    GenerationLimit,
    StopFlag,
    TimeBudget,
)
from ..graph import PTG
from ..mapping import Schedule, kernel_for, map_allocations
from ..obs.instrument import ObservedEvaluator, run_metrics
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.profiler import NULL_PROFILER, PhaseProfiler
from ..obs.trace import Tracer
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, TimeTable
from .checkpoint import (
    Checkpoint,
    load_checkpoint,
    problem_fingerprint,
    save_checkpoint,
    verify_resumable,
)
from .config import EMTSConfig, emts5_config, emts10_config
from .evaluator import EvaluationStats, create_evaluator
from .islands import IslandStrategy
from .mutation import AllocationMutation
from .seeding import seed_population

__all__ = ["EMTS", "EMTSResult", "emts5", "emts10"]

_log = get_logger("core.emts")


@dataclass
class EMTSResult:
    """Outcome of one EMTS run.

    Attributes
    ----------
    schedule:
        The full schedule reconstructed from the best allocation vector.
    allocation:
        The winning allocation vector ``s(v)``.
    seed_makespans:
        Makespan of each seed heuristic's own schedule — the baselines
        EMTS starts from (used for the paper's relative-makespan plots).
    log:
        Per-generation statistics of the evolutionary search.
    elapsed_seconds:
        Wall-clock time of the whole EMTS run (seeding + evolution +
        final mapping) — the quantity reported in Section V's runtime
        discussion.
    evaluation_stats:
        Counters of the fitness-evaluation engine: genomes submitted,
        mapper calls actually executed, cache hits and evaluation
        wall-time (see :class:`repro.core.evaluator.EvaluationStats`).
    interrupted:
        True when the run ended early at a generation boundary because
        a deadline (``max_wall_time``) expired or a stop signal/event
        fired; the result then holds the best-so-far schedule and — if
        a checkpoint path was given — the run is resumable.
    """

    schedule: Schedule
    allocation: np.ndarray
    seed_makespans: dict[str, float]
    log: EvolutionLog
    elapsed_seconds: float
    config: EMTSConfig = field(repr=False)
    evaluation_stats: EvaluationStats | None = None
    interrupted: bool = False

    @property
    def makespan(self) -> float:
        """Makespan of the best schedule found."""
        return self.schedule.makespan

    @property
    def evaluations(self) -> int:
        """Total number of fitness (mapping) evaluations."""
        return self.log.total_evaluations

    def improvement_over(self, heuristic: str) -> float:
        """Relative makespan ``T_heuristic / T_EMTS`` (>= 1 when EMTS wins)."""
        try:
            base = self.seed_makespans[heuristic]
        except KeyError:
            known = ", ".join(sorted(self.seed_makespans))
            raise KeyError(
                f"no seed named {heuristic!r}; recorded seeds: {known}"
            ) from None
        return base / self.makespan


def _find_verifier(evaluator):
    """The VerifyingEvaluator in a wrapped evaluator stack, if any."""
    obj = evaluator
    while obj is not None:
        if hasattr(obj, "verified") and hasattr(obj, "divergences"):
            return obj
        obj = getattr(obj, "inner", None)
    return None


class EMTS:
    """The Evolutionary Moldable Task Scheduling algorithm.

    Parameters
    ----------
    config:
        Full parameterization; defaults to the paper's EMTS5 preset.

    Example
    -------
    >>> from repro import EMTS, grelon, SyntheticModel
    >>> from repro.workloads import generate_fft
    >>> result = EMTS().schedule(
    ...     generate_fft(4, rng=7), grelon(), SyntheticModel(), rng=7
    ... )
    >>> result.makespan <= min(result.seed_makespans.values()) + 1e-12
    True
    """

    def __init__(self, config: EMTSConfig | None = None) -> None:
        self.config = config or emts5_config()

    @property
    def name(self) -> str:
        """Configuration name (``emts5``, ``emts10``, ...)."""
        return self.config.name

    # ------------------------------------------------------------------
    def schedule(
        self,
        ptg: PTG,
        cluster: Cluster,
        model: ExecutionTimeModel | TimeTable,
        rng: np.random.Generator | int | None = None,
        *,
        checkpoint_path: str | Path | None = None,
        resume_from: str | Path | None = None,
        max_wall_time: float | None = None,
        stop_event: threading.Event | None = None,
        handle_signals: bool = False,
        evaluator_wrapper=None,
        trace: str | Path | Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        warm_start: np.ndarray | None = None,
    ) -> EMTSResult:
        """Schedule ``ptg`` on ``cluster`` under ``model``.

        ``model`` may be an :class:`ExecutionTimeModel` (the table is
        built internally) or an already-built :class:`TimeTable` (reused
        across algorithms in the experiment harness).

        Resilience parameters (all keyword-only, all optional)
        -----------------------------------------------------
        checkpoint_path:
            Journal a resumable :class:`~repro.core.checkpoint.Checkpoint`
            to this file after every completed generation (atomic
            write).  Costs one JSON dump per generation; ``None`` (the
            default) keeps the historical zero-overhead behavior.
        resume_from:
            Continue a checkpointed run: population, evolution log, RNG
            stream and evaluation counters are restored and the search
            proceeds from the next generation.  The checkpoint must
            match this run's semantic configuration and problem
            fingerprint (:func:`~repro.core.checkpoint.verify_resumable`).
            The resumed run reaches the same final makespan as an
            uninterrupted one.
        max_wall_time:
            Hard wall-clock budget in seconds for the whole run,
            counted from ``schedule()`` entry and, on resume, including
            the time already spent by previous segments.  When it
            expires the run stops at the next generation boundary and
            returns the best-so-far result with ``interrupted=True``.
        stop_event:
            External ``threading.Event``; setting it ends the run
            gracefully at the next generation boundary.
        handle_signals:
            Install SIGINT/SIGTERM handlers (main thread only) that set
            the stop event, turning Ctrl-C into a graceful shutdown
            with a final checkpoint instead of a lost run.  Previous
            handlers are restored before returning.
        evaluator_wrapper:
            Callable applied to the freshly built fitness evaluator
            (e.g. :class:`repro.testing.chaos.ChaosEvaluator` for fault
            injection); must return an object with the same interface.
        warm_start:
            Optional incumbent allocation vector injected as the first
            individual of the initial population (origin
            ``"seed:warm-start"``, reported in ``seed_makespans``).
            Used by the online rescheduler to seed the search with the
            currently executing schedule; under plus selection the
            result can never be worse than the incumbent.  Ignored when
            resuming from a checkpoint (the checkpointed population
            already embodies it).

        Observability parameters (keyword-only, off by default)
        ------------------------------------------------------
        trace:
            Write a structured JSONL run trace to this path (or into an
            already-open :class:`repro.obs.Tracer`, shared with e.g. a
            campaign): ``run_start`` / ``seed`` / per-``generation`` /
            ``checkpoint`` / ``verify`` / ``run_end`` events plus one
            ``evaluation`` event per fitness batch.  For a fixed seed
            the trace is bit-identical across runs after
            :func:`repro.obs.strip_timestamps`.
        metrics:
            A :class:`repro.obs.MetricsRegistry` to fill with the run's
            canonical ``emts.*`` counters/timers, live ``evaluation.*``
            batch metrics, and — under the process-pool backend —
            per-worker ``worker.*`` metrics merged at chunk boundaries.

        Both default to ``None``; the disabled path builds no wrapper
        and no profiler, keeping the historical zero-overhead hot path.
        """
        t_start = time.perf_counter()
        cfg = self.config
        rng = ensure_generator(rng, "emts", cfg.name)
        if max_wall_time is not None and max_wall_time <= 0:
            raise ConfigurationError(
                f"max_wall_time must be > 0 seconds, got {max_wall_time}"
            )

        tracer: Tracer | None
        owns_tracer = False
        if trace is None:
            tracer = None
        elif isinstance(trace, Tracer):
            tracer = trace
        else:
            tracer = Tracer(trace)
            owns_tracer = True
        observing = tracer is not None or metrics is not None
        profiler = PhaseProfiler() if observing else NULL_PROFILER

        # Install signal handlers before any heavy work — seeding a
        # large problem can take seconds, and an early Ctrl-C should
        # degrade to a graceful stop at the first generation boundary,
        # not a KeyboardInterrupt traceback.
        if handle_signals and stop_event is None:
            stop_event = threading.Event()
        previous_handlers: dict = {}
        if handle_signals:

            def _request_stop(signum, frame):
                _log.warning(
                    "received signal %d; stopping at the next "
                    "generation boundary",
                    signum,
                )
                stop_event.set()

            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[sig] = signal.signal(
                        sig, _request_stop
                    )
                except ValueError:
                    # not the main thread: signals cannot be routed
                    # here, the stop_event remains usable directly
                    break
        evaluator = None
        try:
            if isinstance(model, TimeTable):
                table = model
                if table.ptg != ptg:
                    raise ConfigurationError(
                        f"time table was built for PTG {table.ptg.name!r}, "
                        f"not {ptg.name!r}"
                    )
                if table.cluster != cluster:
                    raise ConfigurationError(
                        f"time table was built for cluster "
                        f"{table.cluster.name!r}, not {cluster.name!r}"
                    )
            else:
                table = TimeTable.build(model, ptg, cluster)

            mutation = AllocationMutation(
                P=table.num_processors,
                fm=cfg.fm,
                sigma_stretch=cfg.sigma_stretch,
                sigma_shrink=cfg.sigma_shrink,
                shrink_probability=cfg.shrink_probability,
            )

            if tracer is not None:
                # the engine is only known once the kernel is built, a
                # few lines down — run_end records it
                tracer.begin(
                    "run_start",
                    attrs={
                        "algorithm": cfg.name,
                        "problem": problem_fingerprint(ptg, table),
                        "workers": cfg.workers,
                        "resumed": resume_from is not None,
                    },
                )
            # Build the compiled scheduling kernel up front: every fitness
            # call of the run (seeding included) reuses its CSR arrays and
            # preallocated buffers, and the construction cost stays out of
            # the first generation's timing.
            with profiler.phase("kernel_build"):
                kernel = kernel_for(table)

            checkpoint: Checkpoint | None = None
            prior_elapsed = 0.0
            prior_eval_stats: EvaluationStats | None = None
            island_rngs: list[np.random.Generator] | None = None
            if resume_from is not None:
                checkpoint = load_checkpoint(resume_from)
                verify_resumable(checkpoint, cfg, ptg, table)
                prior_elapsed = checkpoint.elapsed_seconds
                prior_eval_stats = checkpoint.restore_eval_stats()
                initial = checkpoint.restore_population()
                checkpoint.restore_rng(rng)
                if cfg.islands:
                    island_rngs = checkpoint.restore_island_rngs()
                    if island_rngs is None:
                        raise CheckpointError(
                            "checkpoint holds no island RNG streams; "
                            "it was not written by an island-mode run"
                        )
                _log.info(
                    "resuming %s from %s at generation %d",
                    cfg.name,
                    resume_from,
                    checkpoint.generation,
                )
            else:
                with profiler.phase("seeding"):
                    initial, seed_allocs = seed_population(
                        ptg,
                        table,
                        heuristics=cfg.seed_heuristics,
                        population_size=cfg.mu,
                        mutation=mutation,
                        rng=rng,
                        delta=cfg.delta,
                        incumbent=warm_start,
                    )
                if cfg.islands:
                    # one mutation stream per logical island, derived
                    # from the master generator at a fixed point (right
                    # after seeding) so the decomposition is a pure
                    # function of the seed
                    island_rngs = spawn_children(rng, cfg.mu)
            evaluator = create_evaluator(
                ptg,
                table,
                workers=cfg.workers,
                cache=cfg.fitness_cache,
                cache_size=cfg.fitness_cache_size,
                max_retries=cfg.eval_max_retries,
                retry_backoff=cfg.eval_retry_backoff,
                chunk_timeout=cfg.eval_timeout,
                verify=cfg.verify,
                metrics=metrics,
            )
            if evaluator_wrapper is not None:
                evaluator = evaluator_wrapper(evaluator)
            if observing:
                # Outermost wrapper: the recorded batch durations cover
                # the whole evaluator stack.  Only built when tracing or
                # metrics are requested, so the disabled path carries no
                # wrapper at all.
                evaluator = ObservedEvaluator(
                    evaluator,
                    tracer=tracer,
                    metrics=metrics,
                    profiler=profiler,
                )

            # Rejection strategy (paper Section VI, future work): abort a
            # candidate's mapping once it provably cannot enter the survivor
            # set.  Under plus selection the cutoff is the *worst current
            # parent*: every parent survives unless displaced by a strictly
            # better offspring, so an offspring whose makespan lower bound
            # already reaches the worst parent's fitness can never be
            # selected (ties go to parents).  Using this bound — rather than
            # the best incumbent — keeps the optimization outcome bit-for-bit
            # identical to the unrejected run.  The bound is re-derived each
            # generation and handed to the evaluator with every dispatched
            # batch, so worker processes always reject against the current
            # survivor set.
            def abort_bound(parents) -> float | None:
                if cfg.use_rejection and cfg.selection == "plus":
                    return max(
                        ind.evaluated_fitness() for ind in parents
                    )
                return None

            criteria: list = [GenerationLimit(cfg.generations)]
            if cfg.time_budget_seconds is not None:
                criteria.append(TimeBudget(cfg.time_budget_seconds))
            deadline: Deadline | None = None
            if max_wall_time is not None:
                # anchor at run start; time already spent by previous
                # segments of a resumed run counts against the budget
                deadline = Deadline(t_start + max_wall_time - prior_elapsed)
                criteria.append(deadline)
            if stop_event is not None:
                criteria.append(StopFlag(stop_event))
            termination = (
                criteria[0] if len(criteria) == 1 else AnyOf(*criteria)
            )

            def combined_stats() -> EvaluationStats:
                stats = evaluator.stats
                if prior_eval_stats is None:
                    return stats
                total = prior_eval_stats.copy()
                total.merge(stats)
                return total

            def journal(population, generation, log, completed=False):
                if checkpoint_path is None:
                    return
                with profiler.phase("checkpoint"):
                    save_checkpoint(
                        Checkpoint.capture(
                            cfg,
                            ptg,
                            table,
                            generation,
                            rng,
                            population,
                            log,
                            seed_makespans,
                            eval_stats=combined_stats(),
                            elapsed_seconds=prior_elapsed
                            + (time.perf_counter() - t_start),
                            completed=completed,
                            island_rngs=island_rngs,
                        ),
                        checkpoint_path,
                    )
                if tracer is not None:
                    tracer.event(
                        "checkpoint",
                        attrs={
                            "generation": int(generation),
                            "completed": bool(completed),
                        },
                    )

            def on_generation_end(population, generation, log):
                if tracer is not None:
                    tracer.event(
                        "generation",
                        attrs=log.entries[-1].trace_attrs(),
                    )
                journal(population, generation, log)

            if cfg.islands:
                strategy = IslandStrategy(
                    mu=cfg.mu,
                    lam=cfg.lam,
                    mutation=mutation,
                    migration_interval=cfg.migration_interval,
                    shards=cfg.islands,
                )
            else:
                strategy = EvolutionStrategy(
                    mu=cfg.mu,
                    lam=cfg.lam,
                    mutation=mutation,
                    selection=cfg.selection,
                )
            if checkpoint is not None:
                seed_makespans = dict(checkpoint.seed_makespans)
                resume_log = checkpoint.restore_log()
                start_generation = checkpoint.generation
            else:
                # Seed baselines go through the evaluator too: exact
                # values that double as cache warm-up for the initial
                # population.
                seed_names = list(seed_allocs)
                if isinstance(evaluator, ObservedEvaluator):
                    with evaluator.phase_as("seed_fitness"):
                        seed_values = evaluator.evaluate(
                            [seed_allocs[n] for n in seed_names]
                        )
                else:
                    seed_values = evaluator.evaluate(
                        [seed_allocs[name] for name in seed_names]
                    )
                seed_makespans = dict(zip(seed_names, seed_values))
                resume_log = None
                start_generation = 0
            if tracer is not None:
                tracer.event(
                    "seed",
                    attrs={
                        "heuristics": sorted(seed_makespans),
                        "makespans": seed_makespans,
                    },
                )

            generation_hook = (
                on_generation_end
                if (checkpoint_path is not None or tracer is not None)
                else None
            )
            if cfg.islands:
                outcome = strategy.evolve(
                    initial,
                    evaluator,
                    island_rngs=island_rngs,
                    termination=termination,
                    total_generations=cfg.generations,
                    abort_bound=abort_bound,
                    on_generation_end=generation_hook,
                    resume_log=resume_log,
                    start_generation=start_generation,
                    profiler=profiler,
                )
            else:
                outcome = strategy.evolve(
                    initial,
                    evaluator,
                    rng=rng,
                    termination=termination,
                    total_generations=cfg.generations,
                    abort_bound=abort_bound,
                    on_generation_end=generation_hook,
                    resume_log=resume_log,
                    start_generation=start_generation,
                    profiler=profiler,
                )
        except BaseException:
            # an escaping error leaves the trace as a valid prefix of
            # complete lines (no run_end — report-trace flags the run
            # as incomplete); close our own file handle on the way out
            if owns_tracer:
                tracer.close()
            raise
        finally:
            if evaluator is not None:
                evaluator.close()
            for sig, handler in previous_handlers.items():
                signal.signal(sig, handler)

        completed = outcome.log.generations - 1 >= cfg.generations
        interrupted = not completed and (
            (stop_event is not None and stop_event.is_set())
            or (deadline is not None and deadline.expired())
        )
        if checkpoint_path is not None:
            # final checkpoint: archives a completed run, or records the
            # stop point of an interrupted one (same content the last
            # per-generation journal wrote, plus the final elapsed time)
            journal(
                outcome.population,
                outcome.log.generations - 1,
                outcome.log,
                completed=completed,
            )

        best_alloc = np.asarray(outcome.best.genome, dtype=np.int64)
        with profiler.phase("final_mapping"):
            schedule = map_allocations(ptg, table, best_alloc)
        elapsed = prior_elapsed + (time.perf_counter() - t_start)
        result = EMTSResult(
            schedule=schedule,
            allocation=best_alloc,
            seed_makespans=seed_makespans,
            log=outcome.log,
            elapsed_seconds=elapsed,
            config=cfg,
            evaluation_stats=combined_stats(),
            interrupted=interrupted,
        )
        verifier = _find_verifier(evaluator)
        if verifier is not None and profiler.enabled:
            profiler.add("verify", verifier.verify_seconds)
        if metrics is not None:
            run_metrics(result, registry=metrics)
        if tracer is not None:
            if verifier is not None:
                tracer.event(
                    "verify",
                    attrs={
                        "verified": verifier.verified,
                        "divergences": verifier.divergences,
                        "overhead_seconds": verifier.verify_seconds,
                    },
                )
            tracer.end(
                "run_end",
                attrs={
                    "makespan": float(result.makespan),
                    "engine": kernel.engine,
                    "generations": outcome.log.generations - 1,
                    "interrupted": interrupted,
                    "eval_stats": asdict(result.evaluation_stats),
                    "phase_seconds": dict(profiler.summary()),
                },
            )
            if owns_tracer:
                tracer.close()
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"EMTS(({c.mu}+{c.lam})-EA, U={c.generations}, "
            f"seeds={list(c.seed_heuristics)})"
        )


def emts5(**overrides) -> EMTS:
    """The paper's EMTS5: (5 + 25)-EA, 5 generations."""
    return EMTS(emts5_config().with_updates(**overrides))


def emts10(**overrides) -> EMTS:
    """The paper's EMTS10: (10 + 100)-EA, 10 generations."""
    return EMTS(emts10_config().with_updates(**overrides))
