"""Starting solutions for the evolutionary search (paper Section III-B).

EMTS does not start from random allocations: it executes the allocation
functions of MCPA and HCPA and encodes their results as individuals of
the initial population, plus the Δ-critical layered allocation designed
in the paper.  Seeding with heuristic solutions "significantly reduces
the time to find efficient schedules" (paper conclusions); the seeding
ablation benchmark quantifies exactly that.

When the configuration needs more parents than there are seed heuristics
(EMTS10 keeps mu = 10 parents but has 3 seeds), the population is filled
with mutated copies of the seeds, cycling through them.
"""

from __future__ import annotations

import numpy as np

from ..allocation import (
    AllocationHeuristic,
    BicpaAllocator,
    CpaAllocator,
    CprAllocator,
    DeltaCriticalAllocator,
    GreedyBestAllocator,
    HcpaAllocator,
    Mcpa2Allocator,
    McpaAllocator,
    SerialAllocator,
)
from ..ea import Individual
from ..exceptions import ConfigurationError
from ..graph import PTG
from ..timemodels import TimeTable
from .encoding import random_allocations
from .mutation import AllocationMutation

__all__ = ["make_allocator", "seed_population", "SEED_REGISTRY"]

SEED_REGISTRY = {
    "serial": SerialAllocator,
    "greedy-best": GreedyBestAllocator,
    "cpa": CpaAllocator,
    "cpr": CprAllocator,
    "bicpa": BicpaAllocator,
    "hcpa": HcpaAllocator,
    "mcpa": McpaAllocator,
    "mcpa2": Mcpa2Allocator,
    "delta-critical": DeltaCriticalAllocator,
}


def make_allocator(name: str, delta: float = 0.9) -> AllocationHeuristic:
    """Instantiate a seed allocator by registry name."""
    try:
        cls = SEED_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SEED_REGISTRY))
        raise ConfigurationError(
            f"unknown seed heuristic {name!r}; known: {known}"
        ) from None
    if cls is DeltaCriticalAllocator:
        return cls(delta=delta)
    return cls()


def seed_population(
    ptg: PTG,
    table: TimeTable,
    heuristics: tuple[str, ...],
    population_size: int,
    mutation: AllocationMutation,
    rng: np.random.Generator,
    delta: float = 0.9,
    random_seeds: bool = False,
    incumbent: np.ndarray | None = None,
) -> tuple[list[Individual], dict[str, np.ndarray]]:
    """Build the initial population.

    Parameters
    ----------
    heuristics:
        Seed allocator names (see :data:`SEED_REGISTRY`).
    population_size:
        Desired number of initial individuals (>= len(heuristics));
        surplus slots hold mutated copies of the seeds.
    mutation:
        Operator used to derive the filler individuals (applied as if in
        generation 0, i.e. at the full ``f_m * V`` mutation width).
    random_seeds:
        Replace the heuristic seeds with uniform random allocations while
        keeping the same population size — the "no seeding" ablation.
    incumbent:
        Optional warm-start allocation vector inserted as the *first*
        individual (origin ``"seed:warm-start"``), ahead of the
        heuristic seeds.  The online rescheduler uses this to seed the
        search with the currently executing schedule, so under plus
        selection the evolved result can never be worse than the plan
        it replaces.

    Returns
    -------
    (individuals, seed_allocations):
        The initial population, plus the raw allocation vector of each
        heuristic keyed by name (for reporting seed makespans).
    """
    if population_size < 1:
        raise ConfigurationError(
            f"population size must be >= 1, got {population_size}"
        )
    V = ptg.num_tasks
    P = table.num_processors

    seed_allocs: dict[str, np.ndarray] = {}
    individuals: list[Individual] = []
    if random_seeds:
        for i in range(population_size):
            individuals.append(
                Individual(
                    genome=random_allocations(V, P, rng),
                    origin=f"seed:random-{i}",
                )
            )
        return individuals, seed_allocs

    if incumbent is not None:
        incumbent = np.asarray(incumbent, dtype=np.int64)
        if incumbent.shape != (V,):
            raise ConfigurationError(
                f"warm-start allocation has shape {incumbent.shape}, "
                f"expected ({V},)"
            )
        incumbent = np.clip(incumbent, 1, P)
        seed_allocs["warm-start"] = incumbent
        individuals.append(
            Individual(genome=incumbent, origin="seed:warm-start")
        )

    for name in heuristics:
        allocator = make_allocator(name, delta=delta)
        alloc = allocator.allocate(ptg, table)
        seed_allocs[name] = alloc
        individuals.append(
            Individual(genome=alloc, origin=f"seed:{name}")
        )
    if not individuals:
        raise ConfigurationError(
            "seed_population needs at least one heuristic or a "
            "warm-start incumbent"
        )

    # fill remaining slots with perturbed copies of the seeds, cycling
    num_seeds = len(individuals)
    i = 0
    while len(individuals) < population_size:
        base = individuals[i % num_seeds]
        genome = mutation.mutate(base.genome, rng, 0, 1)
        individuals.append(
            Individual(genome=genome, origin=f"{base.origin}+mutated")
        )
        i += 1
    return individuals[:population_size], seed_allocs
