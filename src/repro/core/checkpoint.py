"""Versioned run checkpoints for resumable EMTS searches.

EMTS is a long-running (mu + lambda) search — Section V of the paper
reports minutes-scale optimization times on Grelon-size instances — and
a production deployment cannot afford to lose a whole run to a worker
crash, an operator interrupt, or a wall-clock deadline.  This module
journals everything the evolutionary loop needs to continue *bit
identically* after a restart:

* the surviving population (genomes, fitness values, provenance),
* the full evolution log (so generation accounting and termination
  criteria see the same history),
* the RNG bit-generator state at the generation boundary (parent
  choice and mutation draws resume mid-stream),
* the heuristic seed makespans and the evaluation-engine counters,
* a fingerprint of the problem (PTG + platform + dense time table) and
  of the result-affecting configuration fields, so a checkpoint can
  never be silently resumed against a different instance.

Checkpoints are single JSON documents written atomically (temp file +
``os.replace``), so a crash mid-write can never corrupt the previous
checkpoint.  All load/validation failures raise
:class:`~repro.exceptions.CheckpointError` with file-path context.

The resumption contract is exact: because fitness evaluation is
deterministic and the mutation/selection stream is a pure function of
the restored RNG state, an interrupted run resumed from its checkpoint
reaches the same final makespan as an uninterrupted run with the same
seed (pinned by ``tests/test_core_checkpoint.py``).
"""

from __future__ import annotations

import copy
import json
import hashlib
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..ea import EvolutionLog, GenerationStats, Individual
from ..util.crash import crash_point
from ..exceptions import CheckpointError
from .evaluator import EvaluationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from ..graph import PTG
    from ..timemodels import TimeTable
    from .config import EMTSConfig

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "SEMANTIC_CONFIG_DEFAULTS",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "problem_fingerprint",
    "fingerprint_digest",
    "verify_resumable",
]

CHECKPOINT_FORMAT = "repro-emts-checkpoint"
CHECKPOINT_VERSION = 1

#: Configuration fields that change the optimization outcome.  Engine
#: knobs (worker count, cache sizes, retry policy) are deliberately
#: excluded: all evaluation backends are bit-identical, so a run may be
#: resumed under a different execution configuration.
SEMANTIC_CONFIG_FIELDS = (
    "name",
    "mu",
    "lam",
    "generations",
    "fm",
    "sigma_stretch",
    "sigma_shrink",
    "shrink_probability",
    "delta",
    "seed_heuristics",
    "selection",
    "use_rejection",
    "island_mode",
    "migration_interval",
)

#: Values assumed for semantic fields absent from older checkpoints, so
#: documents written before a field existed stay resumable as long as
#: the run uses the historical behavior.  ``island_mode`` is derived
#: (``bool(islands)``) rather than the shard count itself: the shard
#: count is a pure execution knob and must not pin the checkpoint.
SEMANTIC_CONFIG_DEFAULTS = {
    "island_mode": False,
    "migration_interval": 1,
}


def _jsonable(value: Any) -> Any:
    """Normalize tuples to lists so saved/loaded configs compare equal."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def problem_fingerprint(ptg: "PTG", table: "TimeTable") -> dict[str, Any]:
    """Identity of one scheduling problem, safe to compare across runs.

    The digest covers the dense ``(V, P)`` time matrix, which already
    folds together the PTG's task works, the platform size/speed and the
    execution-time model — any change to any of them changes the digest.
    """
    array = np.ascontiguousarray(table.array, dtype=np.float64)
    return {
        "ptg_name": ptg.name,
        "num_tasks": int(ptg.num_tasks),
        "num_edges": int(ptg.num_edges),
        "cluster_name": table.cluster.name,
        "num_processors": int(table.num_processors),
        "table_sha256": hashlib.sha256(array.tobytes()).hexdigest(),
    }


def fingerprint_digest(fingerprint: dict[str, Any]) -> str:
    """Collapse a :func:`problem_fingerprint` (or any JSON-serializable
    identity document) into one stable hex digest.

    The scheduling service keys its warm problem caches and its
    cross-request result memoization on this digest; stability across
    processes is guaranteed by hashing the canonical (sorted-key,
    compact) JSON rendering.
    """
    canonical = json.dumps(
        fingerprint, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _semantic_config(config: "EMTSConfig") -> dict[str, Any]:
    full = asdict(config)
    full["island_mode"] = bool(full.get("islands", 0))
    if not full["island_mode"]:
        # migration only exists in island mode; normalize so classic
        # runs with different (unused) intervals stay interchangeable
        full["migration_interval"] = SEMANTIC_CONFIG_DEFAULTS[
            "migration_interval"
        ]
    return {k: _jsonable(full[k]) for k in SEMANTIC_CONFIG_FIELDS}


@dataclass
class Checkpoint:
    """One resumable snapshot of an EMTS run at a generation boundary.

    Attributes
    ----------
    config:
        The result-affecting configuration fields (see
        :data:`SEMANTIC_CONFIG_FIELDS`) of the run that wrote the
        checkpoint.
    problem:
        :func:`problem_fingerprint` of the (PTG, time table) pair.
    generation:
        Index of the last completed generation (0 = only seeding and
        the initial selection have run).
    rng_state:
        ``numpy`` bit-generator state captured *after* the generation's
        draws — restoring it continues the stream exactly.
    population:
        Surviving individuals as plain dictionaries.
    log_rows:
        :meth:`repro.ea.EvolutionLog.to_rows` of the history so far.
    seed_makespans:
        The heuristic baselines recorded at seeding time.
    eval_stats:
        Evaluation-engine counters accumulated before the checkpoint.
    elapsed_seconds:
        Wall-clock already spent on this run across all segments.
    completed:
        True when the run finished its generation horizon (the
        checkpoint is then an archive, not a resume point).
    """

    config: dict[str, Any]
    problem: dict[str, Any]
    generation: int
    rng_state: dict[str, Any]
    population: list[dict[str, Any]]
    log_rows: list[dict[str, Any]]
    seed_makespans: dict[str, float]
    eval_stats: dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    completed: bool = False
    #: Island-mode only: per-island bit-generator states, index i being
    #: island i's mutation stream.  ``None`` for classic runs (and for
    #: checkpoints written before the island model existed).
    island_rng_states: list[dict[str, Any]] | None = None
    version: int = CHECKPOINT_VERSION

    # -- capture -------------------------------------------------------
    @classmethod
    def capture(
        cls,
        config: "EMTSConfig",
        ptg: "PTG",
        table: "TimeTable",
        generation: int,
        rng: np.random.Generator,
        population: list[Individual],
        log: EvolutionLog,
        seed_makespans: dict[str, float],
        eval_stats: EvaluationStats | None = None,
        elapsed_seconds: float = 0.0,
        completed: bool = False,
        island_rngs: list[np.random.Generator] | None = None,
    ) -> "Checkpoint":
        """Snapshot the live state of a run at a generation boundary."""
        return cls(
            config=_semantic_config(config),
            problem=problem_fingerprint(ptg, table),
            generation=int(generation),
            rng_state=copy.deepcopy(rng.bit_generator.state),
            population=[
                {
                    "genome": [int(x) for x in ind.genome],
                    "fitness": ind.fitness,
                    "origin": ind.origin,
                    "generation": int(ind.generation),
                }
                for ind in population
            ],
            log_rows=log.to_rows(),
            seed_makespans=dict(seed_makespans),
            eval_stats=(
                asdict(eval_stats) if eval_stats is not None else {}
            ),
            elapsed_seconds=float(elapsed_seconds),
            completed=bool(completed),
            island_rng_states=(
                [
                    copy.deepcopy(g.bit_generator.state)
                    for g in island_rngs
                ]
                if island_rngs is not None
                else None
            ),
        )

    # -- restoration ---------------------------------------------------
    def restore_population(self) -> list[Individual]:
        """Rebuild the surviving individuals, fitness included."""
        try:
            return [
                Individual(
                    genome=np.asarray(entry["genome"], dtype=np.int64),
                    fitness=entry["fitness"],
                    origin=str(entry.get("origin", "checkpoint")),
                    generation=int(entry.get("generation", 0)),
                )
                for entry in self.population
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint population is malformed: {exc!r}"
            ) from exc

    def restore_log(self) -> EvolutionLog:
        """Rebuild the evolution log recorded up to the checkpoint."""
        log = EvolutionLog()
        try:
            for row in self.log_rows:
                log.append(
                    GenerationStats(
                        generation=int(row["generation"]),
                        best=float(row["best"]),
                        mean=float(row["mean"]),
                        std=float(row["std"]),
                        worst=float(row["worst"]),
                        evaluations=int(row["evaluations"]),
                        elapsed_seconds=float(row["elapsed_seconds"]),
                        cache_hits=int(row.get("cache_hits", 0)),
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint evolution log is malformed: {exc!r}"
            ) from exc
        return log

    def restore_rng(self, rng: np.random.Generator) -> None:
        """Rewind ``rng`` to the checkpointed bit-generator state."""
        try:
            rng.bit_generator.state = copy.deepcopy(self.rng_state)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint RNG state does not fit the generator "
                f"({exc!r}); was the checkpoint written with a "
                f"different bit generator?"
            ) from exc

    def restore_island_rngs(self) -> list[np.random.Generator] | None:
        """Rebuild the per-island mutation streams (island mode only).

        Returns ``None`` for classic checkpoints; raises
        :class:`~repro.exceptions.CheckpointError` when a stored state
        does not fit the default bit generator.
        """
        if self.island_rng_states is None:
            return None
        rngs = []
        for i, state in enumerate(self.island_rng_states):
            gen = np.random.default_rng()
            try:
                gen.bit_generator.state = copy.deepcopy(state)
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint island {i} RNG state does not fit "
                    f"the generator ({exc!r})"
                ) from exc
            rngs.append(gen)
        return rngs

    def restore_eval_stats(self) -> EvaluationStats:
        """Evaluation counters accumulated before the checkpoint."""
        known = {
            k: v
            for k, v in self.eval_stats.items()
            if k in EvaluationStats.__dataclass_fields__
        }
        return EvaluationStats(**known)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable document (inverse of :meth:`from_dict`)."""
        doc = {
            "format": CHECKPOINT_FORMAT,
            "version": self.version,
            "config": self.config,
            "problem": self.problem,
            "generation": self.generation,
            "rng_state": self.rng_state,
            "population": self.population,
            "log_rows": self.log_rows,
            "seed_makespans": self.seed_makespans,
            "eval_stats": self.eval_stats,
            "elapsed_seconds": self.elapsed_seconds,
            "completed": self.completed,
        }
        if self.island_rng_states is not None:
            doc["island_rng_states"] = self.island_rng_states
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Checkpoint":
        """Validate and rebuild a checkpoint from its JSON document."""
        if not isinstance(doc, dict):
            raise CheckpointError(
                f"checkpoint document must be an object, got "
                f"{type(doc).__name__}"
            )
        if doc.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not an EMTS checkpoint (format={doc.get('format')!r})"
            )
        version = doc.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        try:
            return cls(
                config=dict(doc["config"]),
                problem=dict(doc["problem"]),
                generation=int(doc["generation"]),
                rng_state=dict(doc["rng_state"]),
                population=list(doc["population"]),
                log_rows=list(doc["log_rows"]),
                seed_makespans={
                    str(k): float(v)
                    for k, v in doc["seed_makespans"].items()
                },
                eval_stats=dict(doc.get("eval_stats", {})),
                elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
                completed=bool(doc.get("completed", False)),
                island_rng_states=(
                    [dict(s) for s in doc["island_rng_states"]]
                    if doc.get("island_rng_states") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint document is missing or has a malformed "
                f"field: {exc!r}"
            ) from exc


def save_checkpoint(checkpoint: Checkpoint, path: str | Path) -> Path:
    """Atomically write ``checkpoint`` to ``path`` (JSON).

    The document is first written to a sibling temp file and then
    published with :func:`os.replace`, so readers never observe a
    truncated checkpoint and a crash mid-write leaves any previous
    checkpoint intact.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(
            json.dumps(checkpoint.to_dict()), encoding="utf-8"
        )
        # the new checkpoint exists only as a temp file: dying here
        # must leave the previous checkpoint intact and resumable
        crash_point("mid-checkpoint")
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise CheckpointError(
            f"could not write checkpoint to {path}: {exc}"
        ) from exc
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`~repro.exceptions.CheckpointError` with file-path
    context for missing files, truncated/corrupted JSON, wrong formats,
    and unsupported versions.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(
            f"could not read checkpoint {path}: {exc}"
        ) from exc
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupted (invalid JSON): {exc}"
        ) from exc
    try:
        return Checkpoint.from_dict(doc)
    except CheckpointError as exc:
        raise CheckpointError(f"{path}: {exc}") from None


def verify_resumable(
    checkpoint: Checkpoint,
    config: "EMTSConfig",
    ptg: "PTG",
    table: "TimeTable",
) -> None:
    """Refuse to resume a checkpoint against a different run.

    Compares the result-affecting configuration fields and the problem
    fingerprint; any mismatch raises
    :class:`~repro.exceptions.CheckpointError` naming every differing
    field, so an operator sees at once *why* the resume was rejected.
    """
    mismatches: list[str] = []
    current_cfg = _semantic_config(config)
    for key in SEMANTIC_CONFIG_FIELDS:
        saved = checkpoint.config.get(
            key, SEMANTIC_CONFIG_DEFAULTS.get(key)
        )
        if saved != current_cfg[key]:
            mismatches.append(
                f"config.{key}: checkpoint={saved!r} "
                f"run={current_cfg[key]!r}"
            )
    current_problem = problem_fingerprint(ptg, table)
    for key, value in current_problem.items():
        saved = checkpoint.problem.get(key)
        if saved != value:
            mismatches.append(
                f"problem.{key}: checkpoint={saved!r} run={value!r}"
            )
    if mismatches:
        raise CheckpointError(
            "checkpoint does not match this run; refusing to resume:\n  "
            + "\n  ".join(mismatches)
        )
    if checkpoint.completed:
        raise CheckpointError(
            "checkpoint marks a completed run (generation "
            f"{checkpoint.generation}); nothing to resume"
        )
