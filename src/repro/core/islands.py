"""Island-model EMTS: sharded (1+lambda_i) sub-populations with ring
migration.

The classic engine (:class:`repro.ea.EvolutionStrategy`) evolves one
panmictic (mu + lambda) population.  The island model decomposes the
same search into ``mu`` *logical islands*, each a (1 + lambda_i)
evolution strategy around one parent slot, with

``lambda_i = lam // mu + (1 if i < lam % mu else 0)``

so the per-generation offspring budget is exactly ``lam``, as in the
panmictic run.  Every ``migration_interval`` generations the islands
exchange individuals along a ring: island ``i`` receives the
previous-generation parent of island ``(i - 1) % mu`` as an extra
plus-selection candidate.  Migration is elitist and synchronous, so the
whole trajectory is a pure function of the seed.

Determinism contract
--------------------
The logical decomposition is **fixed at mu islands** regardless of the
``islands`` execution parameter.  ``islands = k`` only groups the
logical islands into ``k`` contiguous execution shards — one
population-at-once ``evaluate_batch`` call per shard per generation.
Fitness evaluation is deterministic and the mutation stream of island
``i`` comes from its own child generator (derived once from the master
RNG via :func:`repro._rng.spawn_children`), so the result is
bit-identical for any ``k`` in ``{1, ..., mu}``, any worker count and
either kernel backend.  ``islands = 0`` selects the classic panmictic
engine (a different — also deterministic — trajectory).

Each island runs plus selection over ``[parent (+ migrant)] ∪
offspring`` with ties resolved in that candidate order (stable sort),
matching the classic engine's tie rule: parents win ties, migrants beat
equal offspring.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..ea import EvolutionLog, GenerationStats, Individual
from ..ea.operators import MutationOperator
from ..ea.selection import best_of, plus_selection
from ..ea.strategy import EvolutionResult, Fitness
from ..ea.termination import GenerationLimit, TerminationCriterion
from ..exceptions import ConfigurationError
from ..obs.log import get_logger
from ..obs.profiler import NULL_PROFILER

__all__ = ["IslandStrategy", "island_offspring_counts"]

_log = get_logger("core.islands")


def island_offspring_counts(lam: int, num_islands: int) -> list[int]:
    """Per-island offspring budget: ``lam`` split as evenly as possible.

    The first ``lam % num_islands`` islands get one extra offspring, so
    the counts are a pure function of ``(lam, num_islands)`` and sum to
    ``lam`` exactly.
    """
    base, extra = divmod(lam, num_islands)
    return [base + (1 if i < extra else 0) for i in range(num_islands)]


def _shard_bounds(num_islands: int, shards: int) -> list[tuple[int, int]]:
    """Group ``num_islands`` logical islands into contiguous shards."""
    shards = max(1, min(shards, num_islands))
    counts = island_offspring_counts(num_islands, shards)
    bounds = []
    start = 0
    for c in counts:
        bounds.append((start, start + c))
        start += c
    return bounds


class IslandStrategy:
    """Ring-migration island model over ``mu`` single-parent islands.

    Parameters
    ----------
    mu:
        Number of logical islands (= parent slots = the classic mu).
    lam:
        Total offspring per generation, split across islands.
    mutation:
        The variation operator applied to every offspring.
    migration_interval:
        Generations between ring migrations (>= 1; at every multiple,
        island ``i`` also considers island ``i-1``'s previous parent).
    shards:
        Execution sharding ``k``: offspring are evaluated in ``k``
        contiguous island groups, one ``evaluate_batch`` call each.
        Pure execution knob — has no effect on the result.
    """

    def __init__(
        self,
        mu: int,
        lam: int,
        mutation: MutationOperator,
        migration_interval: int = 1,
        shards: int = 1,
    ) -> None:
        if mu < 1:
            raise ConfigurationError(f"mu must be >= 1, got {mu}")
        if lam < mu:
            raise ConfigurationError(
                f"island model needs lambda >= mu so every island "
                f"produces offspring ({lam} < {mu})"
            )
        if migration_interval < 1:
            raise ConfigurationError(
                f"migration_interval must be >= 1, "
                f"got {migration_interval}"
            )
        if shards < 1:
            raise ConfigurationError(
                f"islands (execution shards) must be >= 1, got {shards}"
            )
        self.mu = int(mu)
        self.lam = int(lam)
        self.mutation = mutation
        self.migration_interval = int(migration_interval)
        self.shards = int(shards)
        self.offspring_counts = island_offspring_counts(lam, mu)

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        individuals: list[Individual],
        fitness: Fitness,
        abort_above: float | None = None,
    ) -> tuple[int, int]:
        """Assign fitness to unevaluated individuals, block-at-once.

        Same contract as ``EvolutionStrategy._evaluate``: returns
        ``(evaluations, cache_hits)`` and degrades NaN to rejection.
        """
        todo = [ind for ind in individuals if not ind.evaluated]
        if not todo:
            return 0, 0
        nan_count = 0
        if hasattr(fitness, "evaluate"):
            stats = getattr(fitness, "stats", None)
            hits_before = stats.cache_hits if stats is not None else 0
            evaluate_batch = getattr(fitness, "evaluate_batch", None)
            if evaluate_batch is not None:
                values = evaluate_batch(
                    np.stack([ind.genome for ind in todo]),
                    abort_above=abort_above,
                )
            else:
                values = fitness.evaluate(
                    [ind.genome for ind in todo],
                    abort_above=abort_above,
                )
            if len(values) != len(todo):
                raise ConfigurationError(
                    f"batch evaluator returned {len(values)} values "
                    f"for {len(todo)} genomes"
                )
            hits = (
                stats.cache_hits - hits_before
                if stats is not None
                else 0
            )
        else:
            values = [float(fitness(ind.genome)) for ind in todo]
            hits = 0
        for ind, value in zip(todo, values):
            value = float(value)
            if math.isnan(value):
                nan_count += 1
                value = float("inf")
            ind.fitness = value
        if nan_count:
            _log.warning(
                "fitness backend returned NaN for %d of %d genomes; "
                "treating them as rejected (+inf)",
                nan_count,
                len(todo),
            )
        return len(todo), hits

    # ------------------------------------------------------------------
    def evolve(
        self,
        initial: list[Individual],
        fitness: Fitness,
        island_rngs: list[np.random.Generator],
        termination: TerminationCriterion | None = None,
        total_generations: int | None = None,
        abort_bound=None,
        on_generation_end=None,
        resume_log: EvolutionLog | None = None,
        start_generation: int = 0,
        profiler=NULL_PROFILER,
    ) -> EvolutionResult:
        """Run the island model from the given starting individuals.

        ``island_rngs`` must hold exactly ``mu`` generators — one
        mutation stream per island (the caller derives them from the
        master RNG, or restores them from a checkpoint).  The population
        reported in logs, hooks and the result is always the ordered
        list of island parents, so checkpoints capture island ``i``'s
        parent at index ``i``.
        """
        if not initial:
            raise ConfigurationError(
                "need at least one initial individual"
            )
        if len(island_rngs) != self.mu:
            raise ConfigurationError(
                f"island model needs exactly {self.mu} RNG streams, "
                f"got {len(island_rngs)}"
            )
        if termination is None:
            if total_generations is None:
                raise ConfigurationError(
                    "provide either a termination criterion or "
                    "total_generations"
                )
            termination = GenerationLimit(total_generations)
        if total_generations is None:
            total_generations = (
                termination.limit
                if isinstance(termination, GenerationLimit)
                else 10
            )
        termination.start()

        if resume_log is not None:
            log = resume_log
            parents = list(initial)
            if any(not ind.evaluated for ind in parents):
                raise ConfigurationError(
                    "resumed population contains unevaluated "
                    "individuals"
                )
            if len(parents) != self.mu:
                raise ConfigurationError(
                    f"resumed island population holds {len(parents)} "
                    f"parents, expected {self.mu}"
                )
            generation = int(start_generation)
        else:
            log = EvolutionLog()
            t0 = time.perf_counter()
            population = [
                Individual(
                    genome=ind.genome,
                    fitness=ind.fitness,
                    origin=ind.origin,
                    generation=0,
                )
                for ind in initial
            ]
            evals, hits = self._evaluate(population, fitness)
            # the initial global selection doubles as the island
            # assignment: the i-th survivor becomes island i's parent
            # (cycled when there are fewer starters than islands)
            survivors = plus_selection(
                population, [], min(self.mu, len(population))
            )
            parents = [
                survivors[i % len(survivors)] for i in range(self.mu)
            ]
            log.append(
                GenerationStats.from_population(
                    0,
                    parents,
                    evals,
                    time.perf_counter() - t0,
                    cache_hits=hits,
                )
            )
            if on_generation_end is not None:
                on_generation_end(parents, 0, log)
            generation = 0

        shard_bounds = _shard_bounds(self.mu, self.shards)
        while not termination.should_stop(log):
            generation += 1
            bound = (
                abort_bound(parents)
                if abort_bound is not None
                else None
            )
            t0 = time.perf_counter()
            per_island: list[list[Individual]] = []
            with profiler.phase("mutation"):
                for i in range(self.mu):
                    rng_i = island_rngs[i]
                    parent = parents[i]
                    brood = [
                        parent.with_genome(
                            self.mutation.mutate(
                                parent.genome,
                                rng_i,
                                generation,
                                total_generations,
                            ),
                            "mutation",
                            generation,
                        )
                        for _ in range(self.offspring_counts[i])
                    ]
                    per_island.append(brood)
            evals = hits = 0
            for lo, hi in shard_bounds:
                shard_offspring = [
                    ind for island in per_island[lo:hi] for ind in island
                ]
                e, h = self._evaluate(shard_offspring, fitness, bound)
                evals += e
                hits += h
            migrating = (
                self.mu > 1
                and generation % self.migration_interval == 0
            )
            previous = parents
            new_parents = []
            for i in range(self.mu):
                candidates = [previous[i]]
                if migrating:
                    # ring migration: the neighbour's *previous*
                    # generation parent, so exchange is synchronous
                    # and independent of island evaluation order
                    candidates.append(previous[(i - 1) % self.mu])
                new_parents.append(
                    plus_selection(candidates, per_island[i], 1)[0]
                )
            parents = new_parents
            log.append(
                GenerationStats.from_population(
                    generation,
                    parents,
                    evals,
                    time.perf_counter() - t0,
                    cache_hits=hits,
                )
            )
            if on_generation_end is not None:
                on_generation_end(parents, generation, log)

        return EvolutionResult(
            best=best_of(parents), population=parents, log=log
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IslandStrategy({self.mu} islands, lam={self.lam}, "
            f"migrate_every={self.migration_interval}, "
            f"shards={self.shards})"
        )
