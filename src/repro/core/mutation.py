"""EMTS's mutation operator (paper Sections III-C and III-D, Eq. 1).

**How many alleles change** (Section III-C): in generation ``u`` of ``U``,
``m = (1 - u/U) * f_m * V`` allocations of the individual are mutated —
many early (exploration), few late (convergence).  We round and floor at
one so every offspring differs from its parent.

**By how much each changes** (Section III-D, Eq. 1): the step must prefer
small adjustments over large ones (a uniform step distribution oscillates)
and must support both stretching and shrinking, with shrinking *less*
likely.  With a Bernoulli variable ``L`` (``P[L = 0] = a``) and
half-normal magnitudes::

    C = -(|X1| + 1)   if L = 1,  X1 ~ N(0, sigma_1)
    C = +(|X2| + 1)   if L = 0,  X2 ~ N(0, sigma_2)

**Sign convention.**  Read literally, Eq. 1 removes processors with
probability ``1 - a``; but the paper's prose says "``a = 0.2`` means that
the number of processors allocated to a task *decreases* with a
probability of 20 %" and Section III-D requires "the shrinking of
allocations is less likely than the stretching".  The two statements are
inconsistent; we follow the prose (and Figure 3's asymmetry toward
positive adjustments): with probability ``a`` the allocation shrinks by
``floor(|X2|) + 1``, with probability ``1 - a`` it grows by
``floor(|X1|) + 1``.  Magnitudes are floored so that ``|C| >= 1`` always
(a mutation never leaves an allele unchanged) and results are clamped to
``[1, P]``.
"""

from __future__ import annotations

import numpy as np

from ..ea.operators import MutationOperator
from ..exceptions import ConfigurationError
from .encoding import clamp_allocations

__all__ = [
    "mutation_count",
    "sample_adjustments",
    "adjustment_pmf",
    "AllocationMutation",
]


def mutation_count(V: int, u: int, U: int, fm: float) -> int:
    """Number of alleles to mutate in generation ``u`` of ``U``.

    Implements ``m = (1 - u/U) * f_m * V`` with rounding, floored at 1 and
    capped at ``V``.  Note the annealing: at ``u = U`` the formula itself
    yields 0; the floor keeps the final generation productive.
    """
    if V < 1:
        raise ConfigurationError(f"V must be >= 1, got {V}")
    if U < 1:
        raise ConfigurationError(f"U must be >= 1, got {U}")
    if not (0.0 < fm <= 1.0):
        raise ConfigurationError(f"f_m must lie in (0, 1], got {fm}")
    if not (0 <= u <= U):
        raise ConfigurationError(f"generation u={u} outside [0, {U}]")
    m = int(round((1.0 - u / U) * fm * V))
    return max(1, min(m, V))


def sample_adjustments(
    n: int,
    rng: np.random.Generator,
    sigma_stretch: float = 5.0,
    sigma_shrink: float = 5.0,
    shrink_probability: float = 0.2,
) -> np.ndarray:
    """Draw ``n`` processor adjustments ``C`` per Eq. 1 (prose signs).

    Positive entries stretch the allocation, negative entries shrink it;
    every entry has magnitude >= 1.
    """
    shrink = rng.random(n) < shrink_probability
    mag_shrink = np.floor(
        np.abs(rng.normal(0.0, sigma_shrink, size=n))
    ) + 1.0
    mag_stretch = np.floor(
        np.abs(rng.normal(0.0, sigma_stretch, size=n))
    ) + 1.0
    return np.where(shrink, -mag_shrink, mag_stretch).astype(np.int64)


def adjustment_pmf(
    k: np.ndarray,
    sigma_stretch: float = 5.0,
    sigma_shrink: float = 5.0,
    shrink_probability: float = 0.2,
) -> np.ndarray:
    """Analytic probability mass of adjustment ``C = k`` (Figure 3).

    ``|C| = floor(|X|) + 1`` with half-normal ``|X|`` puts on magnitude
    ``j >= 1`` the half-normal mass of the interval ``[j - 1, j)``:
    ``P[|C| = j] = erf(j / (sigma sqrt(2))) - erf((j-1) / (sigma sqrt(2)))``,
    scaled by the branch probability.  ``P[C = 0] = 0`` by construction.
    """
    from scipy.special import erf

    k = np.asarray(k, dtype=np.int64)
    out = np.zeros(k.shape, dtype=np.float64)

    def half_normal_mass(j: np.ndarray, sigma: float) -> np.ndarray:
        lo = (j - 1) / (sigma * np.sqrt(2.0))
        hi = j / (sigma * np.sqrt(2.0))
        return erf(hi) - erf(lo)

    pos = k > 0
    neg = k < 0
    out[pos] = (1.0 - shrink_probability) * half_normal_mass(
        k[pos].astype(np.float64), sigma_stretch
    )
    out[neg] = shrink_probability * half_normal_mass(
        np.abs(k[neg]).astype(np.float64), sigma_shrink
    )
    return out


class AllocationMutation(MutationOperator):
    """EMTS's annealed, Eq. 1-distributed allocation mutation.

    Parameters mirror :class:`repro.core.EMTSConfig`; ``P`` is the machine
    size used for clamping.
    """

    def __init__(
        self,
        P: int,
        fm: float = 0.33,
        sigma_stretch: float = 5.0,
        sigma_shrink: float = 5.0,
        shrink_probability: float = 0.2,
    ) -> None:
        if P < 1:
            raise ConfigurationError(f"P must be >= 1, got {P}")
        if not (0.0 < fm <= 1.0):
            raise ConfigurationError(f"f_m must lie in (0, 1], got {fm}")
        if sigma_stretch <= 0 or sigma_shrink <= 0:
            raise ConfigurationError("sigmas must be > 0")
        if not (0.0 <= shrink_probability <= 1.0):
            raise ConfigurationError(
                "shrink probability must lie in [0, 1]"
            )
        self.P = int(P)
        self.fm = float(fm)
        self.sigma_stretch = float(sigma_stretch)
        self.sigma_shrink = float(sigma_shrink)
        self.shrink_probability = float(shrink_probability)

    def mutate(
        self,
        genome: np.ndarray,
        rng: np.random.Generator,
        generation: int,
        total_generations: int,
    ) -> np.ndarray:
        V = genome.shape[0]
        m = mutation_count(V, generation, total_generations, self.fm)
        positions = rng.choice(V, size=m, replace=False)
        adjustments = sample_adjustments(
            m,
            rng,
            sigma_stretch=self.sigma_stretch,
            sigma_shrink=self.sigma_shrink,
            shrink_probability=self.shrink_probability,
        )
        child = np.array(genome, copy=True)
        child[positions] = child[positions] + adjustments
        return clamp_allocations(child, self.P)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AllocationMutation(P={self.P}, fm={self.fm}, "
            f"sigma=({self.sigma_stretch}, {self.sigma_shrink}), "
            f"a={self.shrink_probability})"
        )
