"""Reproducible random-number-stream management.

Every stochastic component of the library (workload generators, the
evolutionary optimizer, experiment harnesses) draws from a
:class:`numpy.random.Generator`.  To keep experiments reproducible while
still letting independent components consume randomness independently, we
derive child generators from a root seed plus a sequence of string keys via
:class:`numpy.random.SeedSequence`.

Example
-------
>>> from repro._rng import spawn
>>> g1 = spawn(42, "workloads", "fft")
>>> g2 = spawn(42, "workloads", "fft")
>>> float(g1.random()) == float(g2.random())
True
>>> g3 = spawn(42, "workloads", "strassen")
>>> float(spawn(42, "workloads", "fft").random()) == float(g3.random())
False
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["spawn", "key_to_int", "ensure_generator", "DEFAULT_SEED"]

#: Seed used across the library whenever the caller does not supply one.
#: The paper notes "the random generator uses the same (random) seed for all
#: experiments"; we mirror that with a fixed default.
DEFAULT_SEED = 20110926  # CLUSTER 2011 conference date


def key_to_int(key: str) -> int:
    """Map a string key to a stable 32-bit integer.

    ``zlib.crc32`` is stable across Python processes and platforms (unlike
    :func:`hash`, which is salted per process), which is what makes the
    derived streams reproducible between runs.
    """
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


def spawn(seed: int | None, *keys: str) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for component ``keys``.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` selects :data:`DEFAULT_SEED`.
    keys:
        Arbitrary component path, e.g. ``("workloads", "daggen", "n=100")``.
        Different paths yield statistically independent streams; identical
        paths yield identical streams.
    """
    if seed is None:
        seed = DEFAULT_SEED
    entropy = [int(seed)] + [key_to_int(k) for k in keys]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def ensure_generator(
    rng: np.random.Generator | int | None,
    *keys: str,
) -> np.random.Generator:
    """Coerce ``rng`` into a generator.

    Accepts an existing generator (returned unchanged), an integer seed
    (spawned through :func:`spawn` with ``keys``), or ``None`` (default
    seed).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return spawn(rng, *keys)


def spawn_children(
    rng: np.random.Generator, n: int
) -> list[np.random.Generator]:
    """Split ``n`` independent child generators off an existing generator."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} child generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def iter_seeds(rng: np.random.Generator) -> Iterable[int]:
    """Yield an endless stream of fresh 63-bit seeds from ``rng``."""
    while True:
        yield int(rng.integers(0, 2**63 - 1, dtype=np.int64))
