"""Warm worker pool: threads that drain the queue and run EMTS.

Each worker thread owns a private :class:`~repro.service.cache.WarmCache`
(no locking on the hot path): the first request for a problem pays for
PTG parsing, time-table construction and the compiled-kernel binding;
every later request on that problem starts evolving immediately and
reuses the problem's persistent fitness-cache shard via
``EMTS.schedule(evaluator_wrapper=...)``.

Every run journals a resumable checkpoint into the job spool, so a
drain (SIGTERM) stops runs at the next generation boundary and a
restarted daemon resumes them bit-identically (PR 3 contract).

Metrics discipline: worker threads record into a thread-local
:class:`~repro.obs.MetricsRegistry` and merge deltas into the shared
registry under the pool's metrics lock — shared instruments are never
mutated concurrently.

Worker-death robustness: job-level errors are caught inside
:meth:`WorkerPool._run_one`, but a fault that escapes it —
``SystemExit`` from library code, a ``MemoryError`` mid-evolution, a
bug in the worker loop itself — would silently shrink the pool and
strand the in-flight job in ``running`` forever.  Each thread therefore
runs under a guard that, on any escaping exception, requeues the
in-flight job (bounded by ``max_job_attempts``, after which it fails
with code ``worker-crashed``), counts the death in
``service.workers.died``, and spawns a replacement thread unless the
pool is stopping.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable

from ..core import (
    emts5,
    emts10,
    fingerprint_digest,
    problem_fingerprint,
)
from ..mapping import schedule_to_dict
from ..obs import MetricsRegistry
from ..obs.flight import record as flight_record
from ..obs.trace import TraceContext, Tracer, use_context
from ..util.crash import crash_point
from ..verify import ScheduleVerifier
from .cache import ResultCache, WarmCache
from .jobs import Job, JobStore
from .protocol import (
    PROTOCOL_VERSION,
    ScheduleRequest,
    request_trace_context,
)
from .queue import FairQueue

__all__ = ["WorkerPool", "run_request", "LATENCY_BUCKETS"]

#: log-spaced seconds buckets, 1 ms .. 60 s — wide enough for cold
#: compiles, fine enough to gate p99 on warm hits
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _make_service_algorithm(request: ScheduleRequest):
    factory = emts5 if request.algorithm == "emts5" else emts10
    overrides: dict[str, Any] = {}
    if request.generations is not None:
        overrides["generations"] = request.generations
    return factory(**overrides)


def run_request(
    job: Job,
    warm: WarmCache,
    *,
    checkpoint_path=None,
    resume_from=None,
    tracer: Tracer | None = None,
) -> dict[str, Any]:
    """Execute one job's EMTS run and build its ``result`` document.

    The document contains only run-deterministic fields (no wall-clock
    timings, no cumulative evaluator counters), so for a fixed request
    it is bit-identical whether produced by a cold worker, a warm
    worker replaying its fitness-cache shard, a resumed run after a
    drain, or the offline ``repro-emts`` CLI with the same seed.

    A ``tracer`` (the worker's per-attempt shard) is handed straight to
    the engine, which nests its ``run_start``..``run_end`` span — with
    every generation, checkpoint and verify event — under the open
    ``service_run`` span.
    """
    request = job.request
    prepared = warm.get_or_prepare(request)
    prepared.runs += 1
    algorithm = _make_service_algorithm(request)
    result = algorithm.schedule(
        prepared.ptg,
        prepared.cluster,
        prepared.table,
        rng=request.seed,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
        max_wall_time=request.max_wall_time,
        stop_event=job.stop_event,
        evaluator_wrapper=prepared.evaluator_wrapper,
        trace=tracer,
    )
    if result.interrupted and job.stop_event.is_set():
        # stopped by a drain: the run already journaled its checkpoint;
        # signal the caller to park the job for resumption
        raise _Interrupted()
    report = ScheduleVerifier(prepared.ptg, prepared.table).verify(
        result.schedule, expected_makespan=result.makespan
    )
    if tracer is not None:
        # the service's own acceptance check, distinct from any
        # in-run verification the engine may have traced already
        tracer.event(
            "verify", attrs={"verified": report.tasks, "service": True}
        )
    return {
        "protocol": PROTOCOL_VERSION,
        "algorithm": request.algorithm,
        "seed": request.seed,
        "makespan": result.makespan,
        "schedule": schedule_to_dict(result.schedule),
        "seed_makespans": {
            k: float(v) for k, v in sorted(result.seed_makespans.items())
        },
        "generations": result.log.generations,
        "evaluations": result.log.total_evaluations,
        "problem_fingerprint": fingerprint_digest(
            problem_fingerprint(prepared.ptg, prepared.table)
        ),
        "verified": True,
        "verified_tasks": report.tasks,
        "interrupted": bool(result.interrupted),
    }


class _Interrupted(Exception):
    """Internal: the run was stopped by a drain at a generation boundary."""


def _checkpoint_resumable(path) -> bool:
    """Can the engine resume this checkpoint at all?

    ``False`` for checkpoints marking a completed run (the engine
    rightly refuses them: there is nothing left to evolve) and for
    unreadable ones — both are crash debris the worker answers with a
    fresh run instead of a failed job.
    """
    from ..core.checkpoint import load_checkpoint
    from ..exceptions import CheckpointError

    try:
        return not load_checkpoint(path).completed
    except CheckpointError:
        return False


class WorkerPool:
    """N worker threads draining a :class:`FairQueue`."""

    def __init__(
        self,
        queue: FairQueue,
        store: JobStore,
        result_cache: ResultCache,
        *,
        workers: int = 2,
        metrics: MetricsRegistry | None = None,
        metrics_lock: threading.Lock | None = None,
        warm_max_problems: int = 32,
        eval_cache_entries: int = 65_536,
        poll_interval: float = 0.1,
        on_job_done: Callable[[Job], None] | None = None,
        max_job_attempts: int = 3,
        trace_dir: str | Path | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need workers >= 1, got {workers}")
        if max_job_attempts < 1:
            raise ValueError(
                f"need max_job_attempts >= 1, got {max_job_attempts}"
            )
        self.queue = queue
        self.store = store
        self.result_cache = result_cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics_lock = metrics_lock or threading.Lock()
        self.warm_max_problems = warm_max_problems
        self.eval_cache_entries = eval_cache_entries
        self.poll_interval = poll_interval
        self.on_job_done = on_job_done
        self.max_job_attempts = int(max_job_attempts)
        self.trace_dir = (
            Path(trace_dir) if trace_dir is not None else None
        )
        self.num_workers = int(workers)
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._running_lock = threading.Lock()
        self._running: dict[str, Job] = {}
        #: worker index -> the job it is processing right now; read by
        #: the death guard to recover in-flight work
        self._inflight: dict[int, Job] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        for i in range(self.num_workers):
            self._spawn(i)

    def _spawn(self, index: int) -> None:
        t = threading.Thread(
            target=self._worker_guard,
            args=(index,),
            name=f"repro-service-worker-{index}",
            daemon=True,
        )
        t.start()
        self._threads.append(t)

    def running_jobs(self) -> list[Job]:
        with self._running_lock:
            return list(self._running.values())

    def initiate_drain(self) -> None:
        """Stop taking new jobs; interrupt running runs gracefully."""
        self._draining.set()
        self._stop.set()
        self.queue.close()
        for job in self.running_jobs():
            job.stop_event.set()

    def stop(self, timeout: float = 60.0) -> None:
        """Signal workers to exit and join them."""
        self._stop.set()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))

    # ------------------------------------------------------------------
    def _worker_guard(self, index: int) -> None:
        """Run the worker loop; survive its death by any exception.

        ``_run_one`` already contains job-level error handling, so only
        faults *outside* that net reach here: ``SystemExit`` or
        ``KeyboardInterrupt`` raised inside library code, resource
        exhaustion, or a bug in the loop itself.  The in-flight job (if
        any) is requeued or failed, the death is counted, and a
        replacement thread takes over the index.
        """
        try:
            self._worker_loop(index)
        except BaseException as exc:  # noqa: BLE001 — the whole point
            with self._running_lock:
                job = self._inflight.pop(index, None)
            with self.metrics_lock:
                self.metrics.counter("service.workers.died").inc()
            if job is not None:
                self._recover_inflight(job, exc)
            if not self._stop.is_set():
                self._spawn(index)

    def _recover_inflight(self, job: Job, exc: BaseException) -> None:
        """Requeue (bounded) or fail the job a dying worker dropped."""
        with self._running_lock:
            self._running.pop(job.id, None)
        if job.attempts < self.max_job_attempts:
            try:
                job.state = "queued"
                self.store.persist(job)
                self.queue.put(
                    job,
                    tenant=job.request.tenant,
                    priority=job.request.priority,
                )
                with self.metrics_lock:
                    self.metrics.counter("service.jobs.requeued").inc()
                return
            except Exception:
                # queue closed (drain) or full: fall through to fail
                pass
        job.error = {
            "code": "worker-crashed",
            "message": (
                f"worker thread died ({type(exc).__name__}: {exc}) on "
                f"attempt {job.attempts}/{self.max_job_attempts}"
            ),
        }
        job.state = "failed"
        job.finished_at = time.time()
        self.store.persist(job)
        job.done_event.set()
        with self.metrics_lock:
            self.metrics.counter("service.jobs.failed").inc()

    def _worker_loop(self, index: int) -> None:
        warm = WarmCache(
            self.warm_max_problems,
            eval_cache_entries=self.eval_cache_entries,
        )
        while not self._stop.is_set():
            job = self.queue.get(timeout=self.poll_interval)
            if job is None:
                continue
            with self._running_lock:
                self._inflight[index] = job
            local = MetricsRegistry()
            try:
                self._run_one(job, warm, local)
            finally:
                self._merge_metrics(local, warm)
                if self.on_job_done is not None:
                    self.on_job_done(job)
            with self._running_lock:
                self._inflight.pop(index, None)

    # ------------------------------------------------------------------
    def _open_attempt_trace(
        self, job: Job
    ) -> tuple[Tracer | None, TraceContext | None]:
        """Open this attempt's trace shard, anchored under the request.

        The shard's :class:`~repro.obs.trace.TraceContext` is the
        request context's ``attempt-<n>`` child — distinct per attempt,
        so retried jobs never collide on derived span ids — and its
        first event is a ``queue_wait`` stamped with *that context
        itself*: the one span whose parent is the client-minted request
        root.  Every later event in the shard mirrors under it, which
        is what lets the assembler hang the whole attempt off the
        request tree.
        """
        if self.trace_dir is None:
            return None, None
        ctx = request_trace_context(job.request).child(
            f"attempt-{job.attempts}"
        )
        tracer = Tracer(
            self.trace_dir
            / f"job-{ctx.trace_id}-a{job.attempts}.jsonl",
            context=ctx,
        )
        tracer.event(
            "queue_wait",
            attrs={
                "attempt": job.attempts,
                "priority": job.request.priority,
                "tenant": job.request.tenant,
            },
            dur=max(0.0, job.wait_seconds() or 0.0),
            ctx=ctx,
        )
        return tracer, ctx

    @staticmethod
    def _end_run_span(tracer: Tracer | None, **attrs: Any) -> None:
        """Close the attempt's ``service_run`` span, debris included.

        A failure escaping the engine can leave its ``run_start`` span
        dangling on the shard's stack; it is closed (marked
        ``aborted``) so the shard stays structurally valid before the
        ``service_run_end`` goes out.
        """
        if tracer is None:
            return
        while tracer.depth > 1:
            tracer.end("run_end", attrs={"aborted": True})
        tracer.end(
            "service_run_end",
            attrs={k: v for k, v in attrs.items() if v is not None},
        )

    def _run_one(
        self, job: Job, warm: WarmCache, local: MetricsRegistry
    ) -> None:
        job.attempts += 1
        job.state = "running"
        job.started_at = time.time()
        with self._running_lock:
            self._running[job.id] = job
        self.store.persist(job)
        flight_record(
            "worker", "job started", job_id=job.id, attempt=job.attempts
        )
        tracer, ctx = self._open_attempt_trace(job)
        try:
            with use_context(ctx):
                self._execute(job, warm, local, tracer)
        finally:
            if tracer is not None:
                tracer.close()

    def _execute(
        self,
        job: Job,
        warm: WarmCache,
        local: MetricsRegistry,
        tracer: Tracer | None,
    ) -> None:
        store = self.store
        t0 = time.perf_counter()
        if tracer is not None:
            tracer.begin(
                "service_run_start",
                attrs={"attempt": job.attempts, "job_id": job.id},
            )
        try:
            # an identical request may have completed while we queued
            cached = self.result_cache.get(job.key)
            if cached is not None:
                job.result = cached
                job.served_from = "result-cache"
                local.counter("service.jobs.served_from_cache").inc()
                self._end_run_span(
                    tracer, state="done", served_from="result-cache"
                )
                self._finish(job, "done")
                return

            ckpt = store.checkpoint_path(job)
            resume = ckpt if ckpt is not None and ckpt.exists() else None
            if resume is not None and not _checkpoint_resumable(resume):
                # two crash shapes leave a checkpoint that must NOT be
                # passed to the engine: a *completed* one (the daemon
                # died after the final generation but before the result
                # became durable — nothing left to run) and an
                # unreadable one.  Either way a fresh deterministic run
                # re-derives the exact same result bits.
                resume = None
            if self._draining.is_set():
                job.stop_event.set()
            warm_hits_before = warm.stats.hits
            result_doc = run_request(
                job,
                warm,
                checkpoint_path=ckpt,
                resume_from=resume,
                tracer=tracer,
            )
            warm_hit = warm.stats.hits > warm_hits_before
            if warm_hit:
                local.counter("service.cache.warm.hits").inc()
            else:
                local.counter("service.cache.warm.misses").inc()
            # the run is complete and verified but the done record is
            # not yet durable: dying here forces a full re-execution on
            # restart, which determinism makes observationally idempotent
            crash_point("pre-result-persist")
            job.result = result_doc
            job.served_from = "resume" if resume is not None else "run"
            if not result_doc["interrupted"]:
                # wall-time-truncated answers are valid but depend on
                # machine speed; only deterministic runs are cacheable
                self.result_cache.put(job.key, result_doc)
            local.counter("service.jobs.completed").inc()
            local.histogram(
                "service.run_seconds", buckets=LATENCY_BUCKETS
            ).observe(time.perf_counter() - t0)
            self._end_run_span(
                tracer,
                state="done",
                served_from=job.served_from,
                warm_hit=warm_hit,
                interrupted=bool(result_doc["interrupted"]),
            )
            self._finish(job, "done")
        except _Interrupted:
            job.state = "interrupted"
            local.counter("service.jobs.interrupted").inc()
            with self._running_lock:
                self._running.pop(job.id, None)
            store.persist(job)
            flight_record(
                "worker", "job interrupted by drain", job_id=job.id
            )
            self._end_run_span(tracer, state="interrupted")
        except Exception as exc:
            job.error = {
                "code": getattr(exc, "code", type(exc).__name__),
                "message": str(exc),
            }
            local.counter("service.jobs.failed").inc()
            flight_record(
                "worker",
                "job failed",
                job_id=job.id,
                code=job.error["code"],
            )
            self._end_run_span(
                tracer, state="failed", error=job.error["code"]
            )
            self._finish(job, "failed")

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()
        with self._running_lock:
            self._running.pop(job.id, None)
        self.store.persist(job)
        self.store.forget_checkpoint(job)
        wait = job.wait_seconds()
        total = job.total_seconds()
        job.done_event.set()
        self._observe_latency(wait, total)

    def _observe_latency(
        self, wait: float | None, total: float | None
    ) -> None:
        with self.metrics_lock:
            if wait is not None:
                self.metrics.histogram(
                    "service.wait_seconds", buckets=LATENCY_BUCKETS
                ).observe(wait)
            if total is not None:
                self.metrics.histogram(
                    "service.request_seconds", buckets=LATENCY_BUCKETS
                ).observe(total)

    def _merge_metrics(
        self, local: MetricsRegistry, warm: WarmCache
    ) -> None:
        snapshot = local.drain()
        with self.metrics_lock:
            self.metrics.merge(snapshot)
