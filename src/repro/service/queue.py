"""Priority job queue with per-tenant fairness and backpressure.

Ordering
    Jobs are drained highest *priority* first.  Within one priority
    level tenants take strict round-robin turns (a tenant that floods
    the queue cannot starve the others); within one tenant jobs stay
    FIFO.

Backpressure
    ``put`` rejects once the global depth limit or the submitting
    tenant's quota is reached, raising :class:`QueueFull` — the server
    turns that into ``429 Too Many Requests`` with a ``Retry-After``
    hint so well-behaved clients back off instead of hammering.

The queue is a plain thread-safe structure (condition variable, no
asyncio): the event loop ``put``\\ s from coroutines (non-blocking) and
worker threads block in ``get``.

Pressure visibility
    Given a metrics registry, every put/get samples the
    ``service.queue.depth`` gauge and every get observes the dequeued
    job's residency in a per-priority-lane
    ``service.queue.wait_seconds.p<N>`` histogram — queue pressure
    shows up on ``/metrics`` while it builds, not only once 429s fire.
    All observations happen *outside* the queue lock (queue lock and
    metrics lock are never held together).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any

from ..exceptions import ServiceError

__all__ = ["FairQueue", "QueueFull", "QUEUE_WAIT_BUCKETS"]

DEFAULT_MAX_DEPTH = 256
DEFAULT_TENANT_QUOTA = 64

#: Queue-residency buckets (seconds): finer than the request-latency
#: buckets at the low end because healthy queue waits are milliseconds
#: and the interesting signal is the climb through 10-100 ms.
QUEUE_WAIT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


class QueueFull(ServiceError):
    """The queue (or one tenant's quota slice) is at capacity."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(
            message,
            code="queue-full",
            status=429,
            retry_after=retry_after,
        )


class FairQueue:
    """Bounded priority queue, round-robin fair across tenants."""

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        retry_after: float = 1.0,
        *,
        metrics: Any | None = None,
        metrics_lock: threading.Lock | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        self.max_depth = int(max_depth)
        self.tenant_quota = int(tenant_quota)
        self.retry_after = float(retry_after)
        self.metrics = metrics
        self.metrics_lock = (
            metrics_lock if metrics_lock is not None else threading.Lock()
        )
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # priority -> tenant -> FIFO of (job, enqueued_at) pairs;
        # tenants kept in insertion order and rotated on each take for
        # round-robin fairness
        self._lanes: dict[int, OrderedDict[str, deque]] = {}
        self._tenant_depth: dict[str, int] = {}
        self._depth = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _sample_depth(self, depth: int) -> None:
        """Update the depth gauge (called with the queue lock RELEASED)."""
        if self.metrics is None:
            return
        with self.metrics_lock:
            self.metrics.gauge(
                "service.queue.depth", help="jobs currently queued"
            ).set(depth)

    def _observe_wait(self, priority: int, wait: float) -> None:
        """Record one dequeued job's lane residency (lock RELEASED)."""
        if self.metrics is None:
            return
        with self.metrics_lock:
            self.metrics.histogram(
                f"service.queue.wait_seconds.p{int(priority)}",
                buckets=QUEUE_WAIT_BUCKETS,
                help="queue residency per priority lane",
            ).observe(max(0.0, wait))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._depth

    @property
    def depth(self) -> int:
        return len(self)

    def tenant_depth(self, tenant: str) -> int:
        with self._lock:
            return self._tenant_depth.get(tenant, 0)

    # ------------------------------------------------------------------
    def put(self, job: Any, *, tenant: str, priority: int = 0) -> None:
        """Enqueue ``job``; raises :class:`QueueFull` on backpressure."""
        with self._lock:
            if self._closed:
                raise ServiceError(
                    "service is draining; not accepting new jobs",
                    code="draining",
                    status=503,
                    retry_after=self.retry_after,
                )
            if self._depth >= self.max_depth:
                raise QueueFull(
                    f"queue is full ({self._depth}/{self.max_depth} jobs)",
                    retry_after=self.retry_after,
                )
            held = self._tenant_depth.get(tenant, 0)
            if held >= self.tenant_quota:
                raise QueueFull(
                    f"tenant {tenant!r} is at its quota "
                    f"({held}/{self.tenant_quota} queued jobs)",
                    retry_after=self.retry_after,
                )
            lanes = self._lanes.setdefault(int(priority), OrderedDict())
            lanes.setdefault(tenant, deque()).append(
                (job, time.monotonic())
            )
            self._tenant_depth[tenant] = held + 1
            self._depth += 1
            depth = self._depth
            self._not_empty.notify()
        self._sample_depth(depth)

    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None) -> Any | None:
        """Dequeue the next job, or ``None`` after ``timeout`` seconds."""
        with self._not_empty:
            if self._depth == 0 and not self._not_empty.wait_for(
                lambda: self._depth > 0, timeout=timeout
            ):
                return None
            job, enqueued_at, priority = self._take_locked()
            depth = self._depth
        self._observe_wait(priority, time.monotonic() - enqueued_at)
        self._sample_depth(depth)
        return job

    def _take_locked(self) -> tuple[Any, float, int]:
        priority = max(self._lanes)
        lanes = self._lanes[priority]
        # head tenant takes its turn, then moves to the back of the ring
        tenant, fifo = next(iter(lanes.items()))
        job, enqueued_at = fifo.popleft()
        if fifo:
            lanes.move_to_end(tenant)
        else:
            del lanes[tenant]
        if not lanes:
            del self._lanes[priority]
        held = self._tenant_depth[tenant] - 1
        if held:
            self._tenant_depth[tenant] = held
        else:
            del self._tenant_depth[tenant]
        self._depth -= 1
        return job, enqueued_at, priority

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting new jobs (drain mode); ``get`` still works."""
        with self._lock:
            self._closed = True

    def drain_remaining(self) -> list[Any]:
        """Remove and return every queued job (used at shutdown)."""
        out = []
        with self._lock:
            while self._depth:
                out.append(self._take_locked()[0])
        return out
