"""The asyncio HTTP/JSON scheduling daemon (``repro-emts serve``).

Architecture
    One asyncio event loop owns the listening socket and a minimal
    HTTP/1.1 keep-alive parser; it never runs EMTS.  Submissions are
    answered straight from the shared result cache when possible;
    everything else is enqueued on the :class:`FairQueue` and executed
    by the :class:`WorkerPool` threads.  The loop and the workers only
    share thread-safe structures (queue, job store, result cache,
    metrics under one lock).

Endpoints
    ``POST /v1/jobs``            submit; ``?wait=SECONDS`` blocks until
    done (or times out back to 202).  Responses: 200 done, 202 queued,
    400 malformed, 429 backpressure (with ``Retry-After``), 503
    draining.
    ``GET /v1/jobs/<id>``        poll one job (result inline when done).
    ``GET /v1/jobs``             list job summaries.
    ``GET /metrics``             Prometheus text (run + service series).
    ``GET /v1/stats``            JSON snapshot of caches/queue/latency.
    ``GET /healthz``             liveness + drain flag.

Shutdown
    SIGTERM/SIGINT starts a graceful drain: new submissions get 503,
    running EMTS runs stop at their next generation boundary and
    checkpoint via the PR 3 machinery, queued jobs stay spooled, and a
    restarted daemon resumes everything bit-identically.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from pathlib import Path
from typing import Any

from ..exceptions import ServiceError, TraceError
from ..obs import MetricsRegistry
from ..obs.flight import arm_crash_dump, record as flight_record
from ..obs.slo import SLOEngine, default_service_slos
from ..obs.trace import TraceContext, Tracer, derive_span_id
from ..util.crash import crash_point
from .cache import ResultCache
from .jobs import Job, JobStore
from .protocol import parse_request, request_trace_context, result_key
from .queue import FairQueue
from .worker import LATENCY_BUCKETS, WorkerPool

__all__ = ["SchedulingService", "serve"]

_MAX_BODY = 8 * 1024 * 1024  # generous: inline PTGs are ~KBs
_SERVER_NAME = "repro-emts-service"


def _http_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    reason = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        409: "Conflict",
        413: "Payload Too Large",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "OK")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        f"Server: {_SERVER_NAME}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    for k, v in (extra_headers or {}).items():
        headers.append(f"{k}: {v}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


def _json_response(
    status: int, doc: Any, extra_headers: dict[str, str] | None = None
) -> bytes:
    return _http_response(
        status,
        (json.dumps(doc) + "\n").encode("utf-8"),
        extra_headers=extra_headers,
    )


def _error_response(exc: ServiceError) -> bytes:
    headers = {}
    if exc.retry_after is not None:
        headers["Retry-After"] = str(max(1, int(round(exc.retry_after))))
    return _json_response(
        exc.status,
        {"error": {"code": exc.code, "message": str(exc)}},
        extra_headers=headers,
    )


class SchedulingService:
    """Wires queue, store, caches, workers and the HTTP front-end."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        spool: str | None = None,
        queue_limit: int = 256,
        tenant_quota: int = 64,
        result_cache_size: int = 256,
        warm_max_problems: int = 32,
        eval_cache_entries: int = 65_536,
        retry_after: float = 1.0,
        trace_dir: str | None = None,
        slo_interval: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.metrics = MetricsRegistry()
        self.metrics_lock = threading.Lock()
        self.store = JobStore(spool)
        self.queue = FairQueue(
            max_depth=queue_limit,
            tenant_quota=tenant_quota,
            retry_after=retry_after,
            metrics=self.metrics,
            metrics_lock=self.metrics_lock,
        )
        self.result_cache = ResultCache(result_cache_size)
        self.trace_dir = (
            Path(trace_dir) if trace_dir is not None else None
        )
        # the front-end's own shard: append-mode so ``request`` events
        # from every daemon generation share one file across restarts
        self.tracer = (
            Tracer(self.trace_dir / "server.jsonl", append=True)
            if self.trace_dir is not None
            else None
        )
        self.pool = WorkerPool(
            self.queue,
            self.store,
            self.result_cache,
            workers=workers,
            metrics=self.metrics,
            metrics_lock=self.metrics_lock,
            warm_max_problems=warm_max_problems,
            eval_cache_entries=eval_cache_entries,
            trace_dir=trace_dir,
        )
        self.slo = SLOEngine(default_service_slos())
        self.slo_interval = float(slo_interval)
        if spool is not None:
            # on any crash-point exit the in-memory flight ring lands
            # next to the spool for the postmortem
            arm_crash_dump(Path(spool) / "flight")
        self.draining = False
        self.started_at = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._drained = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self.bound_port: int | None = None

    # ------------------------------------------------------------------
    def recover_spool(self) -> int:
        """Re-enqueue unfinished jobs left behind by a previous daemon."""
        recovered = 0
        pending = self.store.recover()
        if self.store.quarantined:
            with self.metrics_lock:
                self.metrics.counter(
                    "service.spool.quarantined",
                    help="corrupt spool records moved to quarantine",
                ).inc(len(self.store.quarantined))
        for job in pending:
            try:
                self.queue.put(
                    job,
                    tenant=job.request.tenant,
                    priority=job.request.priority,
                )
            except ServiceError:
                break  # queue full: remaining jobs stay spooled
            job.state = "queued"
            self.store.persist(job)
            recovered += 1
        return recovered

    # -- tracing -------------------------------------------------------
    def _trace_request(
        self, request, outcome: str, status: int
    ) -> None:
        """Stamp one ``request`` event into the server shard.

        Each event carries an explicit ctx: a span derived from the
        request's root context plus the shard's next file-local id —
        unique across daemon restarts (append mode resumes ids), while
        the *structure* (one request child under the root, in emission
        order) stays deterministic for same-seed runs.  Tracing must
        never fail a submission, so trace-file trouble is swallowed.
        """
        if self.tracer is None:
            return
        root = request_trace_context(request)
        span = derive_span_id(
            root.trace_id,
            f"{root.span_id}/http-{self.tracer.next_span}",
        )
        try:
            self.tracer.event(
                "request",
                attrs={
                    "outcome": outcome,
                    "status": status,
                    "tenant": request.tenant,
                    "priority": request.priority,
                },
                ctx=TraceContext(
                    trace_id=root.trace_id,
                    span_id=span,
                    parent_id=root.span_id,
                ),
            )
        except TraceError:  # pragma: no cover - disk trouble
            pass

    # -- submission ----------------------------------------------------
    def submit(self, doc: Any) -> tuple[int, dict[str, Any], Job | None]:
        """Handle one POST body; returns (status, response doc, job)."""
        request = parse_request(doc)
        with self.metrics_lock:
            self.metrics.counter("service.jobs.submitted").inc()
        if self.draining:
            self._trace_request(request, "rejected", 503)
            raise ServiceError(
                "service is draining; not accepting new jobs",
                code="draining",
                status=503,
                retry_after=self.queue.retry_after,
            )
        # idempotent resubmission: a retried POST (same client-supplied
        # key) returns the ORIGINAL job — whatever state it is in —
        # instead of enqueuing a twin.  Checked before the result cache
        # so the client always gets back the job id it first created.
        original = self.store.find_idempotent(request.idempotency_key)
        if original is not None:
            if original.key != result_key(request):
                self._trace_request(request, "rejected", 409)
                raise ServiceError(
                    f"idempotency key "
                    f"{request.idempotency_key!r} was already used "
                    f"for a different request",
                    code="idempotency-mismatch",
                    status=409,
                )
            with self.metrics_lock:
                self.metrics.counter(
                    "service.jobs.deduplicated",
                    help="submissions answered by an existing job "
                    "via idempotency key",
                ).inc()
            status = 200 if original.done_event.is_set() else 202
            self._trace_request(request, "deduplicated", status)
            doc_out = self._job_doc(original)
            doc_out["deduplicated"] = True
            return status, doc_out, original
        key = result_key(request)
        cached = self.result_cache.get(key)
        if cached is not None:
            # answered on the event loop: no queue, no worker, no run
            job = self.store.create(request)
            job.state = "done"
            job.started_at = job.submitted_at
            job.finished_at = time.time()
            job.served_from = "result-cache"
            job.result = cached
            job.done_event.set()
            self.store.persist(job)
            total = job.finished_at - job.submitted_at
            with self.metrics_lock:
                self.metrics.counter("service.jobs.completed").inc()
                self.metrics.counter(
                    "service.jobs.served_from_cache"
                ).inc()
                self.metrics.histogram(
                    "service.request_seconds", buckets=LATENCY_BUCKETS
                ).observe(total)
            self._trace_request(request, "result-cache", 200)
            return 200, self._job_doc(job), job
        job = self.store.create(request)
        try:
            self.queue.put(
                job, tenant=request.tenant, priority=request.priority
            )
        except ServiceError:
            job.state = "failed"
            job.error = {"code": "queue-full", "message": "backpressure"}
            self.store.persist(job)
            with self.metrics_lock:
                self.metrics.counter("service.jobs.rejected").inc()
            self._trace_request(request, "rejected", 429)
            flight_record(
                "server", "submission rejected", job_id=job.id
            )
            raise
        self._trace_request(request, "accepted", 202)
        # the job is durable and queued but the 202 has not been sent:
        # dying here is the "ack lost" half of exactly-once, which the
        # idempotency index turns into a dedupe on the client's retry
        crash_point("post-enqueue")
        return 202, self._job_doc(job), job

    def _job_doc(self, job: Job) -> dict[str, Any]:
        doc = {"job": job.summary()}
        if job.result is not None:
            doc["result"] = job.result
        if job.error is not None:
            doc["error"] = job.error
        return doc

    # -- introspection -------------------------------------------------
    def sample_slo(self) -> list[dict[str, Any]]:
        """Feed the SLO engine one metrics snapshot; return the report.

        Called by the background sampler on a cadence and by ``stats``
        / ``metrics`` on demand, so a fresh daemon answers with current
        numbers before the first tick.
        """
        with self.metrics_lock:
            snapshot = self.metrics.snapshot()
        self.slo.observe(snapshot)
        return self.slo.report()

    def stats(self) -> dict[str, Any]:
        slo_report = self.sample_slo()
        with self.metrics_lock:
            p50 = p99 = 0.0
            if "service.request_seconds" in self.metrics:
                hist = self.metrics.get("service.request_seconds")
                p50 = hist.quantile(0.5)
                p99 = hist.quantile(0.99)
        return {
            "uptime_seconds": time.time() - self.started_at,
            "draining": self.draining,
            "queue": {
                "depth": self.queue.depth,
                "max_depth": self.queue.max_depth,
                "tenant_quota": self.queue.tenant_quota,
            },
            "jobs": len(self.store),
            "running": len(self.pool.running_jobs()),
            "result_cache": self.result_cache.snapshot(),
            "latency": {"p50_seconds": p50, "p99_seconds": p99},
            "slo": slo_report,
        }

    def render_metrics(self) -> str:
        slo_report = self.sample_slo()
        with self.metrics_lock:
            self.metrics.gauge(
                "service.queue.depth",
                help="jobs currently queued",
            ).set(self.queue.depth)
            self.metrics.gauge(
                "service.jobs.running",
                help="jobs currently executing",
            ).set(len(self.pool.running_jobs()))
            for row in slo_report:
                prefix = f"slo.{row['name']}"
                self.metrics.gauge(
                    f"{prefix}.compliance",
                    help=row["description"],
                ).set(row["compliance"])
                self.metrics.gauge(
                    f"{prefix}.budget_remaining",
                    help="fraction of the error budget left",
                ).set(row["budget_remaining"])
                self.metrics.gauge(
                    f"{prefix}.alerting",
                    help="1 while every burn window exceeds the "
                    "alert threshold",
                ).set(1.0 if row["alerting"] else 0.0)
                for window, burn in row["burn_rates"].items():
                    self.metrics.gauge(
                        f"{prefix}.burn.{window}",
                        help="error-budget burn rate over the window",
                    ).set(burn)
            return self.metrics.render_prometheus()

    # -- HTTP ----------------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader):
        header = await reader.readuntil(b"\r\n\r\n")
        head, _, _ = header.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise ServiceError(
                "malformed request line", code="bad-request", status=400
            ) from None
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise ServiceError(
                f"request body too large ({length} bytes)",
                code="too-large",
                status=413,
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    method, target, headers, body = (
                        await self._read_request(reader)
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    break
                except ServiceError as exc:
                    writer.write(_error_response(exc))
                    await writer.drain()
                    break
                response = await self._route(method, target, body)
                writer.write(response)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, method: str, target: str, body: bytes) -> bytes:
        path, _, query = target.partition("?")
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                k, _, v = pair.partition("=")
                params[k] = v
        try:
            if method == "POST" and path == "/v1/jobs":
                return await self._post_job(body, params)
            if method == "GET" and path.startswith("/v1/jobs/"):
                return self._get_job(path[len("/v1/jobs/"):])
            if method == "GET" and path == "/v1/jobs":
                return _json_response(
                    200,
                    {"jobs": [j.summary() for j in self.store.jobs()]},
                )
            if method == "GET" and path == "/v1/stats":
                return _json_response(200, self.stats())
            if method == "GET" and path == "/metrics":
                return _http_response(
                    200,
                    self.render_metrics().encode("utf-8"),
                    content_type="text/plain; version=0.0.4",
                )
            if method == "GET" and path == "/healthz":
                return _json_response(
                    200 if not self.draining else 503,
                    {"status": "draining" if self.draining else "ok"},
                )
            return _json_response(
                404,
                {
                    "error": {
                        "code": "not-found",
                        "message": f"no route for {method} {path}",
                    }
                },
            )
        except ServiceError as exc:
            return _error_response(exc)
        except Exception as exc:  # pragma: no cover - defensive
            return _json_response(
                500,
                {"error": {"code": "internal", "message": str(exc)}},
            )

    async def _post_job(self, body: bytes, params: dict) -> bytes:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"request body is not valid JSON: {exc}",
                code="bad-request",
                status=400,
            ) from None
        status, response, job = self.submit(doc)
        wait = params.get("wait")
        if status == 202 and wait is not None and job is not None:
            try:
                budget = min(float(wait), 600.0)
            except ValueError:
                budget = 0.0
            deadline = time.monotonic() + budget
            while (
                not job.done_event.is_set()
                and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.005)
            if job.done_event.is_set():
                status = 200
            response = self._job_doc(job)
        return _json_response(status, response)

    def _get_job(self, job_id: str) -> bytes:
        job = self.store.get(job_id)
        if job is None:
            return _json_response(
                404,
                {
                    "error": {
                        "code": "unknown-job",
                        "message": f"no job {job_id!r}",
                    }
                },
            )
        return _json_response(200, self._job_doc(job))

    # -- lifecycle -----------------------------------------------------
    async def _slo_sampler(self) -> None:
        """Feed the SLO engine on a cadence until the drain completes."""
        try:
            while not self._drained.is_set():
                self.sample_slo()
                await asyncio.sleep(self.slo_interval)
        except asyncio.CancelledError:  # pragma: no cover - shutdown
            pass

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        recovered = self.recover_spool()
        flight_record(
            "server", "daemon starting", recovered=recovered
        )
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._slo_task = asyncio.ensure_future(self._slo_sampler())
        if recovered:
            print(f"recovered {recovered} unfinished job(s) from spool")
        print(
            f"repro-emts service listening on "
            f"http://{self.host}:{self.bound_port}",
            flush=True,
        )

    def initiate_drain(self) -> None:
        if self.draining:
            return
        self.draining = True
        print("drain requested: finishing in-flight work", flush=True)
        flight_record(
            "server",
            "drain requested",
            queued=self.queue.depth,
            running=len(self.pool.running_jobs()),
        )
        if self.tracer is not None:
            try:
                # context-free by design: a drain belongs to the daemon,
                # not to any one request's tree
                self.tracer.event(
                    "drain",
                    attrs={
                        "queued": self.queue.depth,
                        "running": len(self.pool.running_jobs()),
                    },
                )
            except TraceError:  # pragma: no cover - disk trouble
                pass
        self.pool.initiate_drain()
        # stop events are set but nothing has checkpointed or joined
        # yet: dying here models SIGKILL landing mid-graceful-shutdown
        crash_point("mid-drain")

        async def _finish() -> None:
            # workers stop at the next generation boundary; join them
            # off-loop so the event loop keeps answering polls
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.stop
            )
            self._drained.set()

        asyncio.ensure_future(_finish())

    def request_drain(self) -> None:
        """Thread-safe drain trigger (tests, embedding harnesses)."""
        assert self._loop is not None, "service not started"
        self._loop.call_soon_threadsafe(self.initiate_drain)

    async def serve_until_drained(self) -> None:
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.initiate_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / exotic platform
        await self._drained.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        if self.tracer is not None:
            self.tracer.close()
        print("drain complete; daemon exiting", flush=True)


def serve(**kwargs) -> int:
    """Blocking entry point used by ``repro-emts serve``."""
    service = SchedulingService(**kwargs)
    try:
        asyncio.run(service.serve_until_drained())
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    return 0
