"""The service's two cache tiers.

Warm tier (per worker, no locking)
    :class:`WarmCache` maps :func:`~repro.service.protocol.problem_digest`
    to a :class:`PreparedProblem`: the parsed PTG, the built
    :class:`~repro.timemodels.TimeTable`, the compiled scheduling-kernel
    binding (built once per table via ``kernel_for``) and a persistent
    :class:`~repro.core.MemoizedEvaluator` shard whose contents survive
    across requests — a repeated seed on a known problem replays fitness
    values out of the shard instead of re-running the mapper.

Result tier (shared, locked)
    :class:`ResultCache` maps :func:`~repro.service.protocol.result_key`
    to the finished deterministic ``result`` document.  An exact repeat
    request is answered without touching the queue or a worker at all.

Both tiers are bounded LRUs with hit/miss/eviction accounting.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..core import MemoizedEvaluator
from ..graph import ptg_from_dict
from ..mapping.kernel import kernel_for
from ..platform import by_name
from ..timemodels import TimeTable
from .protocol import ScheduleRequest, problem_digest

__all__ = [
    "PreparedProblem",
    "prepare_problem",
    "WarmCache",
    "ResultCache",
    "CacheStats",
]

DEFAULT_WARM_PROBLEMS = 32
DEFAULT_RESULT_ENTRIES = 256
DEFAULT_EVAL_CACHE_ENTRIES = 65_536


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class PreparedProblem:
    """Everything reusable across requests for one problem digest."""

    digest: str
    ptg: Any
    cluster: Any
    table: TimeTable
    build_seconds: float
    eval_cache: MemoizedEvaluator | None = None
    eval_cache_entries: int = DEFAULT_EVAL_CACHE_ENTRIES
    runs: int = 0

    def evaluator_wrapper(self, inner):
        """Splice the persistent fitness-cache shard into an EMTS run.

        Passed as ``EMTS.schedule(evaluator_wrapper=...)``; the first
        run creates the shard around whatever evaluator stack the run
        built, later runs rebind the shard to the fresh stack while
        keeping its contents.
        """
        if self.eval_cache is None:
            self.eval_cache = MemoizedEvaluator(
                inner, max_entries=self.eval_cache_entries
            )
        else:
            self.eval_cache.rebind(inner)
        return self.eval_cache


def prepare_problem(
    request: ScheduleRequest,
    *,
    eval_cache_entries: int = DEFAULT_EVAL_CACHE_ENTRIES,
) -> PreparedProblem:
    """Cold path: parse, build the table and warm the kernel binding."""
    # imported here to avoid a module cycle (cli -> service -> cli)
    from ..cli import _make_model

    t0 = time.perf_counter()
    ptg = ptg_from_dict(request.ptg_doc)
    cluster = by_name(request.platform)
    model = _make_model(request.model)
    table = TimeTable.build(model, ptg, cluster)
    # bind (and if necessary compile) the native kernel now, so request
    # latency never pays for it again on this problem
    kernel_for(table)
    return PreparedProblem(
        digest=problem_digest(request),
        ptg=ptg,
        cluster=cluster,
        table=table,
        build_seconds=time.perf_counter() - t0,
        eval_cache_entries=eval_cache_entries,
    )


class WarmCache:
    """Per-worker LRU of :class:`PreparedProblem` (thread-confined)."""

    def __init__(
        self,
        max_problems: int = DEFAULT_WARM_PROBLEMS,
        *,
        eval_cache_entries: int = DEFAULT_EVAL_CACHE_ENTRIES,
    ) -> None:
        if max_problems < 1:
            raise ValueError(
                f"WarmCache needs max_problems >= 1, got {max_problems}"
            )
        self.max_problems = int(max_problems)
        self.eval_cache_entries = int(eval_cache_entries)
        self.stats = CacheStats()
        self._problems: OrderedDict[str, PreparedProblem] = OrderedDict()

    def __len__(self) -> int:
        return len(self._problems)

    def get_or_prepare(self, request: ScheduleRequest) -> PreparedProblem:
        digest = problem_digest(request)
        prepared = self._problems.get(digest)
        if prepared is not None:
            self.stats.hits += 1
            self._problems.move_to_end(digest)
            return prepared
        self.stats.misses += 1
        prepared = prepare_problem(
            request, eval_cache_entries=self.eval_cache_entries
        )
        self._problems[digest] = prepared
        while len(self._problems) > self.max_problems:
            _, evicted = self._problems.popitem(last=False)
            if evicted.eval_cache is not None:
                evicted.eval_cache.close()
            self.stats.evictions += 1
        return prepared


class ResultCache:
    """Shared LRU mapping result keys to deterministic result documents.

    Thread-safe: the event loop reads it on every submission and worker
    threads write finished results into it.  Stored documents are
    treated as immutable — callers must not mutate what ``get`` returns.
    """

    def __init__(self, max_entries: int = DEFAULT_RESULT_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(
                f"ResultCache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key: str, result: dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            doc = self.stats.snapshot()
            doc["entries"] = len(self._entries)
            return doc
