"""Small synchronous client for the scheduling service.

Built on :mod:`http.client` only (no third-party HTTP stack) so the
``repro-emts submit`` CLI and the load-bench harness share one tested
code path.  Errors map to typed exceptions carrying the server's error
code and ``Retry-After`` hint.

Every submission is also where a distributed trace is *born*: unless
the caller minted one, :meth:`ServiceClient.submit` stamps the wire
document with a ``trace`` context whose ids derive from the request's
semantic fields — deterministic, so the same request traces under the
same id on every run, and the server, spool and workers all parent
their spans under it.
"""

from __future__ import annotations

import http.client
import json
import math
import time
from typing import Any

from ..exceptions import ServiceError
from ..obs.trace import derive_span_id, derive_trace_id

__all__ = [
    "ServiceClient",
    "ServiceUnavailable",
    "QueueFullError",
    "JobTimeout",
    "mint_trace_field",
]


def mint_trace_field(request_doc: dict[str, Any]) -> dict[str, str]:
    """A deterministic ``trace`` wire field for one request document.

    Hashes the document's semantic keys (the same set
    :func:`repro.service.protocol.result_key` consumes) — never the
    idempotency key or routing metadata — so retries, requeues and
    same-seed reruns all land under one trace id.  Kept here rather
    than in :mod:`.protocol` so the client needs no request parsing.
    """
    # mirror of protocol.SEMANTIC_KEYS; inlined to keep this module's
    # import graph stdlib-only-shallow for the chaos harness
    semantic = {
        key: request_doc.get(key)
        for key in (
            "ptg",
            "platform",
            "model",
            "algorithm",
            "seed",
            "generations",
            "max_wall_time",
        )
    }
    fingerprint = json.dumps(
        semantic, sort_keys=True, separators=(",", ":"), default=str
    )
    trace_id = derive_trace_id("submit", fingerprint)
    return {
        "trace_id": trace_id,
        "span_id": derive_span_id(trace_id, "request"),
    }


class ServiceUnavailable(ServiceError):
    """Connection refused / 5xx — the daemon is not serving."""

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(
            message, code="unavailable", status=503, retry_after=retry_after
        )


class QueueFullError(ServiceError):
    """429 backpressure from the daemon."""

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(
            message, code="queue-full", status=429, retry_after=retry_after
        )


class JobTimeout(ServiceError):
    """The job did not finish within the client's polling budget."""

    def __init__(self, message: str):
        super().__init__(message, code="timeout", status=504)


class ServiceClient:
    """Talk to one ``repro-emts serve`` daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                raise ServiceUnavailable(
                    f"cannot reach service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = {"raw": raw.decode("utf-8", "replace")}
            return resp.status, resp_headers, doc
        finally:
            conn.close()

    @staticmethod
    def _retry_after(headers: dict[str, str]) -> float | None:
        """Parse a ``Retry-After`` header into seconds, defensively.

        The header crosses a trust boundary (any proxy or middlebox can
        rewrite it), so every malformed shape — non-numeric, negative,
        NaN, overflowing to infinity — degrades to ``None`` (no hint)
        rather than surfacing an exception or a nonsense sleep.
        """
        value = headers.get("retry-after")
        if value is None:
            return None
        try:
            seconds = float(value)
        except (TypeError, ValueError, OverflowError):
            return None
        if not math.isfinite(seconds) or seconds < 0:
            return None
        return seconds

    def _raise_for(self, status: int, headers: dict, doc: dict) -> None:
        error = doc.get("error", {}) if isinstance(doc, dict) else {}
        message = error.get("message", f"HTTP {status}")
        if status == 429:
            raise QueueFullError(message, self._retry_after(headers))
        if status == 503:
            raise ServiceUnavailable(message, self._retry_after(headers))
        raise ServiceError(
            message, code=error.get("code", "error"), status=status
        )

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        status, headers, doc = self._request("GET", "/healthz")
        if status != 200:
            self._raise_for(status, headers, doc)
        return doc

    def stats(self) -> dict[str, Any]:
        status, headers, doc = self._request("GET", "/v1/stats")
        if status != 200:
            self._raise_for(status, headers, doc)
        return doc

    def metrics_text(self) -> str:
        status, headers, doc = self._request("GET", "/metrics")
        if status != 200:
            self._raise_for(status, headers, doc)
        return doc.get("raw", "")

    # ------------------------------------------------------------------
    def submit(
        self, request_doc: dict[str, Any], wait: float | None = None
    ) -> dict[str, Any]:
        """POST one scheduling request; returns the job document.

        ``wait`` asks the server to hold the connection until the job
        finishes (bounded); the returned document then carries the
        result inline.  Raises :class:`QueueFullError` on backpressure
        and :class:`ServiceUnavailable` while draining/down.

        A ``trace`` context is minted (deterministically, from the
        semantic fields) unless the document already carries one.
        """
        if "trace" not in request_doc:
            request_doc = dict(request_doc)
            request_doc["trace"] = mint_trace_field(request_doc)
        path = "/v1/jobs"
        if wait is not None:
            path += f"?wait={float(wait)}"
        status, headers, doc = self._request("POST", path, body=request_doc)
        if status in (200, 202):
            return doc
        self._raise_for(status, headers, doc)
        raise AssertionError("unreachable")

    def get_job(self, job_id: str) -> dict[str, Any]:
        status, headers, doc = self._request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            self._raise_for(status, headers, doc)
        return doc

    def wait_for(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state.

        Raises :class:`JobTimeout` if it is still pending at the
        deadline (exit code 124 in the CLI).
        """
        deadline = time.monotonic() + float(timeout)
        while True:
            doc = self.get_job(job_id)
            state = doc.get("job", {}).get("state")
            if state in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise JobTimeout(
                    f"job {job_id} still {state!r} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def schedule(
        self,
        request_doc: dict[str, Any],
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> dict[str, Any]:
        """Submit and block until done (server wait + client polling)."""
        server_wait = min(float(timeout), 30.0)
        doc = self.submit(request_doc, wait=server_wait)
        job = doc.get("job", {})
        if job.get("state") in ("done", "failed"):
            return doc
        remaining = max(0.0, timeout - server_wait)
        return self.wait_for(
            job["id"], timeout=remaining, poll_interval=poll_interval
        )
