"""Scheduling-as-a-service: the ``repro-emts serve`` daemon.

High-throughput front-end over the EMTS stack: an asyncio HTTP/JSON
server (:mod:`.server`) backed by warm worker threads (:mod:`.worker`),
a per-tenant fair queue with backpressure (:mod:`.queue`), two cache
tiers (:mod:`.cache` — prepared problems + finished results), a
crash-only job spool (:mod:`.jobs`) and a small client (:mod:`.client`)
used by ``repro-emts submit`` and the load bench.
"""

from .cache import (
    CacheStats,
    PreparedProblem,
    ResultCache,
    WarmCache,
    prepare_problem,
)
from .client import (
    JobTimeout,
    QueueFullError,
    ServiceClient,
    ServiceUnavailable,
    mint_trace_field,
)
from .jobs import DEFAULT_IDEMPOTENCY_ENTRIES, JOB_STATES, Job, JobStore
from .protocol import (
    KNOWN_ALGORITHMS,
    KNOWN_MODELS,
    KNOWN_PLATFORMS,
    PROTOCOL_VERSION,
    SEMANTIC_KEYS,
    ScheduleRequest,
    canonical_json,
    parse_request,
    problem_digest,
    request_trace_context,
    result_key,
)
from .queue import QUEUE_WAIT_BUCKETS, FairQueue, QueueFull
from .retry import (
    DEFAULT_RETRY_LEDGER,
    RetryingServiceClient,
    RetryPolicy,
    RetryStats,
    new_idempotency_key,
)
from .server import SchedulingService, serve
from .worker import WorkerPool, run_request

__all__ = [
    "ScheduleRequest",
    "parse_request",
    "problem_digest",
    "result_key",
    "canonical_json",
    "request_trace_context",
    "mint_trace_field",
    "SEMANTIC_KEYS",
    "QUEUE_WAIT_BUCKETS",
    "PROTOCOL_VERSION",
    "KNOWN_ALGORITHMS",
    "KNOWN_MODELS",
    "KNOWN_PLATFORMS",
    "PreparedProblem",
    "prepare_problem",
    "WarmCache",
    "ResultCache",
    "CacheStats",
    "FairQueue",
    "QueueFull",
    "Job",
    "JobStore",
    "JOB_STATES",
    "DEFAULT_IDEMPOTENCY_ENTRIES",
    "WorkerPool",
    "run_request",
    "SchedulingService",
    "serve",
    "ServiceClient",
    "ServiceUnavailable",
    "QueueFullError",
    "JobTimeout",
    "RetryPolicy",
    "RetryingServiceClient",
    "RetryStats",
    "DEFAULT_RETRY_LEDGER",
    "new_idempotency_key",
]
