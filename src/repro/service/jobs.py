"""Job lifecycle and crash-only spool persistence.

A job moves through ``queued -> running -> done`` (or ``failed``), with
one extra state — ``interrupted`` — for jobs stopped at a generation
boundary by a drain: their EMTS checkpoint (written by the run itself,
PR 3 machinery) lives next to the job record, and a restarted daemon
re-enqueues them and resumes bit-identically.

Persistence is a spool directory of one JSON file per job, written
atomically (temp file + ``os.replace``), so a crash at any instant
leaves either the old or the new record — never a torn one.  Passing
``spool=None`` runs the store fully in memory (tests, ephemeral
benches).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..exceptions import ServiceError
from .protocol import ScheduleRequest, parse_request, result_key

__all__ = ["Job", "JobStore", "JOB_STATES"]

JOB_STATES = ("queued", "running", "interrupted", "done", "failed")


@dataclass
class Job:
    """One scheduling request travelling through the service."""

    id: str
    request: ScheduleRequest
    state: str = "queued"
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    served_from: str = "run"  # "run" | "result-cache" | "resume"
    attempts: int = 0
    done_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    stop_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def key(self) -> str:
        return result_key(self.request)

    def wait_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def total_seconds(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Small status document (job listing, poll responses)."""
        return {
            "id": self.id,
            "state": self.state,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
            "algorithm": self.request.algorithm,
            "seed": self.request.seed,
            "served_from": self.served_from,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def to_dict(self) -> dict[str, Any]:
        """Full persistent record (spool file content)."""
        doc = self.summary()
        doc["request"] = {
            "ptg": self.request.ptg_doc,
            "platform": self.request.platform,
            "model": self.request.model,
            "algorithm": self.request.algorithm,
            "seed": self.request.seed,
            "generations": self.request.generations,
            "max_wall_time": self.request.max_wall_time,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
        }
        doc["result"] = self.result
        doc["error"] = self.error
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Job":
        state = doc.get("state", "queued")
        if state not in JOB_STATES:
            raise ServiceError(
                f"job record has unknown state {state!r}",
                code="corrupt-job",
                status=500,
            )
        job = cls(
            id=str(doc["id"]),
            request=parse_request(doc["request"]),
            state=state,
            result=doc.get("result"),
            error=doc.get("error"),
            submitted_at=float(doc.get("submitted_at", 0.0)),
            started_at=doc.get("started_at"),
            finished_at=doc.get("finished_at"),
            served_from=doc.get("served_from", "run"),
            attempts=int(doc.get("attempts", 0)),
        )
        if job.state in ("done", "failed"):
            job.done_event.set()
        return job


def new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


class JobStore:
    """Registry of jobs plus (optionally) their on-disk spool records."""

    def __init__(self, spool: str | Path | None = None) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self.spool = Path(spool) if spool is not None else None
        if self.spool is not None:
            (self.spool / "jobs").mkdir(parents=True, exist_ok=True)
            (self.spool / "checkpoints").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def checkpoint_path(self, job: Job) -> Path | None:
        """Where the job's EMTS run journals its resumable checkpoint."""
        if self.spool is None:
            return None
        return self.spool / "checkpoints" / f"{job.id}.json"

    def _record_path(self, job_id: str) -> Path:
        assert self.spool is not None
        return self.spool / "jobs" / f"{job_id}.json"

    # ------------------------------------------------------------------
    def create(self, request: ScheduleRequest) -> Job:
        job = Job(
            id=new_job_id(), request=request, submitted_at=time.time()
        )
        with self._lock:
            self._jobs[job.id] = job
        self.persist(job)
        return job

    def adopt(self, job: Job) -> None:
        """Register a job recovered from the spool."""
        with self._lock:
            self._jobs[job.id] = job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.submitted_at
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    def persist(self, job: Job) -> None:
        """Atomically write the job's spool record (no-op in-memory)."""
        if self.spool is None:
            return
        path = self._record_path(job.id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(job.to_dict(), sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)

    def forget_checkpoint(self, job: Job) -> None:
        """Delete the job's checkpoint once it finished cleanly."""
        path = self.checkpoint_path(job)
        if path is not None:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def recover(self) -> list[Job]:
        """Load every unfinished job from the spool, oldest first.

        ``running`` records (daemon died mid-run without a clean drain)
        come back as ``queued``/``interrupted`` depending on whether
        their run left a resumable checkpoint behind.
        """
        if self.spool is None:
            return []
        pending: list[Job] = []
        for path in sorted((self.spool / "jobs").glob("*.json")):
            try:
                job = Job.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except Exception:
                # a torn record cannot exist (atomic writes); anything
                # unreadable here was tampered with — skip, don't crash
                continue
            self.adopt(job)
            if job.state in ("done", "failed"):
                continue
            ckpt = self.checkpoint_path(job)
            if job.state == "running":
                job.state = (
                    "interrupted"
                    if ckpt is not None and ckpt.exists()
                    else "queued"
                )
                self.persist(job)
            pending.append(job)
        return pending
