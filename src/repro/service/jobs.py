"""Job lifecycle and crash-only spool persistence.

A job moves through ``queued -> running -> done`` (or ``failed``), with
one extra state — ``interrupted`` — for jobs stopped at a generation
boundary by a drain: their EMTS checkpoint (written by the run itself,
PR 3 machinery) lives next to the job record, and a restarted daemon
re-enqueues them and resumes bit-identically.

Persistence is a spool directory of one JSON file per job, written
atomically (temp file + ``os.replace``), so a crash at any instant
leaves either the old or the new record — never a torn one.  Passing
``spool=None`` runs the store fully in memory (tests, ephemeral
benches).

Two durability mechanisms live here beyond the basic spool:

* **Idempotency index** — every job whose request carried an
  ``idempotency_key`` is registered in an LRU-bounded key → job map.
  A retried submit after an ambiguous failure (connection dropped
  after the POST landed) finds the original job instead of enqueuing a
  twin.  The index is derived state: it is rebuilt from the spool
  records on :meth:`JobStore.recover`, so dedupe survives a daemon
  restart without its own persistence (and therefore cannot itself be
  torn by a crash).

* **Quarantine** — :meth:`JobStore.recover` moves unreadable spool
  records (zero-byte, truncated, tampered) and orphaned ``.json.tmp``
  partial-rename debris into ``spool/quarantine/`` instead of raising:
  one corrupt record must never poison recovery of the healthy ones.
  The daemon surfaces the count as ``service.spool.quarantined``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..exceptions import ServiceError
from ..util.crash import crash_point
from .protocol import ScheduleRequest, parse_request, result_key

__all__ = ["Job", "JobStore", "JOB_STATES", "DEFAULT_IDEMPOTENCY_ENTRIES"]

#: Bound of the idempotency key -> job id LRU index.  Sized for hours
#: of retry windows, not forever: a key evicted here can in the worst
#: case duplicate a *finished* job (a fresh run of a deterministic
#: request — same bits, wasted work), never lose one.
DEFAULT_IDEMPOTENCY_ENTRIES = 4096

JOB_STATES = ("queued", "running", "interrupted", "done", "failed")


@dataclass
class Job:
    """One scheduling request travelling through the service."""

    id: str
    request: ScheduleRequest
    state: str = "queued"
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    served_from: str = "run"  # "run" | "result-cache" | "resume"
    attempts: int = 0
    done_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    stop_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def key(self) -> str:
        return result_key(self.request)

    def wait_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def total_seconds(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Small status document (job listing, poll responses)."""
        return {
            "id": self.id,
            "state": self.state,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
            "algorithm": self.request.algorithm,
            "seed": self.request.seed,
            "served_from": self.served_from,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def to_dict(self) -> dict[str, Any]:
        """Full persistent record (spool file content)."""
        doc = self.summary()
        doc["request"] = {
            "ptg": self.request.ptg_doc,
            "platform": self.request.platform,
            "model": self.request.model,
            "algorithm": self.request.algorithm,
            "seed": self.request.seed,
            "generations": self.request.generations,
            "max_wall_time": self.request.max_wall_time,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
            "idempotency_key": self.request.idempotency_key,
        }
        if self.request.trace_id and self.request.trace_span:
            # the trace context survives the spool: a restarted daemon
            # re-parents the recovered run under the original request
            doc["request"]["trace"] = {
                "trace_id": self.request.trace_id,
                "span_id": self.request.trace_span,
            }
        doc["result"] = self.result
        doc["error"] = self.error
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Job":
        state = doc.get("state", "queued")
        if state not in JOB_STATES:
            raise ServiceError(
                f"job record has unknown state {state!r}",
                code="corrupt-job",
                status=500,
            )
        job = cls(
            id=str(doc["id"]),
            request=parse_request(doc["request"]),
            state=state,
            result=doc.get("result"),
            error=doc.get("error"),
            submitted_at=float(doc.get("submitted_at", 0.0)),
            started_at=doc.get("started_at"),
            finished_at=doc.get("finished_at"),
            served_from=doc.get("served_from", "run"),
            attempts=int(doc.get("attempts", 0)),
        )
        if job.state in ("done", "failed"):
            job.done_event.set()
        return job


def new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


class JobStore:
    """Registry of jobs plus (optionally) their on-disk spool records."""

    def __init__(
        self,
        spool: str | Path | None = None,
        *,
        idempotency_entries: int = DEFAULT_IDEMPOTENCY_ENTRIES,
    ) -> None:
        if idempotency_entries < 1:
            raise ServiceError(
                f"idempotency_entries must be >= 1, "
                f"got {idempotency_entries}",
                code="bad-config",
                status=500,
            )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: idempotency key -> job id, LRU-bounded (oldest key evicted)
        self._idempotency: OrderedDict[str, str] = OrderedDict()
        self.idempotency_entries = int(idempotency_entries)
        #: spool records quarantined by the last :meth:`recover` call
        self.quarantined: list[Path] = []
        self.spool = Path(spool) if spool is not None else None
        if self.spool is not None:
            (self.spool / "jobs").mkdir(parents=True, exist_ok=True)
            (self.spool / "checkpoints").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def checkpoint_path(self, job: Job) -> Path | None:
        """Where the job's EMTS run journals its resumable checkpoint."""
        if self.spool is None:
            return None
        return self.spool / "checkpoints" / f"{job.id}.json"

    def _record_path(self, job_id: str) -> Path:
        assert self.spool is not None
        return self.spool / "jobs" / f"{job_id}.json"

    # ------------------------------------------------------------------
    def create(self, request: ScheduleRequest) -> Job:
        job = Job(
            id=new_job_id(), request=request, submitted_at=time.time()
        )
        with self._lock:
            self._jobs[job.id] = job
            self._register_idempotency_locked(job)
        self.persist(job)
        return job

    def adopt(self, job: Job) -> None:
        """Register a job recovered from the spool."""
        with self._lock:
            self._jobs[job.id] = job
            self._register_idempotency_locked(job)

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    # -- idempotent submission -----------------------------------------
    def _register_idempotency_locked(self, job: Job) -> None:
        key = job.request.idempotency_key
        if key is None:
            return
        self._idempotency[key] = job.id
        self._idempotency.move_to_end(key)
        while len(self._idempotency) > self.idempotency_entries:
            self._idempotency.popitem(last=False)

    def find_idempotent(self, key: str | None) -> Job | None:
        """The job a previous submit registered under ``key``, if any.

        A hit refreshes the key's LRU position: a client actively
        retrying a submission keeps its dedupe window open.
        """
        if key is None:
            return None
        with self._lock:
            job_id = self._idempotency.get(key)
            if job_id is None:
                return None
            self._idempotency.move_to_end(key)
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.submitted_at
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    def persist(self, job: Job) -> None:
        """Atomically write the job's spool record (no-op in-memory)."""
        if self.spool is None:
            return
        crash_point("pre-spool-write")
        path = self._record_path(job.id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(job.to_dict(), sort_keys=True), encoding="utf-8"
        )
        crash_point("mid-spool-write")
        os.replace(tmp, path)
        crash_point("post-spool-write")

    def forget_checkpoint(self, job: Job) -> None:
        """Delete the job's checkpoint once it finished cleanly."""
        path = self.checkpoint_path(job)
        if path is not None:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path) -> None:
        """Move an unusable spool file aside, keeping it for forensics."""
        assert self.spool is not None
        qdir = self.spool / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        n = 1
        while target.exists():  # same-named record from an older crash
            target = qdir / f"{path.name}.{n}"
            n += 1
        try:
            os.replace(path, target)
        except OSError:
            return  # vanished (or unmovable): nothing left to poison
        self.quarantined.append(target)
        # park the flight ring next to the debris: the record can no
        # longer say what happened to it, but the process's last moves
        # leading up to the quarantine can
        try:
            from ..obs.flight import flight_recorder

            flight_recorder().record(
                "spool", "quarantined record", file=path.name
            )
            flight_recorder().dump(
                target.with_name(target.name + ".flight.json"),
                reason=f"quarantine:{path.name}",
            )
        except Exception:  # pragma: no cover - forensics must not kill
            pass

    def recover(self) -> list[Job]:
        """Load every unfinished job from the spool, oldest first.

        ``running`` records (daemon died mid-run without a clean drain)
        come back as ``queued``/``interrupted`` depending on whether
        their run left a resumable checkpoint behind.

        A torn record cannot exist (atomic writes), so anything
        unreadable here — zero-byte, truncated, tampered, or an
        orphaned ``.json.tmp`` from a crash between temp-write and
        rename — is moved to ``spool/quarantine/`` (never deleted,
        never fatal) and reported via :attr:`quarantined`.
        """
        if self.spool is None:
            return []
        self.quarantined = []
        jobs_dir = self.spool / "jobs"
        # partial-rename debris: the atomic-write temp never made it to
        # its final name, so its content is by definition unacked state
        for tmp in sorted(jobs_dir.glob("*.tmp")):
            self._quarantine(tmp)
        pending: list[Job] = []
        for path in sorted(jobs_dir.glob("*.json")):
            try:
                job = Job.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except Exception:
                self._quarantine(path)
                continue
            self.adopt(job)
            if job.state in ("done", "failed"):
                continue
            ckpt = self.checkpoint_path(job)
            if job.state == "running":
                job.state = (
                    "interrupted"
                    if ckpt is not None and ckpt.exists()
                    else "queued"
                )
                self.persist(job)
            pending.append(job)
        return pending
