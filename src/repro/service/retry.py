"""Resilient client: declarative retries + idempotent submission.

:class:`ServiceClient` is deliberately dumb — one request, one typed
exception.  This module wraps it with the two things a client facing a
crashy network and a crashy daemon actually needs:

* :class:`RetryPolicy` — a declarative description of *how* to retry:
  capped decorrelated-jitter exponential backoff
  (:func:`repro.util.backoff.decorrelated_jitter`), a server
  ``Retry-After`` hint treated as a floor, an overall wall-clock
  deadline, and a **typed ledger** of which exceptions are retry-safe
  (connection failures and backpressure are; 4xx rejections and
  mismatches are not).

* :class:`RetryingServiceClient` — wraps a :class:`ServiceClient` and
  makes every ``submit`` carry a client-generated **idempotency key**.
  That key is what turns blind retries into exactly-once submission:
  after an ambiguous failure (the connection died after the POST
  landed) the retried POST finds the original job on the server and
  returns it, instead of enqueuing a twin that would burn a worker on
  duplicate side effects.

The retry loop never retries a request the ledger marks unsafe, and it
re-raises the *last* typed error once attempts or the deadline run
out, so callers keep the exact exception contract of the plain client.
"""

from __future__ import annotations

import random
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from ..exceptions import ServiceError
from ..util.backoff import decorrelated_jitter
from .client import (
    JobTimeout,
    QueueFullError,
    ServiceClient,
    ServiceUnavailable,
    mint_trace_field,
)

__all__ = [
    "RetryPolicy",
    "RetryingServiceClient",
    "RetryStats",
    "new_idempotency_key",
    "DEFAULT_RETRY_LEDGER",
]

#: The typed ledger of retry safety.  Most-derived match wins (the
#: policy walks each exception's MRO), so ``ServiceUnavailable`` is
#: retried even though its base ``ServiceError`` is not: a 400/404/409
#: means the request itself is wrong and retrying cannot fix it, while
#: unavailability and backpressure are exactly the transients retries
#: exist for.  ``JobTimeout`` is terminal — the polling budget is the
#: caller's, not the transport's.
DEFAULT_RETRY_LEDGER: tuple[tuple[type[Exception], bool], ...] = (
    (ServiceUnavailable, True),
    (QueueFullError, True),
    (JobTimeout, False),
    (ServiceError, False),
    (ConnectionError, True),
    (OSError, True),
)


def new_idempotency_key() -> str:
    """A fresh client-side submission identity (``idem-`` + 32 hex)."""
    return f"idem-{uuid.uuid4().hex}"


@dataclass
class RetryStats:
    """What the retry loop actually did (exposed for tests/benches)."""

    attempts: int = 0
    retries: int = 0
    slept_seconds: float = 0.0
    deduplicated: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "slept_seconds": self.slept_seconds,
            "deduplicated": self.deduplicated,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry behaviour for :class:`RetryingServiceClient`.

    Attributes
    ----------
    max_attempts:
        Total tries per logical request (first call included).
    base / cap:
        Decorrelated-jitter backoff bounds, seconds: every sleep is
        drawn from ``[base, 3 * previous]`` and clamped to ``cap``.
    deadline:
        Overall wall-clock budget for one logical request, including
        sleeps.  When the next sleep would cross it, the last typed
        error is re-raised instead.  ``None`` disables the deadline.
    honor_retry_after:
        Treat a server ``Retry-After`` hint as a *floor* for the next
        sleep (still capped by ``cap`` and the deadline): a polite
        client never comes back earlier than it was asked to.
    ledger:
        ``(exception type, retry-safe?)`` pairs; the most-derived
        match along the raised exception's MRO decides.  Unlisted
        exceptions are never retried.
    seed:
        Seed of the jitter stream — set it to make a retry schedule
        reproducible in tests; ``None`` gives each client fresh
        entropy (the production default: herds must *not* share
        schedules).
    """

    max_attempts: int = 6
    base: float = 0.05
    cap: float = 2.0
    deadline: float | None = 60.0
    honor_retry_after: bool = True
    ledger: tuple[tuple[type[Exception], bool], ...] = field(
        default=DEFAULT_RETRY_LEDGER
    )
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.cap < self.base:
            raise ValueError(
                f"cap must be >= base, "
                f"got cap={self.cap} base={self.base}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be > 0 or None, got {self.deadline}"
            )

    # ------------------------------------------------------------------
    def retryable(self, exc: BaseException) -> bool:
        """Consult the ledger: is retrying this failure safe?"""
        for klass in type(exc).__mro__:
            for entry, safe in self.ledger:
                if klass is entry:
                    return safe
        return False

    def next_delay(
        self,
        rng: random.Random,
        previous: float,
        retry_after: float | None,
    ) -> float:
        """The sleep before the next attempt."""
        delay = decorrelated_jitter(rng, previous, self.base, self.cap)
        if self.honor_retry_after and retry_after is not None:
            delay = max(delay, min(float(retry_after), self.cap))
        return delay


class RetryingServiceClient:
    """A :class:`ServiceClient` that survives transient failure.

    Every ``submit`` injects an idempotency key (unless the request
    document already carries one), so the retry loop can safely re-POST
    after ambiguous failures: the server answers a duplicate key with
    the original job.  GETs (``get_job``, ``healthz``, ``stats``) are
    idempotent by nature and retried without ceremony.

    ``sleep`` and ``clock`` are injectable for tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        timeout: float = 30.0,
        *,
        policy: RetryPolicy | None = None,
        client: ServiceClient | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.inner = (
            client
            if client is not None
            else ServiceClient(host, port, timeout=timeout)
        )
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = RetryStats()
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(self.policy.seed)

    # ------------------------------------------------------------------
    def _with_retry(self, call: Callable[[], Any]) -> Any:
        policy = self.policy
        deadline = (
            self._clock() + policy.deadline
            if policy.deadline is not None
            else None
        )
        previous = policy.base
        attempt = 0
        while True:
            attempt += 1
            self.stats.attempts += 1
            try:
                return call()
            except Exception as exc:
                if not policy.retryable(exc):
                    raise
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.next_delay(
                    self._rng,
                    previous,
                    getattr(exc, "retry_after", None),
                )
                if (
                    deadline is not None
                    and self._clock() + delay > deadline
                ):
                    raise
                previous = delay
                self.stats.retries += 1
                self.stats.slept_seconds += delay
                if delay > 0:
                    self._sleep(delay)

    # ------------------------------------------------------------------
    def submit(
        self, request_doc: dict[str, Any], wait: float | None = None
    ) -> dict[str, Any]:
        """POST one scheduling request, retrying safely.

        The injected idempotency key makes the POST re-sendable: if an
        earlier attempt landed before its connection died, the server
        returns the original job (``"deduplicated": true``) instead of
        creating a twin.  The trace context is minted once, before the
        retry loop, so every re-POST carries the *same* ids and the
        assembled trace shows the whole attempt chain as one request.
        """
        doc = dict(request_doc)
        if not doc.get("idempotency_key"):
            doc["idempotency_key"] = new_idempotency_key()
        if "trace" not in doc:
            doc["trace"] = mint_trace_field(doc)
        result = self._with_retry(
            lambda: self.inner.submit(doc, wait=wait)
        )
        if result.get("deduplicated"):
            self.stats.deduplicated += 1
        return result

    def get_job(self, job_id: str) -> dict[str, Any]:
        return self._with_retry(lambda: self.inner.get_job(job_id))

    def healthz(self) -> dict[str, Any]:
        return self._with_retry(self.inner.healthz)

    def stats_doc(self) -> dict[str, Any]:
        """The daemon's ``/v1/stats`` snapshot (retried)."""
        return self._with_retry(self.inner.stats)

    # ------------------------------------------------------------------
    def wait_for(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> dict[str, Any]:
        """Poll (with per-poll retries) until the job is terminal."""
        poll_deadline = self._clock() + float(timeout)
        while True:
            doc = self.get_job(job_id)
            state = doc.get("job", {}).get("state")
            if state in ("done", "failed"):
                return doc
            if self._clock() >= poll_deadline:
                raise JobTimeout(
                    f"job {job_id} still {state!r} after {timeout:g}s"
                )
            self._sleep(poll_interval)

    def schedule(
        self,
        request_doc: dict[str, Any],
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> dict[str, Any]:
        """Submit and block until done — the resilient one-call path."""
        server_wait = min(float(timeout), 30.0)
        doc = self.submit(request_doc, wait=server_wait)
        job = doc.get("job", {})
        if job.get("state") in ("done", "failed"):
            return doc
        return self.wait_for(
            job["id"], timeout=timeout, poll_interval=poll_interval
        )
