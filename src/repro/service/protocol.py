"""Request/response protocol of the scheduling service.

One request = one scheduling problem: an inline ``repro-ptg`` document,
a platform preset, an execution-time model, an algorithm preset and a
seed, plus an optional budget (generations / wall-time) and queueing
metadata (tenant, priority).

Two identities are derived from a request:

* :func:`problem_digest` — hash of the *problem* only (PTG + platform +
  model).  Two requests with the same digest share a prepared time
  table, compiled kernel and fitness-cache shard (the warm tier).
* :func:`result_key` — hash of everything that determines the *answer*
  (problem + algorithm + seed + budget).  Requests with the same key
  receive bit-identical responses from the cross-request result cache.

Responses split into a deterministic ``result`` section (bit-identical
for equal result keys, whether computed cold, warm or served from
cache) and a ``stats`` envelope (timings, cache provenance) that is
allowed to differ between runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "KNOWN_ALGORITHMS",
    "KNOWN_MODELS",
    "KNOWN_PLATFORMS",
    "SEMANTIC_KEYS",
    "ScheduleRequest",
    "parse_request",
    "problem_digest",
    "request_trace_context",
    "result_key",
    "canonical_json",
]

PROTOCOL_VERSION = 1

# mirrors repro.cli._MODELS / repro.platform.presets / the EMTS presets;
# validated here so a bad request fails at parse time with a 400 instead
# of deep inside a worker thread
KNOWN_ALGORITHMS = ("emts5", "emts10")
KNOWN_MODELS = ("model1", "amdahl", "model2", "synthetic", "downey")
KNOWN_PLATFORMS = ("chti", "grelon")

_MAX_PRIORITY = 9


@dataclass(frozen=True)
class ScheduleRequest:
    """A validated scheduling request.

    ``seed`` is always a concrete int (``null`` in the wire document
    resolves to :data:`repro._rng.DEFAULT_SEED`), so every request is
    deterministic and therefore cacheable.
    """

    ptg_doc: dict[str, Any] = field(hash=False)
    platform: str = "chti"
    model: str = "amdahl"
    algorithm: str = "emts5"
    seed: int = 0
    generations: int | None = None
    max_wall_time: float | None = None
    tenant: str = "default"
    priority: int = 0
    #: Client-generated submission identity.  NOT part of the semantic
    #: doc / result key: it identifies one *submission attempt chain*,
    #: not the answer — two different keys with identical problems
    #: still share caches, while a retried POST with the same key is
    #: deduplicated into the original job instead of enqueuing a twin.
    idempotency_key: str | None = None
    #: Client-minted distributed-trace identity (``trace`` wire field).
    #: Like the idempotency key, observability metadata is NOT part of
    #: the semantic doc / result key — tracing a request must never
    #: change which cache entry answers it.
    trace_id: str | None = None
    trace_span: str | None = None

    def semantic_doc(self) -> dict[str, Any]:
        """Everything that determines the answer, canonically ordered."""
        return {
            "ptg": self.ptg_doc,
            "platform": self.platform,
            "model": self.model,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "generations": self.generations,
            "max_wall_time": self.max_wall_time,
        }


#: Wire-document keys that feed :func:`result_key` — everything else
#: (idempotency key, trace context, tenant/priority routing) is
#: submission metadata.  The stdlib-only client derives its trace id
#: from exactly these keys so same-seed submissions trace identically.
SEMANTIC_KEYS = (
    "ptg",
    "platform",
    "model",
    "algorithm",
    "seed",
    "generations",
    "max_wall_time",
)


def canonical_json(doc: Any) -> str:
    """Stable, whitespace-free JSON used for hashing."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _bad(message: str) -> ServiceError:
    return ServiceError(message, code="bad-request", status=400)


_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex_id(value: str) -> bool:
    return 0 < len(value) <= 64 and all(
        c in _HEX_DIGITS for c in value
    )


def _require_str(doc: dict, key: str, default: str, known: tuple) -> str:
    value = doc.get(key, default)
    if not isinstance(value, str):
        raise _bad(f"{key!r} must be a string, got {type(value).__name__}")
    value = value.lower()
    if value not in known:
        raise _bad(
            f"unknown {key} {value!r}; known: {', '.join(sorted(set(known)))}"
        )
    return value


def parse_request(doc: Any) -> ScheduleRequest:
    """Validate a wire document into a :class:`ScheduleRequest`.

    Raises :class:`repro.exceptions.ServiceError` (status 400) on any
    malformed field; the message is safe to echo back to the client.
    """
    # imported here: protocol stays importable without numpy for clients
    from .._rng import DEFAULT_SEED

    if not isinstance(doc, dict):
        raise _bad(
            f"request must be a JSON object, got {type(doc).__name__}"
        )
    ptg_doc = doc.get("ptg")
    if not isinstance(ptg_doc, dict):
        raise _bad("'ptg' must be an inline repro-ptg document")
    if ptg_doc.get("format") != "repro-ptg":
        raise _bad(
            f"'ptg' is not a repro PTG document "
            f"(format={ptg_doc.get('format')!r})"
        )

    platform = _require_str(doc, "platform", "chti", KNOWN_PLATFORMS)
    model = _require_str(doc, "model", "amdahl", KNOWN_MODELS)
    algorithm = _require_str(doc, "algorithm", "emts5", KNOWN_ALGORITHMS)

    seed = doc.get("seed", None)
    if seed is None:
        seed = DEFAULT_SEED
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise _bad(f"'seed' must be an integer or null, got {seed!r}")
    if seed < 0:
        raise _bad(f"'seed' must be >= 0, got {seed}")

    generations = doc.get("generations", None)
    if generations is not None:
        if isinstance(generations, bool) or not isinstance(generations, int):
            raise _bad(f"'generations' must be an integer, got {generations!r}")
        if generations < 1:
            raise _bad(f"'generations' must be >= 1, got {generations}")

    max_wall_time = doc.get("max_wall_time", None)
    if max_wall_time is not None:
        if isinstance(max_wall_time, bool) or not isinstance(
            max_wall_time, (int, float)
        ):
            raise _bad(
                f"'max_wall_time' must be a number, got {max_wall_time!r}"
            )
        max_wall_time = float(max_wall_time)
        if not max_wall_time > 0:
            raise _bad(f"'max_wall_time' must be > 0, got {max_wall_time}")

    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise _bad("'tenant' must be a non-empty string (<= 64 chars)")

    priority = doc.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise _bad(f"'priority' must be an integer, got {priority!r}")
    if not 0 <= priority <= _MAX_PRIORITY:
        raise _bad(f"'priority' must be in [0, {_MAX_PRIORITY}], got {priority}")

    idempotency_key = doc.get("idempotency_key", None)
    if idempotency_key is not None:
        if (
            not isinstance(idempotency_key, str)
            or not idempotency_key
            or len(idempotency_key) > 128
        ):
            raise _bad(
                "'idempotency_key' must be a non-empty string "
                "(<= 128 chars)"
            )

    trace_id = trace_span = None
    trace = doc.get("trace", None)
    if trace is not None:
        if not isinstance(trace, dict):
            raise _bad(
                f"'trace' must be an object, got {type(trace).__name__}"
            )
        trace_id = trace.get("trace_id")
        trace_span = trace.get("span_id")
        for label, value in (
            ("trace.trace_id", trace_id),
            ("trace.span_id", trace_span),
        ):
            if not isinstance(value, str) or not _is_hex_id(value):
                raise _bad(
                    f"'{label}' must be a lowercase hex id "
                    f"(<= 64 chars), got {value!r}"
                )

    return ScheduleRequest(
        ptg_doc=ptg_doc,
        platform=platform,
        model=model,
        algorithm=algorithm,
        seed=seed,
        generations=generations,
        max_wall_time=max_wall_time,
        tenant=tenant,
        priority=priority,
        idempotency_key=idempotency_key,
        trace_id=trace_id,
        trace_span=trace_span,
    )


def problem_digest(request: ScheduleRequest) -> str:
    """Identity of the prepared problem (PTG + platform + model).

    This is the warm-tier cache key: requests sharing it reuse one
    built time table, one compiled kernel binding and one fitness-cache
    shard, whatever their algorithm, seed or budget.
    """
    doc = {
        "ptg": request.ptg_doc,
        "platform": request.platform,
        "model": request.model,
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def result_key(request: ScheduleRequest) -> str:
    """Identity of the full deterministic answer (result-cache key)."""
    return hashlib.sha256(
        canonical_json(request.semantic_doc()).encode("utf-8")
    ).hexdigest()


def request_trace_context(request: ScheduleRequest):
    """The request's root :class:`~repro.obs.trace.TraceContext`.

    The client-supplied context wins (it is the one the client logs
    against); a traceless submission gets a server-minted context
    derived from the result key, so either way the id is a pure
    function of the request — same-seed traces stay bit-identical.
    """
    from ..obs.trace import (
        TraceContext,
        derive_span_id,
        derive_trace_id,
    )

    if request.trace_id and request.trace_span:
        return TraceContext(
            trace_id=request.trace_id, span_id=request.trace_span
        )
    tid = derive_trace_id("request", result_key(request))
    return TraceContext(
        trace_id=tid, span_id=derive_span_id(tid, "request")
    )
