"""Platform-scalability study (extension of the paper's observation).

Section V-A notes that "EMTS performs comparatively better for larger
platforms … the probability of finding a better allocation increases
when the size of the platform increases".  The paper supports this with
the two fixed platforms (20 vs 120 processors); this harness sweeps the
platform size explicitly and produces the full trend curve: mean
relative makespan ``T_MCPA / T_EMTS5`` as a function of ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_generator, iter_seeds
from ..allocation import McpaAllocator
from ..core import EMTS, emts5
from ..graph import PTG
from ..mapping import makespan_of
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, SyntheticModel, TimeTable
from .metrics import MeanCI, mean_confidence_interval
from .report import text_table

__all__ = ["ScalabilityResult", "run_scalability_sweep"]

#: Default processor counts of the sweep (Chti and Grelon included).
DEFAULT_SIZES = (10, 20, 40, 80, 120, 160)


@dataclass
class ScalabilityResult:
    """Relative makespan of EMTS vs MCPA per platform size."""

    sizes: tuple[int, ...]
    cells: dict[int, MeanCI]  # P -> mean T_MCPA / T_EMTS
    model_name: str
    emts_name: str

    def trend_is_nondecreasing(self, slack: float = 0.05) -> bool:
        """True when the mean gain never drops by more than ``slack``
        from one size to the next (the paper's qualitative claim)."""
        means = [self.cells[p].mean for p in self.sizes]
        return all(
            b >= a - slack for a, b in zip(means, means[1:])
        )

    def render(self) -> str:
        """Text table of the sweep."""
        rows = [
            [
                p,
                self.cells[p].mean,
                self.cells[p].low,
                self.cells[p].high,
                self.cells[p].n,
            ]
            for p in self.sizes
        ]
        return text_table(
            [
                "P",
                f"T_mcpa/T_{self.emts_name}",
                "ci95_low",
                "ci95_high",
                "n",
            ],
            rows,
        )


def run_scalability_sweep(
    ptgs: list[PTG],
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    model: ExecutionTimeModel | None = None,
    emts: EMTS | None = None,
    speed_gflops: float = 3.1,
    seed: int | None = None,
) -> ScalabilityResult:
    """Measure EMTS's gain over MCPA across platform sizes.

    Parameters
    ----------
    ptgs:
        The workload instances (shared across all platform sizes, so the
        only varying factor is ``P``).
    sizes:
        Processor counts to sweep.
    model:
        Execution-time model (default: the non-monotone Model 2, where
        the effect is most pronounced).
    emts:
        EMTS variant (default: EMTS5).
    speed_gflops:
        Per-processor speed (default: Grelon's).
    """
    model = model or SyntheticModel()
    emts = emts or emts5()
    cells: dict[int, MeanCI] = {}
    for P in sizes:
        cluster = Cluster(
            name=f"sweep-{P}",
            num_processors=P,
            speed_gflops=speed_gflops,
        )
        seeds = iter_seeds(
            ensure_generator(seed, "scalability", str(P))
        )
        ratios = []
        for ptg in ptgs:
            table = TimeTable.build(model, ptg, cluster)
            mcpa_ms = makespan_of(
                ptg, table, McpaAllocator().allocate(ptg, table)
            )
            result = emts.schedule(
                ptg, cluster, table, rng=next(seeds)
            )
            ratios.append(mcpa_ms / result.makespan)
        cells[P] = mean_confidence_interval(np.asarray(ratios))
    return ScalabilityResult(
        sizes=tuple(sizes),
        cells=cells,
        model_name=model.name,
        emts_name=emts.name,
    )
