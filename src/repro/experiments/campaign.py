"""Crash-only experiment campaigns.

A *campaign* is an ordered list of named trials — independent,
deterministic units of work (one PTG × platform × algorithm comparison,
one figure cell, one runtime measurement) — executed so that nothing
short of losing the output directory can lose work:

* every trial runs in its **own subprocess** with an optional wall-clock
  timeout, so a segfault, an OOM kill or a hang takes down one trial,
  never the campaign;
* failed trials are retried with exponential backoff a bounded number of
  times, then **quarantined**: the failure is recorded in the campaign
  directory and the run moves on instead of dying;
* each finished trial's payload is persisted **atomically**
  (write-to-temp + :func:`os.replace`), so a kill at any instant leaves
  either the complete result or nothing — never a torn file;
* the campaign directory *is* the state.  Re-running the same campaign
  against the same directory skips every valid persisted result and
  re-executes only what is missing, so an interrupted campaign resumes
  where it stopped and produces **bit-identical aggregates** to an
  uninterrupted one.

The manifest (``manifest.json``) records the campaign's identity — its
ordered trial keys and a fingerprint over the trial functions — so a
directory can never silently be resumed by a *different* campaign.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import re
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..exceptions import CampaignError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..util.backoff import exponential_delay

__all__ = [
    "Trial",
    "TrialFailure",
    "CampaignResult",
    "run_campaign",
    "campaign_status",
]

_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_FORMAT = "repro-campaign"
_VERSION = 1

#: Default per-attempt retry backoff base (seconds).
DEFAULT_RETRY_BACKOFF = 0.1


@dataclass(frozen=True)
class Trial:
    """One unit of campaign work.

    ``func`` must be a module-level callable (it is dispatched to a
    subprocess) and must return a JSON-serializable payload; ``kwargs``
    are passed to it verbatim.  ``key`` names the trial's result file,
    so it must be unique within the campaign and filesystem-safe.
    """

    key: str
    func: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _KEY_RE.match(self.key):
            raise CampaignError(
                f"trial key {self.key!r} is not filesystem-safe "
                "(use letters, digits, '.', '_', '-')"
            )
        if not callable(self.func):
            raise CampaignError(
                f"trial {self.key!r}: func is not callable"
            )

    @property
    def func_id(self) -> str:
        """Stable identity of the trial function (module:qualname)."""
        return (
            f"{getattr(self.func, '__module__', '?')}:"
            f"{getattr(self.func, '__qualname__', repr(self.func))}"
        )


@dataclass(frozen=True)
class TrialFailure:
    """Why one trial ended up in quarantine."""

    key: str
    error: str
    attempts: int
    kind: str  # "exception" | "crash" | "timeout" | "unserializable"


@dataclass
class CampaignResult:
    """Everything a finished (or partially finished) campaign produced.

    ``results`` maps trial keys to their payloads in **manifest order**
    — including results resumed from disk — so aggregation over it is
    independent of which invocation actually executed each trial.
    """

    out_dir: Path
    results: dict[str, Any]
    quarantined: dict[str, TrialFailure]
    executed: tuple[str, ...]  # keys run by THIS invocation
    resumed: tuple[str, ...]  # keys loaded from a previous invocation
    pending: tuple[str, ...]  # keys not yet attempted (stopped early)

    @property
    def complete(self) -> bool:
        """True when every trial either succeeded or was quarantined."""
        return not self.pending

    def aggregate(self) -> list[Any]:
        """All payloads, in manifest order (quarantined trials absent)."""
        return list(self.results.values())

    def aggregate_json(self) -> str:
        """Canonical JSON of the aggregate.

        Byte-for-byte identical for any execution history that produced
        the same payloads — the property the resume tests pin down.
        """
        return json.dumps(
            {"results": self.results, "quarantined": sorted(self.quarantined)},
            sort_keys=True,
            separators=(",", ":"),
        )


# ----------------------------------------------------------------------
def _atomic_write_json(path: Path, payload: Any) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
    )
    os.replace(tmp, path)


def _fingerprint(trials: Sequence[Trial]) -> str:
    ident = json.dumps(
        [[t.key, t.func_id] for t in trials], separators=(",", ":")
    )
    return hashlib.sha256(ident.encode("utf-8")).hexdigest()[:16]


def _trial_entry(conn, func, kwargs) -> None:
    """Subprocess entry point: run the trial, ship the outcome back."""
    try:
        payload = func(**kwargs)
    except BaseException:
        conn.send(("error", traceback.format_exc(limit=20)))
    else:
        try:
            conn.send(("ok", payload))
        except Exception as exc:  # unpicklable payload
            conn.send(("error", f"payload not sendable: {exc!r}"))
    finally:
        conn.close()


def _run_attempt(
    trial: Trial, timeout: float | None, ctx
) -> tuple[str, Any]:
    """One subprocess attempt.  Returns ("ok", payload) or a failure."""
    recv, send = ctx.Pipe(duplex=False)
    # daemon=False on purpose: a trial may itself spawn an evaluator pool
    proc = ctx.Process(
        target=_trial_entry,
        args=(send, trial.func, dict(trial.kwargs)),
        daemon=False,
    )
    proc.start()
    send.close()
    try:
        if not recv.poll(timeout):
            proc.terminate()
            proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                proc.kill()
                proc.join()
            return (
                "timeout",
                f"trial exceeded {timeout} s and was terminated",
            )
        try:
            status, detail = recv.recv()
        except (EOFError, OSError):
            proc.join()
            return (
                "crash",
                f"trial process died without reporting a result "
                f"(exit code {proc.exitcode})",
            )
        proc.join()
        if status == "ok":
            return ("ok", detail)
        return ("exception", detail)
    finally:
        recv.close()
        if proc.is_alive():  # pragma: no cover - defensive
            proc.kill()
            proc.join()


def _load_result(path: Path, key: str) -> Any:
    """A persisted payload, or None when the file is unusable."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(data, dict)
        or data.get("format") != _FORMAT
        or data.get("key") != key
        or "payload" not in data
    ):
        return None
    return data


def _check_manifest(
    manifest_path: Path, trials: Sequence[Trial]
) -> None:
    """Validate an existing manifest against this campaign's identity."""
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CampaignError(
            f"campaign manifest {manifest_path} is unreadable "
            f"({exc}); refusing to resume into a corrupt directory"
        ) from exc
    if manifest.get("format") != _FORMAT:
        raise CampaignError(
            f"{manifest_path} is not a campaign manifest"
        )
    if manifest.get("fingerprint") != _fingerprint(trials) or manifest.get(
        "trials"
    ) != [t.key for t in trials]:
        raise CampaignError(
            f"campaign directory {manifest_path.parent} belongs to a "
            "different campaign (trial list or functions changed); "
            "use a fresh --out directory"
        )


def run_campaign(
    trials: Sequence[Trial],
    out_dir: str | Path,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    mp_context: str | None = None,
    max_trials: int | None = None,
    retry_quarantined: bool = False,
    progress: Callable[[str, str], None] | None = None,
    trace: str | Path | Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> CampaignResult:
    """Execute (or resume) a campaign against ``out_dir``.

    Parameters
    ----------
    trials:
        The campaign, in order.  Keys must be unique.
    out_dir:
        Campaign state directory; created if missing.  Re-running with
        the same trials resumes: persisted results are loaded, not
        recomputed.
    trial_timeout:
        Optional per-attempt wall-clock limit (seconds); a timed-out
        attempt counts as a failure and is retried.
    max_retries:
        Additional attempts after the first failure before the trial is
        quarantined.
    retry_backoff:
        Base of the exponential backoff slept between attempts.
    mp_context:
        :mod:`multiprocessing` start method for the trial subprocesses
        (``None`` = platform default).
    max_trials:
        Stop (cleanly) after executing this many trials in *this*
        invocation; remaining trials stay pending for the next resume.
        Used by tests to simulate interruption at a trial boundary.
    retry_quarantined:
        Re-attempt trials a previous invocation quarantined instead of
        carrying the recorded failure forward.
    progress:
        Optional ``callback(key, status)`` invoked per trial with status
        ``"resumed"``, ``"ok"`` or ``"quarantined"``.
    trace:
        Write a structured JSONL campaign trace to this path (or into
        an already-open :class:`repro.obs.Tracer`): one
        ``campaign_start`` span holding one ``campaign_trial`` event
        per trial (key, status, attempts) and a closing
        ``campaign_end`` with the outcome counts.
    metrics:
        A :class:`repro.obs.MetricsRegistry` to fill with
        ``campaign.trials.*`` outcome counters and the per-trial
        wall-time timer.

    Raises
    ------
    CampaignError
        On duplicate/invalid trial keys or a directory that belongs to a
        different campaign.  Individual trial failures never raise.
    """
    trials = list(trials)
    keys = [t.key for t in trials]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise CampaignError(f"duplicate trial keys: {dupes}")
    if max_retries < 0:
        raise CampaignError(
            f"max_retries must be >= 0, got {max_retries}"
        )
    if retry_backoff < 0:
        raise CampaignError(
            f"retry_backoff must be >= 0, got {retry_backoff}"
        )
    out_dir = Path(out_dir)
    trials_dir = out_dir / "trials"
    quarantine_dir = out_dir / "quarantine"
    trials_dir.mkdir(parents=True, exist_ok=True)
    quarantine_dir.mkdir(parents=True, exist_ok=True)

    manifest_path = out_dir / "manifest.json"
    if manifest_path.exists():
        _check_manifest(manifest_path, trials)
    else:
        _atomic_write_json(
            manifest_path,
            {
                "format": _FORMAT,
                "version": _VERSION,
                "fingerprint": _fingerprint(trials),
                "trials": keys,
            },
        )

    ctx = multiprocessing.get_context(mp_context)
    results: dict[str, Any] = {}
    quarantined: dict[str, TrialFailure] = {}
    executed: list[str] = []
    resumed: list[str] = []
    pending: list[str] = []
    budget = len(trials) if max_trials is None else max_trials

    tracer: Tracer | None
    owns_tracer = False
    if trace is None:
        tracer = None
    elif isinstance(trace, Tracer):
        tracer = trace
    else:
        tracer = Tracer(trace)
        owns_tracer = True

    def _note(key: str, status: str, **attrs: Any) -> None:
        if tracer is not None:
            tracer.event(
                "campaign_trial",
                attrs={"key": key, "status": status, **attrs},
            )
        if metrics is not None:
            metrics.counter(f"campaign.trials.{status}").inc()
        if progress:
            progress(key, status)

    if tracer is not None:
        tracer.begin(
            "campaign_start",
            attrs={
                "trials": len(trials),
                "fingerprint": _fingerprint(trials),
            },
        )

    try:
        _run_trials(
            trials,
            trials_dir,
            quarantine_dir,
            ctx,
            trial_timeout,
            max_retries,
            retry_backoff,
            retry_quarantined,
            budget,
            results,
            quarantined,
            executed,
            resumed,
            pending,
            _note,
            metrics,
        )
    finally:
        if tracer is not None:
            tracer.end(
                "campaign_end",
                attrs={
                    "ok": sum(1 for k in executed if k in results),
                    "completed": len(results),
                    "resumed": len(resumed),
                    "quarantined": len(quarantined),
                    "pending": len(pending),
                },
            )
            if owns_tracer:
                tracer.close()

    return CampaignResult(
        out_dir=out_dir,
        results=results,
        quarantined=quarantined,
        executed=tuple(executed),
        resumed=tuple(resumed),
        pending=tuple(pending),
    )


def _run_trials(
    trials,
    trials_dir,
    quarantine_dir,
    ctx,
    trial_timeout,
    max_retries,
    retry_backoff,
    retry_quarantined,
    budget,
    results,
    quarantined,
    executed,
    resumed,
    pending,
    _note,
    metrics,
) -> None:
    """The campaign's trial loop (factored out of :func:`run_campaign`
    so the tracer's start/end span can bracket it exactly)."""
    for trial in trials:
        result_path = trials_dir / f"{trial.key}.json"
        quarantine_path = quarantine_dir / f"{trial.key}.json"

        stored = _load_result(result_path, trial.key)
        if stored is not None:
            results[trial.key] = stored["payload"]
            resumed.append(trial.key)
            _note(trial.key, "resumed")
            continue
        if quarantine_path.exists() and not retry_quarantined:
            failure = _load_result(quarantine_path, trial.key)
            quarantined[trial.key] = TrialFailure(
                key=trial.key,
                error=(
                    failure["payload"].get("error", "unknown")
                    if failure
                    else "quarantine record unreadable"
                ),
                attempts=(
                    failure["payload"].get("attempts", 0) if failure else 0
                ),
                kind=(
                    failure["payload"].get("kind", "unknown")
                    if failure
                    else "unknown"
                ),
            )
            resumed.append(trial.key)
            _note(trial.key, "quarantined", carried=True)
            continue

        if budget <= 0:
            pending.append(trial.key)
            continue
        budget -= 1

        attempts = 0
        t0 = time.perf_counter()
        while True:
            attempts += 1
            status, detail = _run_attempt(trial, trial_timeout, ctx)
            if status == "ok":
                try:
                    _atomic_write_json(
                        result_path,
                        {
                            "format": _FORMAT,
                            "version": _VERSION,
                            "key": trial.key,
                            "payload": detail,
                            "attempts": attempts,
                            "seconds": time.perf_counter() - t0,
                        },
                    )
                except TypeError:
                    status, detail = (
                        "unserializable",
                        f"payload of {trial.func_id} is not "
                        "JSON-serializable",
                    )
                else:
                    results[trial.key] = detail
                    executed.append(trial.key)
                    seconds = time.perf_counter() - t0
                    if metrics is not None:
                        metrics.timer(
                            "campaign.trial_seconds"
                        ).observe(seconds)
                    _note(
                        trial.key,
                        "ok",
                        attempts=attempts,
                        trial_seconds=seconds,
                    )
                    break
            if attempts > max_retries or status == "unserializable":
                quarantine_path.parent.mkdir(exist_ok=True)
                _atomic_write_json(
                    quarantine_path,
                    {
                        "format": _FORMAT,
                        "version": _VERSION,
                        "key": trial.key,
                        "payload": {
                            "error": detail,
                            "attempts": attempts,
                            "kind": status,
                        },
                    },
                )
                quarantined[trial.key] = TrialFailure(
                    key=trial.key,
                    error=detail,
                    attempts=attempts,
                    kind=status,
                )
                executed.append(trial.key)
                _note(
                    trial.key,
                    "quarantined",
                    attempts=attempts,
                    kind=status,
                )
                break
            time.sleep(exponential_delay(retry_backoff, attempts))


def campaign_status(out_dir: str | Path) -> dict[str, Any]:
    """Summarize a campaign directory without running anything.

    Returns a dict with the manifest's trial list plus per-trial status
    (``"done"`` / ``"quarantined"`` / ``"pending"``), for progress
    reports and the CLI.
    """
    out_dir = Path(out_dir)
    manifest_path = out_dir / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CampaignError(
            f"no readable campaign manifest at {manifest_path}: {exc}"
        ) from exc
    if manifest.get("format") != _FORMAT:
        raise CampaignError(
            f"{manifest_path} is not a campaign manifest"
        )
    status: dict[str, str] = {}
    for key in manifest.get("trials", []):
        if _load_result(out_dir / "trials" / f"{key}.json", key):
            status[key] = "done"
        elif (out_dir / "quarantine" / f"{key}.json").exists():
            status[key] = "quarantined"
        else:
            status[key] = "pending"
    return {
        "trials": manifest.get("trials", []),
        "fingerprint": manifest.get("fingerprint"),
        "status": status,
        "done": sum(1 for s in status.values() if s == "done"),
        "quarantined": sum(
            1 for s in status.values() if s == "quarantined"
        ),
        "pending": sum(1 for s in status.values() if s == "pending"),
    }
