"""Convergence study: best makespan versus evolutionary budget.

Section V discusses why EMTS10 barely beats EMTS5 on regular PTGs (the
solutions EMTS5 finds are already efficient; the shared random seed means
EMTS10 revisits them) while irregular PTGs keep improving.  This harness
makes that visible: it runs EMTS variants on shared problems and extracts
the full best-fitness-per-generation trajectories — the data behind any
"quality vs. budget" plot and behind the paper's future-work question of
how to spend less time in the evolutionary search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import ensure_generator
from ..core import EMTS
from ..graph import PTG
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, TimeTable
from .report import text_table

__all__ = ["ConvergenceResult", "run_convergence_study"]


@dataclass
class ConvergenceResult:
    """Best-fitness trajectories of several EMTS variants."""

    # variant name -> per-problem trajectories (generation -> best)
    trajectories: dict[str, list[np.ndarray]]
    seed_best: list[float]  # best seed makespan per problem
    # variant name -> per-problem (evaluations, mapper calls, cache
    # hits, evaluation wall-seconds) from the fitness engine
    evaluation_stats: dict[str, list[tuple[int, int, int, float]]] = (
        field(default_factory=dict)
    )

    def mean_relative_trajectory(self, variant: str) -> np.ndarray:
        """Mean of best(gen)/best-seed over the problems.

        Values <= 1; lower means more improvement over the seeds.
        Trajectories of different lengths are aligned on generations
        (shorter runs hold their final value).
        """
        runs = self.trajectories[variant]
        length = max(len(t) for t in runs)
        rel = np.empty((len(runs), length))
        for i, (traj, seed_ms) in enumerate(
            zip(runs, self.seed_best)
        ):
            padded = np.concatenate(
                [traj, np.full(length - len(traj), traj[-1])]
            )
            rel[i] = padded / seed_ms
        return rel.mean(axis=0)

    def final_improvement(self, variant: str) -> float:
        """Mean final gain over the seeds, ``1 / relative`` at the end."""
        return float(1.0 / self.mean_relative_trajectory(variant)[-1])

    def render(self) -> str:
        """Table: one row per generation, one column per variant."""
        variants = sorted(self.trajectories)
        curves = {
            v: self.mean_relative_trajectory(v) for v in variants
        }
        length = max(len(c) for c in curves.values())
        rows = []
        for g in range(length):
            row = [g]
            for v in variants:
                c = curves[v]
                row.append(float(c[min(g, len(c) - 1)]))
            rows.append(row)
        return text_table(
            ["gen"] + [f"best/seed ({v})" for v in variants], rows
        )

    def evaluation_summary(self) -> str:
        """Per-variant fitness-evaluation totals (engine counters)."""
        if not self.evaluation_stats:
            return "no evaluation statistics recorded"
        rows = []
        for variant in sorted(self.evaluation_stats):
            cells = self.evaluation_stats[variant]
            evals = sum(c[0] for c in cells)
            calls = sum(c[1] for c in cells)
            hits = sum(c[2] for c in cells)
            secs = sum(c[3] for c in cells)
            rate = hits / evals if evals else 0.0
            rows.append(
                [variant, evals, calls, hits, f"{rate:.1%}", secs]
            )
        return text_table(
            [
                "variant",
                "evaluations",
                "mapper calls",
                "cache hits",
                "hit rate",
                "eval time[s]",
            ],
            rows,
        )


def run_convergence_study(
    ptgs: list[PTG],
    cluster: Cluster,
    model: ExecutionTimeModel,
    variants: list[EMTS],
    seed: int | None = None,
) -> ConvergenceResult:
    """Run every variant on every problem and collect trajectories.

    All variants of one problem share the same RNG seed, mirroring the
    paper's setup ("the random generator uses the same (random) seed for
    all experiments", which is why EMTS10 rediscovers EMTS5's
    solutions).
    """
    trajectories: dict[str, list[np.ndarray]] = {
        v.name: [] for v in variants
    }
    evaluation_stats: dict[str, list[tuple[int, int, int, float]]] = {
        v.name: [] for v in variants
    }
    seed_best: list[float] = []
    stream = ensure_generator(seed, "convergence")
    for ptg in ptgs:
        table = TimeTable.build(model, ptg, cluster)
        problem_seed = int(stream.integers(0, 2**63 - 1))
        recorded_seed = None
        for variant in variants:
            result = variant.schedule(
                ptg, cluster, table, rng=problem_seed
            )
            trajectories[variant.name].append(
                result.log.best_trajectory()
            )
            stats = result.evaluation_stats
            if stats is not None:
                evaluation_stats[variant.name].append(
                    (
                        stats.evaluations,
                        stats.mapper_calls,
                        stats.cache_hits,
                        stats.wall_seconds,
                    )
                )
            if recorded_seed is None:
                recorded_seed = min(result.seed_makespans.values())
        seed_best.append(float(recorded_seed))
    return ConvergenceResult(
        trajectories=trajectories,
        seed_best=seed_best,
        evaluation_stats=evaluation_stats,
    )
