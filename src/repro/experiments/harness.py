"""Experiment harness: run scheduler comparisons over PTG corpora.

One :class:`RunRecord` is produced per (PTG, platform) pair: the EMTS
makespan and run time plus the makespan of every baseline heuristic, all
computed against a *shared* time table so every algorithm sees identical
task-time predictions.  Aggregation then reproduces the paper's
per-class / per-platform relative-makespan summaries (Figures 4 and 5).
"""

from __future__ import annotations

import re
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .._rng import ensure_generator, iter_seeds
from ..allocation import AllocationHeuristic
from ..core import EMTS, EMTSConfig, make_allocator
from ..graph import PTG
from ..mapping import makespan_of
from ..obs.instrument import run_snapshot
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, TimeTable
from .campaign import CampaignResult, Trial, run_campaign
from .metrics import MeanCI, mean_confidence_interval, relative_makespans

__all__ = [
    "RunRecord",
    "ComparisonResult",
    "run_comparison",
    "record_to_dict",
    "record_from_dict",
    "comparison_trials",
    "run_comparison_campaign",
]


@dataclass(frozen=True)
class RunRecord:
    """Result of scheduling one PTG on one platform with one model."""

    ptg_name: str
    ptg_class: str
    num_tasks: int
    platform: str
    model: str
    emts_name: str
    emts_makespan: float
    emts_seconds: float
    baseline_makespans: dict[str, float]
    # fitness-evaluation engine counters (0 for records predating them)
    emts_evaluations: int = 0
    emts_mapper_calls: int = 0
    emts_cache_hits: int = 0
    # True when the EMTS run was cut short by a wall-time budget; its
    # makespan is then a best-so-far value, not the full-horizon result
    interrupted: bool = False

    def relative(self, baseline: str) -> float:
        """``T_baseline / T_EMTS`` for this instance."""
        return self.baseline_makespans[baseline] / self.emts_makespan


@dataclass
class ComparisonResult:
    """All records of one comparison sweep, with aggregation helpers."""

    records: list[RunRecord] = field(default_factory=list)

    def filter(
        self,
        ptg_class: str | None = None,
        platform: str | None = None,
        model: str | None = None,
    ) -> "ComparisonResult":
        """Subset matching the given attributes."""
        out = [
            r
            for r in self.records
            if (ptg_class is None or r.ptg_class == ptg_class)
            and (platform is None or r.platform == platform)
            and (model is None or r.model == model)
        ]
        return ComparisonResult(out)

    @property
    def baselines(self) -> tuple[str, ...]:
        """Baseline names present in the records."""
        if not self.records:
            return ()
        return tuple(sorted(self.records[0].baseline_makespans))

    @property
    def classes(self) -> tuple[str, ...]:
        """PTG classes present, in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.ptg_class, None)
        return tuple(seen)

    @property
    def platforms(self) -> tuple[str, ...]:
        """Platforms present, in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.platform, None)
        return tuple(seen)

    def relative_makespan(self, baseline: str) -> MeanCI:
        """Mean +- 95 % CI of ``T_baseline / T_EMTS`` over the records."""
        base = np.array(
            [r.baseline_makespans[baseline] for r in self.records]
        )
        emts = np.array([r.emts_makespan for r in self.records])
        return mean_confidence_interval(relative_makespans(base, emts))

    def to_rows(self) -> list[dict]:
        """Flat dict rows (CSV-friendly)."""
        rows = []
        for r in self.records:
            row = {
                "ptg": r.ptg_name,
                "class": r.ptg_class,
                "tasks": r.num_tasks,
                "platform": r.platform,
                "model": r.model,
                "emts": r.emts_name,
                "emts_makespan": r.emts_makespan,
                "emts_seconds": r.emts_seconds,
                "emts_evaluations": r.emts_evaluations,
                "emts_mapper_calls": r.emts_mapper_calls,
                "emts_cache_hits": r.emts_cache_hits,
                "interrupted": r.interrupted,
            }
            for name, ms in r.baseline_makespans.items():
                row[f"makespan_{name}"] = ms
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self.records)


def run_comparison(
    ptgs: dict[str, list[PTG]],
    platforms: list[Cluster],
    model: ExecutionTimeModel,
    emts: EMTS,
    baselines: list[AllocationHeuristic],
    seed: int | None = None,
    workers: int | None = None,
    fitness_cache: bool | None = None,
    max_wall_time: float | None = None,
) -> ComparisonResult:
    """Schedule every PTG on every platform with EMTS and all baselines.

    Parameters
    ----------
    ptgs:
        PTG lists keyed by class label (``{"fft": [...], ...}``).
    platforms:
        Clusters to evaluate on (the paper: Chti and Grelon).
    model:
        Execution-time model shared by all algorithms.
    emts:
        The configured EMTS instance.
    baselines:
        Heuristics to compare against (the paper: MCPA and HCPA).
    seed:
        Root seed; each (class, platform, instance) triple gets its own
        derived stream, so adding a class never perturbs another's
        results.
    workers, fitness_cache:
        Optional fitness-evaluation-engine overrides applied on top of
        ``emts``'s own configuration (``None`` keeps it).  Both are
        exact optimizations: the recorded makespans do not change.
    max_wall_time:
        Optional per-run wall-clock budget (seconds) for each EMTS
        invocation; runs that hit it stop at a generation boundary and
        are recorded with ``interrupted=True`` (best-so-far makespan).
        Long sweeps then degrade gracefully instead of overrunning.
    """
    updates = {}
    if workers is not None:
        updates["workers"] = workers
    if fitness_cache is not None:
        updates["fitness_cache"] = fitness_cache
    if updates:
        emts = EMTS(emts.config.with_updates(**updates))
    result = ComparisonResult()
    for cluster in platforms:
        for cls, graphs in ptgs.items():
            stream = ensure_generator(
                seed, "harness", cluster.name, cls
            )
            seeds = iter_seeds(stream)
            for ptg in graphs:
                table = TimeTable.build(model, ptg, cluster)
                base_ms = {
                    b.name: makespan_of(
                        ptg, table, b.allocate(ptg, table)
                    )
                    for b in baselines
                }
                t0 = time.perf_counter()
                emts_result = emts.schedule(
                    ptg,
                    cluster,
                    table,
                    rng=next(seeds),
                    max_wall_time=max_wall_time,
                )
                seconds = time.perf_counter() - t0
                # the canonical metrics-registry projection of the run:
                # the same numbers a --metrics-out dump or a trace's
                # eval_stats would report (single source of truth)
                snap = run_snapshot(emts_result)
                result.records.append(
                    RunRecord(
                        ptg_name=ptg.name,
                        ptg_class=cls,
                        num_tasks=ptg.num_tasks,
                        platform=cluster.name,
                        model=model.name,
                        emts_name=emts.name,
                        emts_makespan=emts_result.makespan,
                        emts_seconds=seconds,
                        baseline_makespans=base_ms,
                        emts_evaluations=snap["evaluations"],
                        emts_mapper_calls=snap["mapper_calls"],
                        emts_cache_hits=snap["cache_hits"],
                        interrupted=snap["interrupted"],
                    )
                )
    return result


# ----------------------------------------------------------------------
# campaign integration: the same comparison, one crash-isolated trial per
# (PTG, platform) pair, resumable through repro.experiments.campaign
# ----------------------------------------------------------------------
def record_to_dict(record: RunRecord) -> dict:
    """A JSON-serializable form of one :class:`RunRecord`."""
    return asdict(record)


def record_from_dict(data: dict) -> RunRecord:
    """Rebuild a :class:`RunRecord` from :func:`record_to_dict` output."""
    return RunRecord(
        ptg_name=data["ptg_name"],
        ptg_class=data["ptg_class"],
        num_tasks=int(data["num_tasks"]),
        platform=data["platform"],
        model=data["model"],
        emts_name=data["emts_name"],
        emts_makespan=float(data["emts_makespan"]),
        emts_seconds=float(data["emts_seconds"]),
        baseline_makespans={
            k: float(v) for k, v in data["baseline_makespans"].items()
        },
        emts_evaluations=int(data.get("emts_evaluations", 0)),
        emts_mapper_calls=int(data.get("emts_mapper_calls", 0)),
        emts_cache_hits=int(data.get("emts_cache_hits", 0)),
        interrupted=bool(data.get("interrupted", False)),
    )


def _comparison_trial(
    ptg: PTG,
    ptg_class: str,
    cluster: Cluster,
    model: ExecutionTimeModel,
    emts_config: dict,
    baselines: tuple[str, ...],
    rng_seed: int,
    max_wall_time: float | None = None,
) -> dict:
    """Campaign trial body: one (PTG, platform) comparison.

    Module-level so the campaign runner can dispatch it to a subprocess;
    takes the EMTS *configuration* (as a plain dict), not an EMTS
    instance, and baseline *names*, so the payload round-trips through
    any :mod:`multiprocessing` start method.  The seconds field is
    wall-clock and varies between runs; every other field is
    deterministic for a given seed.
    """
    cfg = EMTSConfig(**emts_config)
    emts = EMTS(cfg)
    table = TimeTable.build(model, ptg, cluster)
    base_ms = {
        name: makespan_of(
            ptg, table, make_allocator(name).allocate(ptg, table)
        )
        for name in baselines
    }
    t0 = time.perf_counter()
    emts_result = emts.schedule(
        ptg, cluster, table, rng=rng_seed, max_wall_time=max_wall_time
    )
    seconds = time.perf_counter() - t0
    snap = run_snapshot(emts_result)
    return record_to_dict(
        RunRecord(
            ptg_name=ptg.name,
            ptg_class=ptg_class,
            num_tasks=ptg.num_tasks,
            platform=cluster.name,
            model=model.name,
            emts_name=emts.name,
            emts_makespan=emts_result.makespan,
            emts_seconds=seconds,
            baseline_makespans=base_ms,
            emts_evaluations=snap["evaluations"],
            emts_mapper_calls=snap["mapper_calls"],
            emts_cache_hits=snap["cache_hits"],
            interrupted=snap["interrupted"],
        )
    )


def _trial_key(cluster: Cluster, cls: str, index: int, ptg: PTG) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", ptg.name)
    return f"{cluster.name}.{cls}.{index:03d}.{safe}"


def comparison_trials(
    ptgs: dict[str, list[PTG]],
    platforms: list[Cluster],
    model: ExecutionTimeModel,
    emts: EMTS,
    baselines: list[AllocationHeuristic],
    seed: int | None = None,
    max_wall_time: float | None = None,
) -> list[Trial]:
    """The trial list equivalent to one :func:`run_comparison` sweep.

    Seeds are derived exactly as :func:`run_comparison` derives them —
    one per-(platform, class) stream, one draw per instance — so a
    campaign over these trials records the **same makespans** the
    monolithic harness would, just crash-isolated and resumable.
    """
    trials: list[Trial] = []
    emts_config = asdict(emts.config)
    baseline_names = tuple(b.name for b in baselines)
    for cluster in platforms:
        for cls, graphs in ptgs.items():
            stream = ensure_generator(seed, "harness", cluster.name, cls)
            seeds = iter_seeds(stream)
            for i, ptg in enumerate(graphs):
                trials.append(
                    Trial(
                        key=_trial_key(cluster, cls, i, ptg),
                        func=_comparison_trial,
                        kwargs=dict(
                            ptg=ptg,
                            ptg_class=cls,
                            cluster=cluster,
                            model=model,
                            emts_config=emts_config,
                            baselines=baseline_names,
                            rng_seed=next(seeds),
                            max_wall_time=max_wall_time,
                        ),
                    )
                )
    return trials


def run_comparison_campaign(
    ptgs: dict[str, list[PTG]],
    platforms: list[Cluster],
    model: ExecutionTimeModel,
    emts: EMTS,
    baselines: list[AllocationHeuristic],
    out_dir: str | Path,
    seed: int | None = None,
    max_wall_time: float | None = None,
    trial_timeout: float | None = None,
    max_retries: int = 2,
    max_trials: int | None = None,
    progress=None,
    trace: str | Path | Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[ComparisonResult, CampaignResult]:
    """:func:`run_comparison`, campaign-style.

    Each (PTG, platform) pair becomes one subprocess-isolated trial
    persisted under ``out_dir``; interrupting and re-running resumes
    from the persisted results and yields bit-identical records.
    Quarantined trials are simply absent from the returned
    :class:`ComparisonResult` (they are listed in the campaign result).
    ``trace`` / ``metrics`` are forwarded to
    :func:`repro.experiments.campaign.run_campaign`, which records one
    ``campaign_trial`` event (and outcome counter) per trial.
    """
    trials = comparison_trials(
        ptgs,
        platforms,
        model,
        emts,
        baselines,
        seed=seed,
        max_wall_time=max_wall_time,
    )
    campaign = run_campaign(
        trials,
        out_dir,
        trial_timeout=trial_timeout,
        max_retries=max_retries,
        max_trials=max_trials,
        progress=progress,
        trace=trace,
        metrics=metrics,
    )
    comparison = ComparisonResult(
        [record_from_dict(d) for d in campaign.results.values()]
    )
    return comparison, campaign
