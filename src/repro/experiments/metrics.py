"""Statistics for the experimental evaluation (paper Section V).

The paper reports, per PTG class and platform, the *average relative
makespan* of each baseline against EMTS — ``T_MCPA / T_EMTS5`` etc. —
with 95 % confidence intervals.  We compute the same: sample mean and a
t-distribution confidence interval over the per-PTG ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["MeanCI", "mean_confidence_interval", "relative_makespans"]


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with a symmetric confidence interval."""

    mean: float
    low: float
    high: float
    n: int
    confidence: float = 0.95

    @property
    def half_width(self) -> float:
        """Half the CI width (the error-bar length)."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] (n={self.n})"
        )


def mean_confidence_interval(
    values: np.ndarray, confidence: float = 0.95
) -> MeanCI:
    """Sample mean and t-based confidence interval of ``values``.

    Degenerate cases: an empty sample raises; a single observation (or a
    zero-variance sample) collapses the interval onto the mean.
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    n = values.size
    if n == 0:
        raise ValueError("cannot summarize an empty (or all-inf) sample")
    mean = float(values.mean())
    if n == 1:
        return MeanCI(mean, mean, mean, 1, confidence)
    sem = float(values.std(ddof=1)) / np.sqrt(n)
    if sem == 0.0:
        return MeanCI(mean, mean, mean, n, confidence)
    half = float(stats.t.ppf((1.0 + confidence) / 2.0, n - 1)) * sem
    return MeanCI(mean, mean - half, mean + half, n, confidence)


def relative_makespans(
    baseline: np.ndarray, emts: np.ndarray
) -> np.ndarray:
    """Per-instance relative makespan ``T_baseline / T_EMTS``.

    Values above 1 mean EMTS produced the shorter schedule.  Pairs where
    either makespan is non-finite or non-positive are dropped.
    """
    baseline = np.asarray(baseline, dtype=np.float64)
    emts = np.asarray(emts, dtype=np.float64)
    if baseline.shape != emts.shape:
        raise ValueError(
            f"shape mismatch: {baseline.shape} vs {emts.shape}"
        )
    ok = (
        np.isfinite(baseline)
        & np.isfinite(emts)
        & (baseline > 0)
        & (emts > 0)
    )
    return baseline[ok] / emts[ok]
