"""E7 — EMTS optimization run times (paper Section V, in-text table).

The paper reports mean EMTS optimization times (with standard deviations)
on an Intel Core i5 (2.53 GHz), its prototype also being written in
Python:

=========  =========  ==========================  =============
variant    platform   workload                    paper time
=========  =========  ==========================  =============
EMTS5      Chti       Strassen (small PTGs)       0.45 s (SD 0.01)
EMTS5      Chti       100-node PTGs               2.7 s (SD 1.1)
EMTS5      Grelon     small PTGs                  1.3 s (SD 0.07)
EMTS5      Grelon     100-node PTGs               5.5 s (SD 1.7)
EMTS10     Grelon     small PTGs                  9.6 s (SD 0.5)
EMTS10     Grelon     100-node PTGs               38.1 s (SD 9.5)
=========  =========  ==========================  =============

This harness measures the same six cells on the current host.  Absolute
values depend on the machine; what must hold is the *structure*: EMTS5
on small PTGs is sub-second-ish, 100-node PTGs cost a few times more,
Grelon (120 procs) costs more than Chti (20), and EMTS10 is roughly an
order of magnitude above EMTS5 (4x the evaluations times 2x the
generations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._rng import ensure_generator, iter_seeds
from ..core import EMTS, emts5, emts10
from ..obs.instrument import run_snapshot
from ..platform import Cluster, chti, grelon
from ..timemodels import SyntheticModel, TimeTable
from ..workloads import DaggenParams, generate_daggen, generate_strassen
from .report import text_table

__all__ = ["RuntimeCell", "RuntimeReport", "measure_runtimes"]


@dataclass(frozen=True)
class RuntimeCell:
    """Measured timing for one (variant, platform, workload) cell."""

    variant: str
    platform: str
    workload: str
    mean_seconds: float
    std_seconds: float
    repetitions: int
    paper_mean_seconds: float
    paper_std_seconds: float
    # fitness-evaluation engine counters, averaged over the repetitions
    mean_evaluations: float = 0.0
    mean_mapper_calls: float = 0.0
    cache_hit_rate: float = 0.0


@dataclass
class RuntimeReport:
    """All measured cells with a text renderer."""

    cells: list[RuntimeCell]

    def cell(self, variant: str, platform: str, workload: str) -> RuntimeCell:
        """Look up one cell."""
        for c in self.cells:
            if (
                c.variant == variant
                and c.platform == platform
                and c.workload == workload
            ):
                return c
        raise KeyError((variant, platform, workload))

    def render(self) -> str:
        """Side-by-side measured vs paper timings plus evaluator stats."""
        rows = [
            [
                c.variant,
                c.platform,
                c.workload,
                c.mean_seconds,
                c.std_seconds,
                c.paper_mean_seconds,
                c.paper_std_seconds,
                c.mean_mapper_calls,
                f"{c.cache_hit_rate:.1%}",
            ]
            for c in self.cells
        ]
        return text_table(
            [
                "variant",
                "platform",
                "workload",
                "mean[s]",
                "sd[s]",
                "paper mean[s]",
                "paper sd[s]",
                "mapper calls",
                "cache hits",
            ],
            rows,
        )


def _measure(
    emts: EMTS,
    cluster: Cluster,
    ptgs: list,
    seed: int | None,
) -> tuple[float, float, float, float, float]:
    model = SyntheticModel()
    times = []
    evaluations = []
    mapper_calls = []
    hits = []
    stream = iter_seeds(ensure_generator(seed, "runtime", emts.name))
    for ptg in ptgs:
        table = TimeTable.build(model, ptg, cluster)
        t0 = time.perf_counter()
        result = emts.schedule(ptg, cluster, table, rng=next(stream))
        times.append(time.perf_counter() - t0)
        # read the counters through the canonical metrics-registry
        # projection — the same numbers the harness records, so the
        # runtime table and the comparison records can never disagree
        snap = run_snapshot(result)
        evaluations.append(snap["evaluations"])
        mapper_calls.append(snap["mapper_calls"])
        hits.append(snap["cache_hits"])
    arr = np.asarray(times)
    total_evals = sum(evaluations)
    return (
        float(arr.mean()),
        float(arr.std(ddof=1) if arr.size > 1 else 0.0),
        float(np.mean(evaluations)) if evaluations else 0.0,
        float(np.mean(mapper_calls)) if mapper_calls else 0.0,
        float(sum(hits) / total_evals) if total_evals else 0.0,
    )


def measure_runtimes(
    seed: int | None = None,
    repetitions: int = 5,
    workers: int = 0,
    fitness_cache: bool = True,
    verify: str = "off",
) -> RuntimeReport:
    """Measure the paper's six runtime cells on this host.

    ``workers`` / ``fitness_cache`` configure the fitness-evaluation
    engine (see :mod:`repro.core.evaluator`); both leave the computed
    schedules unchanged and only affect wall-clock time.  ``verify``
    enables online differential verification of the fitness values
    (``"sample"`` or ``"full"``); it too is results-transparent but its
    cost shows up in the measured times — which is exactly how the
    ``--verify sample`` overhead budget is audited.
    """
    rng = ensure_generator(seed, "runtime", "workloads")
    small = [
        generate_strassen(rng=rng, name=f"rt-strassen-{i}")
        for i in range(repetitions)
    ]
    large = [
        generate_daggen(
            DaggenParams(
                num_tasks=100,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=rng,
            name=f"rt-irregular-{i}",
        )
        for i in range(repetitions)
    ]
    plan = [
        # variant factory, platform, workload, ptgs, paper mean, paper sd
        (emts5, chti(), "strassen", small, 0.45, 0.01),
        (emts5, chti(), "100-node", large, 2.7, 1.1),
        (emts5, grelon(), "strassen", small, 1.3, 0.07),
        (emts5, grelon(), "100-node", large, 5.5, 1.7),
        (emts10, grelon(), "strassen", small, 9.6, 0.5),
        (emts10, grelon(), "100-node", large, 38.1, 9.5),
    ]
    cells = []
    for factory, cluster, workload, ptgs, p_mean, p_std in plan:
        emts = factory(
            workers=workers, fitness_cache=fitness_cache, verify=verify
        )
        mean, std, evals, calls, hit_rate = _measure(
            emts, cluster, ptgs, seed
        )
        cells.append(
            RuntimeCell(
                variant=emts.name,
                platform=cluster.name,
                workload=workload,
                mean_seconds=mean,
                std_seconds=std,
                repetitions=len(ptgs),
                paper_mean_seconds=p_mean,
                paper_std_seconds=p_std,
                mean_evaluations=evals,
                mean_mapper_calls=calls,
                cache_hit_rate=hit_rate,
            )
        )
    return RuntimeReport(cells=cells)
