"""Parameter-sensitivity study for EMTS.

The paper fixes its EA parameters to "reasonable values" (Δ = 0.9,
f_m = 0.33, σ = 5, a = 0.2) and explicitly declines to tune them — "we
are not primarily interested in finding the best parameters for each
case".  This harness answers the obvious follow-up question: *how much
does it matter?*  For each parameter it sweeps a value grid while
holding the others at the paper's settings, and reports the mean
makespan (relative to the paper-default run) per value.

A flat profile around the default validates the paper's choice; a steep
profile flags a parameter a practitioner should tune.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_generator, iter_seeds
from ..core import EMTS, EMTSConfig, emts5_config
from ..graph import PTG
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, TimeTable
from .report import text_table

__all__ = ["SensitivityResult", "run_sensitivity_study", "DEFAULT_GRIDS"]

#: Default value grids per tunable parameter (paper values included).
DEFAULT_GRIDS: dict[str, tuple] = {
    "fm": (0.1, 0.2, 0.33, 0.5, 0.8),
    "shrink_probability": (0.0, 0.1, 0.2, 0.4, 0.6),
    "sigma": (1.0, 2.0, 5.0, 10.0, 20.0),
    "delta": (0.5, 0.7, 0.9, 1.0),
}

#: The paper's setting of each swept parameter.
PAPER_VALUES = {
    "fm": 0.33,
    "shrink_probability": 0.2,
    "sigma": 5.0,
    "delta": 0.9,
}


def _config_with(parameter: str, value: float) -> EMTSConfig:
    base = emts5_config()
    if parameter == "sigma":
        return base.with_updates(
            sigma_stretch=value, sigma_shrink=value
        )
    return base.with_updates(**{parameter: value})


@dataclass
class SensitivityResult:
    """Mean relative makespan per (parameter, value)."""

    # parameter -> {value: mean makespan / mean paper-default makespan}
    profiles: dict[str, dict[float, float]]
    baseline_makespan: float  # mean makespan at the paper's settings

    def profile(self, parameter: str) -> dict[float, float]:
        """The swept curve of one parameter (1.0 = paper default)."""
        return self.profiles[parameter]

    def worst_degradation(self, parameter: str) -> float:
        """Largest relative makespan across the grid (>= 1 means the
        paper's value is at least as good as the worst grid point)."""
        return max(self.profiles[parameter].values())

    def flat_within(self, parameter: str, slack: float) -> bool:
        """True when every grid value lands within ``slack`` of the
        paper default's quality."""
        return all(
            v <= 1.0 + slack
            for v in self.profiles[parameter].values()
        )

    def render(self) -> str:
        """One table row per (parameter, value)."""
        rows = []
        for parameter, profile in self.profiles.items():
            for value, rel in sorted(profile.items()):
                marker = (
                    " (paper)"
                    if value == PAPER_VALUES.get(parameter)
                    else ""
                )
                rows.append(
                    [parameter, f"{value:g}{marker}", rel]
                )
        return text_table(
            ["parameter", "value", "makespan / paper-default"], rows
        )


def run_sensitivity_study(
    ptgs: list[PTG],
    cluster: Cluster,
    model: ExecutionTimeModel,
    grids: dict[str, tuple] | None = None,
    seed: int | None = None,
) -> SensitivityResult:
    """Sweep each parameter's grid on the given problems.

    Every (parameter, value) cell schedules all ``ptgs`` with the same
    per-problem RNG seeds, so cells are directly comparable.
    """
    grids = grids or DEFAULT_GRIDS
    tables = [
        TimeTable.build(model, ptg, cluster) for ptg in ptgs
    ]
    problem_seeds = [
        s
        for s, _ in zip(
            iter_seeds(ensure_generator(seed, "sensitivity")), ptgs
        )
    ]

    def mean_makespan(config: EMTSConfig) -> float:
        algorithm = EMTS(config)
        values = [
            algorithm.schedule(
                ptg, cluster, table, rng=problem_seed
            ).makespan
            for ptg, table, problem_seed in zip(
                ptgs, tables, problem_seeds
            )
        ]
        return float(np.mean(values))

    baseline = mean_makespan(emts5_config())
    profiles: dict[str, dict[float, float]] = {}
    for parameter, grid in grids.items():
        profiles[parameter] = {
            float(value): mean_makespan(
                _config_with(parameter, value)
            )
            / baseline
            for value in grid
        }
    return SensitivityResult(
        profiles=profiles, baseline_makespan=baseline
    )
