"""Comparing evolutionary-method variants (paper Section VI).

The paper's first future-work item: "different evolutionary methods
could be compared to each other with respect to scheduling performance
and speed".  This harness does exactly that — it runs a panel of EMTS
configurations on shared problems and reports, per variant, the mean
makespan (quality) and the mean optimization wall time (speed), plus
the quality-per-budget figure that makes the trade-off comparable.

The default panel covers the method axes the paper discusses:

* the paper's EMTS5 and EMTS10 ((5+25) and (10+100) plus strategies);
* a comma strategy of EMTS10's size (selection ablation at scale);
* a wide-exploration plus strategy (``fm = 1.0``, uniform-width
  mutation count) for the stalled-seed regime;
* EMTS5 with the rejection-strategy mapper (speed without quality
  change).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import ensure_generator, iter_seeds
from ..core import EMTS, emts5_config, emts10_config
from ..graph import PTG
from ..platform import Cluster
from ..timemodels import ExecutionTimeModel, TimeTable
from .report import text_table

__all__ = ["VariantOutcome", "VariantsResult", "compare_variants",
           "default_variant_panel"]


def default_variant_panel() -> list[EMTS]:
    """The default method panel (see module docstring)."""
    return [
        EMTS(emts5_config()),
        EMTS(emts10_config()),
        EMTS(
            emts10_config().with_updates(
                selection="comma", name="emts10-comma"
            )
        ),
        EMTS(
            emts5_config().with_updates(
                fm=1.0, name="emts5-explore"
            )
        ),
        EMTS(
            emts5_config().with_updates(
                use_rejection=True, name="emts5-reject"
            )
        ),
    ]


@dataclass(frozen=True)
class VariantOutcome:
    """Aggregated quality/speed of one variant."""

    name: str
    mean_makespan: float
    mean_seconds: float
    mean_evaluations: float

    @property
    def seconds_per_evaluation(self) -> float:
        """Average cost of one fitness evaluation."""
        if self.mean_evaluations == 0:
            return 0.0
        return self.mean_seconds / self.mean_evaluations


@dataclass
class VariantsResult:
    """All variant outcomes on one problem set."""

    outcomes: list[VariantOutcome]

    def outcome(self, name: str) -> VariantOutcome:
        """Look up one variant by name."""
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(name)

    def best_quality(self) -> VariantOutcome:
        """The variant with the lowest mean makespan."""
        return min(self.outcomes, key=lambda o: o.mean_makespan)

    def fastest(self) -> VariantOutcome:
        """The variant with the lowest mean optimization time."""
        return min(self.outcomes, key=lambda o: o.mean_seconds)

    def render(self) -> str:
        """Quality/speed table, best quality first."""
        rows = [
            [
                o.name,
                o.mean_makespan,
                o.mean_seconds,
                int(o.mean_evaluations),
                o.seconds_per_evaluation * 1e3,
            ]
            for o in sorted(
                self.outcomes, key=lambda o: o.mean_makespan
            )
        ]
        return text_table(
            [
                "variant",
                "mean makespan [s]",
                "mean time [s]",
                "evals",
                "ms/eval",
            ],
            rows,
        )


def compare_variants(
    ptgs: list[PTG],
    cluster: Cluster,
    model: ExecutionTimeModel,
    variants: list[EMTS] | None = None,
    seed: int | None = None,
) -> VariantsResult:
    """Run every variant on every problem with shared per-problem seeds."""
    variants = variants or default_variant_panel()
    tables = [TimeTable.build(model, ptg, cluster) for ptg in ptgs]
    problem_seeds = [
        s
        for s, _ in zip(
            iter_seeds(ensure_generator(seed, "variants")), ptgs
        )
    ]
    outcomes = []
    for variant in variants:
        makespans, seconds, evals = [], [], []
        for ptg, table, problem_seed in zip(
            ptgs, tables, problem_seeds
        ):
            # hand every variant an *identical* generator (not a bare
            # seed: EMTS would fold its config name into the stream),
            # so variants that only differ in bookkeeping — e.g. the
            # rejection mapper — take bit-identical trajectories
            result = variant.schedule(
                ptg,
                cluster,
                table,
                rng=np.random.default_rng(problem_seed),
            )
            makespans.append(result.makespan)
            seconds.append(result.elapsed_seconds)
            evals.append(result.evaluations)
        outcomes.append(
            VariantOutcome(
                name=variant.name,
                mean_makespan=float(np.mean(makespans)),
                mean_seconds=float(np.mean(seconds)),
                mean_evaluations=float(np.mean(evals)),
            )
        )
    return VariantsResult(outcomes=outcomes)
