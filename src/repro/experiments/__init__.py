"""Experiment harnesses reproducing the paper's evaluation (Section V).

Public API:

* :func:`run_comparison`, :class:`ComparisonResult`, :class:`RunRecord` —
  the generic scheduler-comparison harness;
* :mod:`~repro.experiments.figures` — per-figure data generators;
* :func:`measure_runtimes` — the Section V runtime table (E7);
* :func:`mean_confidence_interval`, :func:`relative_makespans` — the
  statistics of the paper's bar plots;
* :func:`text_table`, :func:`write_csv` — report rendering.
"""

from . import figures
from .campaign import (
    CampaignResult,
    Trial,
    TrialFailure,
    campaign_status,
    run_campaign,
)
from .convergence import ConvergenceResult, run_convergence_study
from .harness import (
    ComparisonResult,
    RunRecord,
    comparison_trials,
    record_from_dict,
    record_to_dict,
    run_comparison,
    run_comparison_campaign,
)
from .metrics import MeanCI, mean_confidence_interval, relative_makespans
from .report import format_panel, text_table, write_csv
from .runtime import RuntimeCell, RuntimeReport, measure_runtimes
from .scalability import ScalabilityResult, run_scalability_sweep
from .sensitivity import SensitivityResult, run_sensitivity_study
from .variants import (
    VariantOutcome,
    VariantsResult,
    compare_variants,
    default_variant_panel,
)

__all__ = [
    "figures",
    "RunRecord",
    "ComparisonResult",
    "run_comparison",
    "Trial",
    "TrialFailure",
    "CampaignResult",
    "run_campaign",
    "campaign_status",
    "comparison_trials",
    "run_comparison_campaign",
    "record_to_dict",
    "record_from_dict",
    "MeanCI",
    "mean_confidence_interval",
    "relative_makespans",
    "text_table",
    "write_csv",
    "format_panel",
    "RuntimeCell",
    "RuntimeReport",
    "measure_runtimes",
    "ScalabilityResult",
    "run_scalability_sweep",
    "ConvergenceResult",
    "run_convergence_study",
    "SensitivityResult",
    "run_sensitivity_study",
    "VariantOutcome",
    "VariantsResult",
    "compare_variants",
    "default_variant_panel",
]
