"""Figure 3 — probability density of the mutation operator.

The paper's Figure 3 plots the distribution of the allocation adjustment
``C`` (Eq. 1) for sigma_1 = sigma_2 = 5 and a = 0.2: an asymmetric,
zero-free distribution where small stretches are most likely, shrinks
carry 20 % of the mass, and large adjustments tail off like a half
normal.  We regenerate it by sampling the actual operator and compare the
empirical frequencies against the closed-form pmf of
:func:`repro.core.adjustment_pmf` — a statistical self-test of the
operator implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..._rng import ensure_generator
from ...core import adjustment_pmf, sample_adjustments
from ..report import text_table

__all__ = ["Figure3Data", "generate_figure3"]


@dataclass
class Figure3Data:
    """Empirical and analytic mutation-step distribution."""

    support: np.ndarray  # adjustment values k
    empirical: np.ndarray  # observed frequency of each k
    analytic: np.ndarray  # closed-form pmf of each k
    samples: int
    sigma: float
    shrink_probability: float

    @property
    def shrink_mass(self) -> float:
        """Observed probability of a negative adjustment."""
        return float(self.empirical[self.support < 0].sum())

    @property
    def max_abs_error(self) -> float:
        """Largest |empirical - analytic| over the support."""
        return float(np.abs(self.empirical - self.analytic).max())

    def render(self, display_range: int = 12) -> str:
        """Text table of the distribution near the origin."""
        mask = np.abs(self.support) <= display_range
        rows = [
            [int(k), float(e), float(a)]
            for k, e, a in zip(
                self.support[mask],
                self.empirical[mask],
                self.analytic[mask],
            )
        ]
        body = text_table(
            ["C", "empirical", "analytic"], rows, float_format="{:.5f}"
        )
        return body + (
            f"\nshrink mass: {self.shrink_mass:.4f} "
            f"(target a = {self.shrink_probability}), "
            f"max |emp - pmf| = {self.max_abs_error:.5f} "
            f"over {self.samples} samples\n"
        )


def generate_figure3(
    samples: int = 1_000_000,
    sigma: float = 5.0,
    shrink_probability: float = 0.2,
    rng=None,
) -> Figure3Data:
    """Sample the Eq. 1 operator and tabulate its distribution."""
    rng = ensure_generator(rng, "figures", "figure3")
    draws = sample_adjustments(
        samples,
        rng,
        sigma_stretch=sigma,
        sigma_shrink=sigma,
        shrink_probability=shrink_probability,
    )
    lo, hi = int(draws.min()), int(draws.max())
    support = np.arange(lo, hi + 1, dtype=np.int64)
    counts = np.bincount(draws - lo, minlength=support.size)
    empirical = counts / samples
    analytic = adjustment_pmf(
        support,
        sigma_stretch=sigma,
        sigma_shrink=sigma,
        shrink_probability=shrink_probability,
    )
    return Figure3Data(
        support=support,
        empirical=empirical,
        analytic=analytic,
        samples=samples,
        sigma=sigma,
        shrink_probability=shrink_probability,
    )
