"""Shared machinery for the relative-makespan figures (Figures 4 and 5).

Both figures share one layout: four PTG-class panels (FFT, Strassen,
layered n=100, irregular n=100), each showing the mean relative makespan
``T_baseline / T_EMTS`` of MCPA and HCPA on Chti and Grelon, with 95 %
confidence intervals.  This module builds the corpus panels, runs the
comparison harness and aggregates into that structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..._rng import ensure_generator
from ...allocation import HcpaAllocator, McpaAllocator
from ...core import EMTS
from ...platform import paper_platforms
from ...timemodels import ExecutionTimeModel
from ...workloads import (
    fft_corpus,
    irregular_corpus,
    layered_corpus,
    strassen_corpus,
)
from ..harness import (
    ComparisonResult,
    run_comparison,
    run_comparison_campaign,
)
from ..metrics import MeanCI
from ..report import text_table

__all__ = [
    "PANEL_ORDER",
    "RelativeMakespanFigure",
    "build_panels",
    "run_relative_makespan_figure",
]

#: Panel titles in the paper's left-to-right order.
PANEL_ORDER = ("fft", "strassen", "layered-100", "irregular-100")


def build_panels(seed: int | None, scale: float) -> dict[str, list]:
    """The four figure panels' PTG lists.

    The paper's layered/irregular panels show the 100-task graphs
    ("layered n=100", "irregular n=100"), so those corpora are generated
    at size 100 only.
    """
    return {
        "fft": fft_corpus(
            ensure_generator(seed, "corpus", "fft"), scale
        ),
        "strassen": strassen_corpus(
            ensure_generator(seed, "corpus", "strassen"), scale
        ),
        "layered-100": layered_corpus(
            ensure_generator(seed, "corpus", "layered"),
            scale,
            sizes=(100,),
        ),
        "irregular-100": irregular_corpus(
            ensure_generator(seed, "corpus", "irregular"),
            scale,
            sizes=(100,),
        ),
    }


@dataclass
class RelativeMakespanFigure:
    """Aggregated data behind one Figure 4/5-style grid."""

    emts_name: str
    model_name: str
    # (panel, platform, baseline) -> MeanCI of T_baseline / T_EMTS
    cells: dict[tuple[str, str, str], MeanCI]
    raw: ComparisonResult

    @property
    def panels(self) -> tuple[str, ...]:
        """Panel labels, in the paper's order."""
        found = {p for (p, _, _) in self.cells}
        return tuple(p for p in PANEL_ORDER if p in found)

    @property
    def platforms(self) -> tuple[str, ...]:
        """Platform labels."""
        return tuple(sorted({pl for (_, pl, _) in self.cells}))

    @property
    def baselines(self) -> tuple[str, ...]:
        """Baseline labels."""
        return tuple(sorted({b for (_, _, b) in self.cells}))

    def cell(
        self, panel: str, platform: str, baseline: str
    ) -> MeanCI:
        """One bar of the figure."""
        return self.cells[(panel, platform, baseline)]

    def to_rows(self) -> list[dict]:
        """Flat dict rows (CSV-friendly), one per figure bar."""
        rows = []
        for (panel, platform, baseline), ci in sorted(
            self.cells.items()
        ):
            rows.append(
                {
                    "panel": panel,
                    "platform": platform,
                    "baseline": baseline,
                    "emts": self.emts_name,
                    "model": self.model_name,
                    "mean": ci.mean,
                    "ci95_low": ci.low,
                    "ci95_high": ci.high,
                    "n": ci.n,
                }
            )
        return rows

    def render(self) -> str:
        """The whole grid as a text table (one row per bar)."""
        rows = []
        for panel in self.panels:
            for baseline in self.baselines:
                for platform in self.platforms:
                    ci = self.cells[(panel, platform, baseline)]
                    rows.append(
                        [
                            panel,
                            baseline,
                            platform,
                            ci.mean,
                            ci.low,
                            ci.high,
                            ci.n,
                        ]
                    )
        return text_table(
            [
                "panel",
                "baseline",
                "platform",
                f"T_base/T_{self.emts_name}",
                "ci95_low",
                "ci95_high",
                "n",
            ],
            rows,
        )


def run_relative_makespan_figure(
    model: ExecutionTimeModel,
    emts: EMTS,
    seed: int | None = None,
    scale: float = 1.0,
    panels: dict[str, list] | None = None,
    campaign_dir: str | None = None,
    trial_timeout: float | None = None,
    progress=None,
    trace=None,
    metrics=None,
) -> RelativeMakespanFigure:
    """Run the full comparison grid for one model and EMTS variant.

    With ``campaign_dir`` the comparison runs as a crash-only campaign
    (one subprocess-isolated trial per (PTG, platform) pair, persisted
    under that directory); interrupting and re-running the same command
    resumes where it stopped and aggregates to identical figure cells.
    Quarantined trials are excluded from the aggregation.

    ``trace`` / ``metrics`` (campaign mode only) record one
    ``campaign_trial`` event and outcome counter per trial — see
    :func:`repro.experiments.campaign.run_campaign`.
    """
    if panels is None:
        panels = build_panels(seed, scale)
    platforms = list(paper_platforms())
    baselines = [McpaAllocator(), HcpaAllocator()]
    if campaign_dir is not None:
        raw, _campaign = run_comparison_campaign(
            panels,
            platforms,
            model,
            emts,
            baselines,
            campaign_dir,
            seed=seed,
            trial_timeout=trial_timeout,
            progress=progress,
            trace=trace,
            metrics=metrics,
        )
    else:
        raw = run_comparison(
            panels, platforms, model, emts, baselines, seed=seed
        )
    cells: dict[tuple[str, str, str], MeanCI] = {}
    for panel in panels:
        for cluster in platforms:
            subset = raw.filter(ptg_class=panel, platform=cluster.name)
            for b in baselines:
                cells[(panel, cluster.name, b.name)] = (
                    subset.relative_makespan(b.name)
                )
    return RelativeMakespanFigure(
        emts_name=emts.name,
        model_name=model.name,
        cells=cells,
        raw=raw,
    )
