"""Figure 4 — relative makespan under Model 1 (Amdahl).

Average relative makespan of MCPA and HCPA compared to EMTS5
(``T_MCPA / T_EMTS5`` etc.) for FFT, Strassen, layered n=100 and
irregular n=100 PTGs on Chti and Grelon, with 95 % confidence intervals.

Paper findings this figure must reproduce in shape:

* all ratios >= 1 (the plus-strategy EA, seeded with the heuristics' own
  solutions, can never lose to them);
* only slight improvement over MCPA on regular PTGs (MCPA exploits their
  level parallelism well);
* significant improvement over HCPA, and on irregular PTGs generally;
* larger improvements on Grelon (120 procs) than on Chti (20 procs).
"""

from __future__ import annotations

from ...core import emts5
from ...timemodels import AmdahlModel
from .comparison import (
    RelativeMakespanFigure,
    run_relative_makespan_figure,
)

__all__ = ["generate_figure4"]


def generate_figure4(
    seed: int | None = None,
    scale: float = 1.0,
    panels: dict | None = None,
    campaign_dir: str | None = None,
    trial_timeout: float | None = None,
    progress=None,
    trace=None,
    metrics=None,
    verify: str = "off",
) -> RelativeMakespanFigure:
    """Run the Figure 4 experiment (Model 1, EMTS5).

    ``scale`` shrinks the corpus for quick runs; the full paper corpus
    (400 FFT + 100 Strassen + 36 layered-100 + 108 irregular-100 PTGs,
    each on two platforms) is ``scale=1``.  ``campaign_dir`` runs the
    sweep as a resumable crash-only campaign (see
    :mod:`repro.experiments.campaign`); ``trace`` / ``metrics`` record
    per-trial observability events in campaign mode.  ``verify``
    enables online differential verification inside every EMTS trial
    (``"off"``/``"sample"``/``"full"``, see
    :class:`repro.core.EMTSConfig`).
    """
    return run_relative_makespan_figure(
        AmdahlModel(),
        emts5(verify=verify),
        seed=seed,
        scale=scale,
        panels=panels,
        campaign_dir=campaign_dir,
        trial_timeout=trial_timeout,
        progress=progress,
        trace=trace,
        metrics=metrics,
    )
