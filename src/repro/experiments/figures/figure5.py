"""Figure 5 — relative makespan under Model 2 (non-monotone), EMTS5 and
EMTS10.

The same grid as Figure 4, but with the synthetic non-monotone model and
two EMTS budgets: the upper row of the paper's figure is EMTS5, the lower
row EMTS10.

Paper findings this figure must reproduce in shape:

* improvements exceed the Model 1 case — the heuristics' monotonicity
  assumption now misleads them (their allocations stall at 4-8
  processors), while EMTS keeps optimizing;
* EMTS5 reduces makespans significantly on Grelon in all panels;
* EMTS10 >= EMTS5 everywhere, with the extra budget paying off mostly on
  irregular PTGs (regular PTGs are already near-optimized by EMTS5).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ...core import emts5, emts10
from ...obs.trace import Tracer
from ...timemodels import SyntheticModel
from .comparison import (
    RelativeMakespanFigure,
    build_panels,
    run_relative_makespan_figure,
)

__all__ = ["Figure5Data", "generate_figure5"]


@dataclass
class Figure5Data:
    """Both rows of Figure 5."""

    emts5_row: RelativeMakespanFigure
    emts10_row: RelativeMakespanFigure

    def render(self) -> str:
        """Text rendering of both rows."""
        return (
            "== EMTS5 row ==\n"
            + self.emts5_row.render()
            + "\n== EMTS10 row ==\n"
            + self.emts10_row.render()
        )


def generate_figure5(
    seed: int | None = None,
    scale: float = 1.0,
    include_emts10: bool = True,
    panels: dict | None = None,
    campaign_dir: str | None = None,
    trial_timeout: float | None = None,
    progress=None,
    trace=None,
    metrics=None,
    verify: str = "off",
) -> Figure5Data:
    """Run the Figure 5 experiment (Model 2; EMTS5 and EMTS10 rows).

    Both rows share the same PTG panels so their results are directly
    comparable, as in the paper.  ``campaign_dir`` runs each row as a
    resumable crash-only campaign in its own subdirectory
    (``<dir>/emts5``, ``<dir>/emts10``); ``trace`` / ``metrics`` record
    per-trial observability events in campaign mode (both rows share
    the same trace file and registry).  ``verify`` enables online
    differential verification inside every EMTS trial.
    """
    if panels is None:
        panels = build_panels(seed, scale)
    model = SyntheticModel()

    def _dir(name: str) -> str | None:
        if campaign_dir is None:
            return None
        return str(Path(campaign_dir) / name)

    # open the trace once so both rows land in one file (a fresh Tracer
    # per row would truncate the first row's events)
    owns_tracer = trace is not None and not isinstance(trace, Tracer)
    tracer = Tracer(trace) if owns_tracer else trace
    try:
        row5 = run_relative_makespan_figure(
            model,
            emts5(verify=verify),
            seed=seed,
            scale=scale,
            panels=panels,
            campaign_dir=_dir("emts5"),
            trial_timeout=trial_timeout,
            progress=progress,
            trace=tracer,
            metrics=metrics,
        )
        if include_emts10:
            row10 = run_relative_makespan_figure(
                model,
                emts10(verify=verify),
                seed=seed,
                scale=scale,
                panels=panels,
                campaign_dir=_dir("emts10"),
                trial_timeout=trial_timeout,
                progress=progress,
                trace=tracer,
                metrics=metrics,
            )
        else:
            row10 = row5
    finally:
        if owns_tracer:
            tracer.close()
    return Figure5Data(emts5_row=row5, emts10_row=row10)
