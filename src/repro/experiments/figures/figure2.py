"""Figure 2 — the allocation-vector encoding of individuals.

The paper's Figure 2 is an illustration: a five-node PTG where each node
carries a processor allocation, encoded as the vector ``I`` with
``I(i) = s(v_i)``.  We regenerate it as a concrete demonstration: the
same five-node fork-join PTG, the same example allocations, and the
rendered encoding table — doubling as a doctest of
:func:`repro.core.describe_genome`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import describe_genome, validate_genome
from ...graph import PTG, PTGBuilder

__all__ = ["Figure2Data", "generate_figure2"]


def _example_ptg() -> PTG:
    """The five-node PTG sketched in the paper's Figure 2."""
    b = PTGBuilder("figure2-example")
    n1 = b.add_task("node1", work=1e9)
    n2 = b.add_task("node2", work=1e9)
    n3 = b.add_task("node3", work=1e9)
    n4 = b.add_task("node4", work=1e9)
    n5 = b.add_task("node5", work=1e9)
    b.add_edges(
        [(n1, n2), (n1, n3), (n2, n4), (n3, n4), (n3, n5)]
    )
    return b.build()


@dataclass
class Figure2Data:
    """The example PTG and its encoded individual."""

    ptg: PTG
    genome: np.ndarray

    def render(self) -> str:
        """The Figure 2 encoding table as text."""
        return (
            f"PTG {self.ptg.name!r}: {self.ptg.num_tasks} nodes, "
            f"{self.ptg.num_edges} edges\n"
            f"individual I = {list(map(int, self.genome))}\n\n"
            + describe_genome(self.ptg, self.genome)
            + "\n"
        )


def generate_figure2(P: int = 8) -> Figure2Data:
    """Build the encoding demonstration (Figure 2).

    The example allocations mirror the paper's sketch (node 1 gets three
    processors, stored at position 1 of the individual).
    """
    ptg = _example_ptg()
    genome = np.array([3, 2, 1, 2, 1], dtype=np.int64)
    validate_genome(genome, ptg.num_tasks, P)
    return Figure2Data(ptg=ptg, genome=genome)
