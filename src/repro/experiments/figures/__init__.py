"""Figure-data generators — one module per paper figure.

* :func:`generate_figure1` — PDGEMM-like non-monotone timing curves;
* :func:`generate_figure2` — the allocation-vector encoding demo;
* :func:`generate_figure3` — mutation-operator distribution (Eq. 1);
* :func:`generate_figure4` — Model 1 relative makespans (EMTS5);
* :func:`generate_figure5` — Model 2 relative makespans (EMTS5/EMTS10);
* :func:`generate_figure6` — MCPA vs EMTS10 Gantt comparison.
"""

from .comparison import (
    PANEL_ORDER,
    RelativeMakespanFigure,
    build_panels,
    run_relative_makespan_figure,
)
from .figure1 import Figure1Data, generate_figure1
from .figure2 import Figure2Data, generate_figure2
from .figure3 import Figure3Data, generate_figure3
from .figure4 import generate_figure4
from .figure5 import Figure5Data, generate_figure5
from .figure6 import Figure6Data, generate_figure6

__all__ = [
    "PANEL_ORDER",
    "RelativeMakespanFigure",
    "build_panels",
    "run_relative_makespan_figure",
    "Figure1Data",
    "generate_figure1",
    "Figure2Data",
    "generate_figure2",
    "Figure3Data",
    "generate_figure3",
    "generate_figure4",
    "Figure5Data",
    "generate_figure5",
    "Figure6Data",
    "generate_figure6",
]
