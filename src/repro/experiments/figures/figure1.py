"""Figure 1 — PDGEMM execution times are not monotone in p.

The paper's Figure 1 shows measured PDGEMM wall times on the Cray XT4 of
LBNL for matrix sizes 1024 and 2048 over 2..32 processors: time broadly
falls with more processors but spikes at awkward counts.  We regenerate
the figure from the PDGEMM-like analytic model (see
:mod:`repro.timemodels.pdgemm` for the substitution rationale) and verify
its defining property: the curve is **not** monotonically decreasing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...timemodels import pdgemm_time
from ..report import text_table

__all__ = ["Figure1Data", "generate_figure1"]

#: The matrix sizes shown in the paper's Figure 1.
MATRIX_SIZES = (1024, 2048)
#: Processor counts on the x-axis.
PROCESSOR_RANGE = tuple(range(1, 33))


@dataclass
class Figure1Data:
    """Modelled PDGEMM timing curves."""

    matrix_sizes: tuple[int, ...]
    processors: np.ndarray
    times: dict[int, np.ndarray]  # matrix size -> seconds per p

    def non_monotone(self, n: int) -> bool:
        """True when the curve for matrix size ``n`` has an uphill step."""
        t = self.times[n]
        return bool(np.any(np.diff(t) > 0))

    def spikes(self, n: int) -> list[int]:
        """Processor counts where time increases vs. the previous count."""
        t = self.times[n]
        return [
            int(self.processors[i + 1])
            for i in range(len(t) - 1)
            if t[i + 1] > t[i]
        ]

    def render(self) -> str:
        """Text rendering of both curves."""
        rows = []
        for i, p in enumerate(self.processors):
            rows.append(
                [int(p)]
                + [float(self.times[n][i]) for n in self.matrix_sizes]
            )
        headers = ["p"] + [f"n={n} [s]" for n in self.matrix_sizes]
        body = text_table(headers, rows)
        notes = [
            f"n={n}: non-monotone={self.non_monotone(n)}, "
            f"uphill at p={self.spikes(n)}"
            for n in self.matrix_sizes
        ]
        return body + "\n".join(notes) + "\n"


def generate_figure1(
    matrix_sizes: tuple[int, ...] = MATRIX_SIZES,
    processors: tuple[int, ...] = PROCESSOR_RANGE,
    speed_flops: float = 8.0e9,
) -> Figure1Data:
    """Compute the PDGEMM-like timing curves of Figure 1."""
    p = np.asarray(processors, dtype=np.int64)
    times = {
        n: np.array(
            [
                pdgemm_time(n, int(pi), speed_flops=speed_flops)
                for pi in p
            ]
        )
        for n in matrix_sizes
    }
    return Figure1Data(
        matrix_sizes=tuple(matrix_sizes), processors=p, times=times
    )
