"""Figure 6 — example schedules of MCPA vs EMTS10 (Gantt comparison).

The paper shows side-by-side Gantt charts for an irregular 100-node PTG
on Grelon under Model 2: MCPA's allocations stay tiny (poor utilization,
most of the 120 processors idle), while EMTS10 stretches the big tasks
across many processors and finishes earlier.

We regenerate the same comparison: one irregular n=100 PTG, both
schedules, their Gantt charts (ASCII and SVG) and the quantitative claim
behind the picture — EMTS10's makespan is smaller and its utilization
higher.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ...allocation import McpaAllocator
from ...core import emts10
from ...graph import PTG
from ...mapping import Schedule, ascii_gantt, save_svg_gantt
from ...platform import grelon
from ...timemodels import SyntheticModel, TimeTable
from ...workloads import DaggenParams, generate_daggen

__all__ = ["Figure6Data", "generate_figure6"]


@dataclass
class Figure6Data:
    """Both schedules of the Figure 6 comparison."""

    ptg: PTG
    mcpa_schedule: Schedule
    emts_schedule: Schedule

    @property
    def speedup(self) -> float:
        """``T_MCPA / T_EMTS10`` for this instance."""
        return self.mcpa_schedule.makespan / self.emts_schedule.makespan

    def render(self, width: int = 100) -> str:
        """Both Gantt charts as text, plus the headline numbers."""
        return (
            "== MCPA ==\n"
            + ascii_gantt(self.mcpa_schedule, width=width)
            + "\n== EMTS10 ==\n"
            + ascii_gantt(self.emts_schedule, width=width)
            + f"\nrelative makespan T_MCPA/T_EMTS10 = {self.speedup:.3f}, "
            f"utilization {self.mcpa_schedule.utilization:.1%} -> "
            f"{self.emts_schedule.utilization:.1%}\n"
        )

    def save_svgs(self, directory: str | Path) -> tuple[Path, Path]:
        """Write both charts as SVG files; returns their paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        mcpa_path = directory / "figure6_mcpa.svg"
        emts_path = directory / "figure6_emts10.svg"
        save_svg_gantt(self.mcpa_schedule, mcpa_path, title="MCPA")
        save_svg_gantt(self.emts_schedule, emts_path, title="EMTS10")
        return mcpa_path, emts_path


def generate_figure6(
    seed: int | None = None, ptg: PTG | None = None
) -> Figure6Data:
    """Run the Figure 6 comparison (irregular n=100 on Grelon, Model 2)."""
    if ptg is None:
        ptg = generate_daggen(
            DaggenParams(
                num_tasks=100,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=seed,
            name="figure6-irregular-100",
        )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    mcpa_schedule = McpaAllocator().schedule(ptg, table)
    emts_result = emts10().schedule(ptg, cluster, table, rng=seed)
    return Figure6Data(
        ptg=ptg,
        mcpa_schedule=mcpa_schedule,
        emts_schedule=emts_result.schedule,
    )
