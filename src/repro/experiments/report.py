"""Plain-text and CSV rendering of experiment results."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["text_table", "write_csv", "format_panel"]


def text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospaced table."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(c) if isinstance(c, float) else str(c)
                for c in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines) + "\n"


def write_csv(
    rows: list[Mapping], path: str | Path | None = None
) -> str:
    """Serialize dict rows as CSV; optionally write to ``path``."""
    if not rows:
        return ""
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def format_panel(title: str, body: str) -> str:
    """A titled section in the style of the paper's figure panels."""
    bar = "=" * max(len(title), 8)
    return f"{title}\n{bar}\n{body}\n"
