"""Deep structural validation of parallel task graphs.

:class:`repro.graph.PTG` already enforces the hard invariants (acyclicity,
unique names, valid edges) at construction time.  The checks here verify
the *softer* properties the paper's workloads rely on and produce a
human-readable report; the workload generators call :func:`validate_ptg`
in their own test suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .analysis import precedence_levels
from .ptg import PTG

__all__ = ["ValidationReport", "validate_ptg", "is_layered", "is_connected"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_ptg`.

    ``errors`` make the graph unusable for the paper's experiments;
    ``warnings`` are merely suspicious (e.g. disconnected components).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise :class:`ValueError` summarizing errors, if any."""
        if self.errors:
            raise ValueError(
                "PTG validation failed: " + "; ".join(self.errors)
            )

    def __str__(self) -> str:
        lines = []
        for e in self.errors:
            lines.append(f"ERROR: {e}")
        for w in self.warnings:
            lines.append(f"WARNING: {w}")
        return "\n".join(lines) if lines else "OK"


def is_connected(ptg: PTG) -> bool:
    """True when the underlying undirected graph is connected."""
    n = ptg.num_tasks
    if n <= 1:
        return True
    seen = np.zeros(n, dtype=bool)
    stack = [0]
    seen[0] = True
    count = 1
    while stack:
        u = stack.pop()
        for v in ptg.successors(u) + ptg.predecessors(u):
            if not seen[v]:
                seen[v] = True
                count += 1
                stack.append(v)
    return count == n


def is_layered(ptg: PTG) -> bool:
    """True when every edge connects adjacent precedence levels.

    This is the defining property of the paper's *layered* synthetic PTGs
    (DAGGEN ``jump=0``); *irregular* PTGs may skip levels.
    """
    lv = precedence_levels(ptg)
    return all(lv[v] - lv[u] == 1 for u, v in ptg.edges)


def validate_ptg(
    ptg: PTG,
    max_data_size: float | None = None,
    require_connected: bool = False,
) -> ValidationReport:
    """Run all soft checks on ``ptg`` and return a report.

    Parameters
    ----------
    max_data_size:
        If given, tasks whose ``data_size`` exceeds it are flagged (the
        paper bounds ``d`` by 125e6 doubles — 1 GB of memory per node).
    require_connected:
        Treat disconnectedness as an error rather than a warning.
    """
    rep = ValidationReport()

    work = ptg.work
    if np.any(~np.isfinite(work)) or np.any(work <= 0):
        rep.errors.append("some tasks have non-finite or non-positive work")

    alpha = ptg.alpha
    if np.any(alpha < 0) or np.any(alpha > 1):
        rep.errors.append("some tasks have alpha outside [0, 1]")

    if max_data_size is not None:
        too_big = np.flatnonzero(ptg.data_size > max_data_size)
        if too_big.size:
            rep.errors.append(
                f"{too_big.size} task(s) exceed max data_size "
                f"{max_data_size:g} (first: {ptg.task(int(too_big[0])).name})"
            )

    if not is_connected(ptg):
        msg = "graph is not (weakly) connected"
        if require_connected:
            rep.errors.append(msg)
        else:
            rep.warnings.append(msg)

    n_src = len(ptg.sources)
    n_snk = len(ptg.sinks)
    if n_src == 0 or n_snk == 0:
        # cannot actually happen in a DAG, but guard against regressions
        rep.errors.append("graph has no source or no sink")
    if n_src > max(1, ptg.num_tasks // 2):
        rep.warnings.append(
            f"unusually many sources ({n_src} of {ptg.num_tasks} tasks)"
        )
    return rep
