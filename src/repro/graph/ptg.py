"""Parallel task graph (PTG) data model.

A PTG is a directed acyclic graph whose nodes are *moldable* parallel tasks
(Section II-A of the paper).  Each task carries:

``work``
    Computational cost in floating-point operations (FLOP).
``alpha``
    Amdahl non-parallelizable fraction, ``0 <= alpha <= 1``.  Used by the
    execution-time models of Section IV-B.
``data_size``
    Number of 8-byte doubles the task operates on (``d`` in the paper);
    informational for workload generation, not used by the scheduler itself.

The class is designed for the hot loop of the evolutionary optimizer: node
attributes are mirrored into NumPy arrays, predecessor/successor lists are
stored as tuples of integer indices, and a topological order is computed
once at construction and cached.  Instances are immutable after
construction (builders live in :mod:`repro.graph.builder`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import CycleError, GraphError

__all__ = ["Task", "PTG"]


@dataclass(frozen=True)
class Task:
    """A single moldable parallel task.

    Parameters
    ----------
    name:
        Unique identifier within its PTG.
    work:
        Cost in FLOP; must be positive.
    alpha:
        Non-parallelizable fraction of the task (Amdahl), in ``[0, 1]``.
    data_size:
        Dataset size in doubles (``d``); zero means "unspecified".
    kind:
        Free-form label, e.g. ``"fft-butterfly"`` or ``"strassen-mult"``.
    """

    name: str
    work: float
    alpha: float = 0.0
    data_size: float = 0.0
    kind: str = "task"

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("task name must be a non-empty string")
        if not np.isfinite(self.work) or self.work <= 0.0:
            raise GraphError(
                f"task {self.name!r}: work must be finite and > 0, "
                f"got {self.work!r}"
            )
        if not (0.0 <= self.alpha <= 1.0):
            raise GraphError(
                f"task {self.name!r}: alpha must lie in [0, 1], "
                f"got {self.alpha!r}"
            )
        if self.data_size < 0.0:
            raise GraphError(
                f"task {self.name!r}: data_size must be >= 0, "
                f"got {self.data_size!r}"
            )

    def with_updates(self, **changes) -> "Task":
        """Return a copy of this task with ``changes`` applied."""
        current = {
            "name": self.name,
            "work": self.work,
            "alpha": self.alpha,
            "data_size": self.data_size,
            "kind": self.kind,
        }
        current.update(changes)
        return Task(**current)


class PTG:
    """An immutable parallel task graph.

    Parameters
    ----------
    tasks:
        Sequence of :class:`Task`; node ``i`` of the graph is ``tasks[i]``.
    edges:
        Iterable of ``(src_index, dst_index)`` pairs meaning *dst depends on
        src* (src must complete before dst may start).
    name:
        Optional graph label used in reports.

    Raises
    ------
    GraphError
        On duplicate task names, out-of-range or self-loop edges.
    CycleError
        If the edge set contains a cycle.
    """

    __slots__ = (
        "name",
        "_tasks",
        "_index_of",
        "_preds",
        "_succs",
        "_edges",
        "_topo",
        "_work",
        "_alpha",
        "_data_size",
        "_levels",
        "_layer_cache",
        "_csr_cache",
    )

    def __init__(
        self,
        tasks: Sequence[Task],
        edges: Iterable[tuple[int, int]],
        name: str = "ptg",
    ) -> None:
        self.name = name
        self._tasks: tuple[Task, ...] = tuple(tasks)
        if not self._tasks:
            raise GraphError("a PTG must contain at least one task")

        self._index_of: dict[str, int] = {}
        for i, t in enumerate(self._tasks):
            if not isinstance(t, Task):
                raise GraphError(f"node {i} is not a Task: {t!r}")
            if t.name in self._index_of:
                raise GraphError(f"duplicate task name {t.name!r}")
            self._index_of[t.name] = i

        n = len(self._tasks)
        edge_list: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        preds: list[list[int]] = [[] for _ in range(n)]
        succs: list[list[int]] = [[] for _ in range(n)]
        for e in edges:
            u, v = int(e[0]), int(e[1])
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references unknown node")
            if u == v:
                raise GraphError(f"self-loop on node {u}")
            if (u, v) in seen:
                continue  # silently de-duplicate parallel edges
            seen.add((u, v))
            edge_list.append((u, v))
            preds[v].append(u)
            succs[u].append(v)

        self._edges: tuple[tuple[int, int], ...] = tuple(edge_list)
        self._preds: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(p)) for p in preds
        )
        self._succs: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in succs
        )
        self._topo: np.ndarray = self._toposort()
        self._work = np.array([t.work for t in self._tasks], dtype=np.float64)
        self._alpha = np.array(
            [t.alpha for t in self._tasks], dtype=np.float64
        )
        self._data_size = np.array(
            [t.data_size for t in self._tasks], dtype=np.float64
        )
        self._levels: np.ndarray | None = None  # filled lazily by analysis
        self._layer_cache = None  # filled lazily by analysis._layers
        self._csr_cache = None  # filled lazily by analysis.csr_adjacency

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _toposort(self) -> np.ndarray:
        """Kahn's algorithm; raises :class:`CycleError` on cycles."""
        n = len(self._tasks)
        indeg = np.array(
            [len(p) for p in self._preds], dtype=np.int64
        )
        stack = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            for v in self._succs[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if len(order) != n:
            remaining = [
                self._tasks[i].name for i in range(n) if indeg[i] > 0
            ]
            raise CycleError(
                f"task graph {self.name!r} contains a cycle involving "
                f"{remaining[:5]}"
            )
        return np.asarray(order, dtype=np.int64)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of nodes ``V``."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of edges ``E``."""
        return len(self._edges)

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks in index order."""
        return self._tasks

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """All ``(src, dst)`` edges."""
        return self._edges

    @property
    def work(self) -> np.ndarray:
        """FLOP cost per task (read-only float64 array of length V)."""
        return self._work

    @property
    def alpha(self) -> np.ndarray:
        """Amdahl fraction per task (read-only float64 array of length V)."""
        return self._alpha

    @property
    def data_size(self) -> np.ndarray:
        """Dataset size (doubles) per task."""
        return self._data_size

    @property
    def topological_order(self) -> np.ndarray:
        """Indices in a valid topological order (int64 array of length V)."""
        return self._topo

    def index(self, name: str) -> int:
        """Index of the task called ``name``."""
        try:
            return self._index_of[name]
        except KeyError:
            raise GraphError(
                f"no task named {name!r} in PTG {self.name!r}"
            ) from None

    def task(self, i: int) -> Task:
        """Task at index ``i``."""
        return self._tasks[i]

    def predecessors(self, i: int) -> tuple[int, ...]:
        """Indices of tasks that must finish before task ``i`` starts."""
        return self._preds[i]

    def successors(self, i: int) -> tuple[int, ...]:
        """Indices of tasks that depend on task ``i``."""
        return self._succs[i]

    @property
    def sources(self) -> tuple[int, ...]:
        """Indices of tasks without predecessors."""
        return tuple(
            i for i in range(self.num_tasks) if not self._preds[i]
        )

    @property
    def sinks(self) -> tuple[int, ...]:
        """Indices of tasks without successors."""
        return tuple(
            i for i in range(self.num_tasks) if not self._succs[i]
        )

    @property
    def total_work(self) -> float:
        """Sum of all task costs in FLOP."""
        return float(self._work.sum())

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __contains__(self, name: object) -> bool:
        return name in self._index_of

    def __repr__(self) -> str:
        return (
            f"PTG(name={self.name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PTG):
            return NotImplemented
        return (
            self._tasks == other._tasks and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((self._tasks, self._edges))

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (node attrs from tasks)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i, t in enumerate(self._tasks):
            g.add_node(
                i,
                name=t.name,
                work=t.work,
                alpha=t.alpha,
                data_size=t.data_size,
                kind=t.kind,
            )
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_networkx(cls, g, name: str | None = None) -> "PTG":
        """Build a PTG from a :class:`networkx.DiGraph`.

        Node attributes ``work`` (required), ``alpha``, ``data_size``,
        ``kind`` and ``name`` are honoured; node order follows
        ``sorted(g.nodes)``.
        """
        nodes = sorted(g.nodes)
        pos = {u: i for i, u in enumerate(nodes)}
        tasks = []
        for u in nodes:
            data: Mapping = g.nodes[u]
            if "work" not in data:
                raise GraphError(
                    f"networkx node {u!r} lacks required 'work' attribute"
                )
            tasks.append(
                Task(
                    name=str(data.get("name", u)),
                    work=float(data["work"]),
                    alpha=float(data.get("alpha", 0.0)),
                    data_size=float(data.get("data_size", 0.0)),
                    kind=str(data.get("kind", "task")),
                )
            )
        edges = [(pos[u], pos[v]) for u, v in g.edges]
        return cls(tasks, edges, name=name or str(g.name or "ptg"))

    def relabeled(self, name: str) -> "PTG":
        """Return an identical graph carrying a different ``name``."""
        out = PTG.__new__(PTG)
        for slot in PTG.__slots__:
            object.__setattr__(out, slot, getattr(self, slot))
        out.name = name
        return out
