"""Incremental construction of parallel task graphs.

:class:`PTG` objects are immutable; :class:`PTGBuilder` offers the usual
mutable-builder pattern used by every workload generator in
:mod:`repro.workloads`:

>>> from repro.graph import PTGBuilder
>>> b = PTGBuilder("demo")
>>> a = b.add_task("a", work=1e9)
>>> c = b.add_task("c", work=2e9, alpha=0.1)
>>> b.add_edge(a, c)
>>> ptg = b.build()
>>> ptg.num_tasks, ptg.num_edges
(2, 1)
"""

from __future__ import annotations

from typing import Iterable

from ..exceptions import GraphError
from .ptg import PTG, Task

__all__ = ["PTGBuilder", "chain", "fork_join"]


class PTGBuilder:
    """Mutable builder that produces an immutable :class:`PTG`."""

    def __init__(self, name: str = "ptg") -> None:
        self.name = name
        self._tasks: list[Task] = []
        self._index_of: dict[str, int] = {}
        self._edges: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    def add_task(
        self,
        name: str,
        work: float,
        alpha: float = 0.0,
        data_size: float = 0.0,
        kind: str = "task",
    ) -> int:
        """Append a task and return its index."""
        if name in self._index_of:
            raise GraphError(f"duplicate task name {name!r}")
        task = Task(
            name=name,
            work=work,
            alpha=alpha,
            data_size=data_size,
            kind=kind,
        )
        idx = len(self._tasks)
        self._tasks.append(task)
        self._index_of[name] = idx
        return idx

    def add_edge(self, src: int | str, dst: int | str) -> None:
        """Add a dependency edge ``src -> dst`` (by index or by name)."""
        u = self._resolve(src)
        v = self._resolve(dst)
        if u == v:
            raise GraphError(f"self-loop on task index {u}")
        self._edges.append((u, v))

    def add_edges(
        self, pairs: Iterable[tuple[int | str, int | str]]
    ) -> None:
        """Add several edges at once."""
        for u, v in pairs:
            self.add_edge(u, v)

    def _resolve(self, ref: int | str) -> int:
        if isinstance(ref, str):
            try:
                return self._index_of[ref]
            except KeyError:
                raise GraphError(f"unknown task name {ref!r}") from None
        idx = int(ref)
        if not (0 <= idx < len(self._tasks)):
            raise GraphError(f"task index {idx} out of range")
        return idx

    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Tasks added so far."""
        return len(self._tasks)

    def __contains__(self, name: object) -> bool:
        return name in self._index_of

    def build(self) -> PTG:
        """Validate and freeze into a :class:`PTG` (checks acyclicity)."""
        return PTG(self._tasks, self._edges, name=self.name)


# ----------------------------------------------------------------------
# tiny convenience factories used across tests, docs, and examples
# ----------------------------------------------------------------------
def chain(lengths: Iterable[float], name: str = "chain") -> PTG:
    """A linear chain of tasks with the given FLOP costs."""
    b = PTGBuilder(name)
    prev: int | None = None
    for i, w in enumerate(lengths):
        cur = b.add_task(f"t{i}", work=w)
        if prev is not None:
            b.add_edge(prev, cur)
        prev = cur
    return b.build()


def fork_join(
    branch_works: Iterable[float],
    head_work: float = 1.0,
    tail_work: float = 1.0,
    name: str = "fork-join",
) -> PTG:
    """A fork-join PTG: head -> N parallel branches -> tail."""
    b = PTGBuilder(name)
    head = b.add_task("head", work=head_work)
    tail_refs = []
    for i, w in enumerate(branch_works):
        t = b.add_task(f"branch{i}", work=w)
        b.add_edge(head, t)
        tail_refs.append(t)
    tail = b.add_task("tail", work=tail_work)
    for t in tail_refs:
        b.add_edge(t, tail)
    if not tail_refs:
        b.add_edge(head, tail)
    return b.build()
