"""Parallel task graph substrate (paper Section II-A).

Public API:

* :class:`Task`, :class:`PTG` — the immutable data model;
* :class:`PTGBuilder`, :func:`chain`, :func:`fork_join` — construction;
* :func:`bottom_levels`, :func:`top_levels`, :func:`precedence_levels`,
  :func:`critical_path`, :func:`delta_critical_sets` — graph analyses the
  schedulers rely on;
* :func:`csr_adjacency` / :class:`CSRAdjacency` — the DAG flattened to
  CSR index arrays (built once per PTG, shared by the compiled
  scheduling kernel and the level sweeps);
* :func:`validate_ptg` — soft structural checks;
* :func:`save_ptg` / :func:`load_ptg` and corpus variants — JSON I/O.
"""

from .analysis import (
    CSRAdjacency,
    bottom_levels,
    critical_path,
    critical_path_length,
    csr_adjacency,
    delta_critical_sets,
    graph_width,
    level_members,
    precedence_levels,
    top_levels,
)
from .builder import PTGBuilder, chain, fork_join
from .io import (
    load_corpus,
    load_ptg,
    ptg_from_dict,
    ptg_to_dict,
    ptg_to_dot,
    save_corpus,
    save_ptg,
)
from .ptg import PTG, Task
from .validation import (
    ValidationReport,
    is_connected,
    is_layered,
    validate_ptg,
)

__all__ = [
    "Task",
    "PTG",
    "PTGBuilder",
    "chain",
    "fork_join",
    "CSRAdjacency",
    "csr_adjacency",
    "bottom_levels",
    "top_levels",
    "precedence_levels",
    "level_members",
    "critical_path",
    "critical_path_length",
    "delta_critical_sets",
    "graph_width",
    "ValidationReport",
    "validate_ptg",
    "is_layered",
    "is_connected",
    "ptg_to_dict",
    "ptg_from_dict",
    "save_ptg",
    "load_ptg",
    "save_corpus",
    "load_corpus",
    "ptg_to_dot",
]
