"""Structural analyses of parallel task graphs.

This module implements every graph metric the scheduling algorithms rely
on (paper Sections II-B and III):

* **bottom level** ``bl(v)`` — length of the longest path from ``v`` to any
  sink *including* ``v``'s own execution time (footnote 1 of the paper);
* **top level** ``tl(v)`` — length of the longest path from any source to
  ``v`` *excluding* ``v``;
* **precedence level** — depth of ``v`` measured in hops from the sources
  (used to layer the PTG for the Δ-critical seed and for MCPA's per-level
  allocation bound);
* **critical path** — a concrete source→sink path realizing the maximum
  bottom level;
* **Δ-critical sets** — per precedence level, the tasks whose bottom level
  is within a factor Δ of the level's maximum (paper Section III-B,
  following Suter's Δ-critical task concept).

All functions accept a vector of per-task execution times so the caller
decides the allocation (e.g. ``times`` for one-processor allocations for
the seeding heuristic, or the current individual's allocations inside the
EA's fitness function).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from .ptg import PTG

__all__ = [
    "CSRAdjacency",
    "csr_adjacency",
    "bottom_levels",
    "top_levels",
    "precedence_levels",
    "level_members",
    "critical_path",
    "critical_path_length",
    "delta_critical_sets",
    "graph_width",
]


@dataclass(frozen=True)
class CSRAdjacency:
    """The PTG's adjacency flattened to CSR index arrays.

    One shared, immutable analysis per PTG (cached on the graph): the
    compiled scheduling kernel, the layered bottom/top-level sweeps and
    the CPA-family heuristics all walk the DAG through these arrays
    instead of per-node Python tuples.

    ``succ_indices[succ_indptr[v]:succ_indptr[v+1]]`` are the successors
    of task ``v`` (sorted by index); the ``pred_*`` pair is the reverse
    adjacency.  ``edge_src``/``edge_dst`` list every edge in successor-CSR
    order (grouped by source, destinations ascending) — a deterministic
    ordering shared by every consumer.
    """

    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    pred_indptr: np.ndarray
    pred_indices: np.ndarray
    in_degree: np.ndarray
    out_degree: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray

    @property
    def num_tasks(self) -> int:
        """Number of nodes ``V``."""
        return self.in_degree.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of edges ``E``."""
        return self.succ_indices.shape[0]


def csr_adjacency(ptg: PTG) -> CSRAdjacency:
    """The CSR view of ``ptg`` (built once, cached on the graph)."""
    cached = ptg._csr_cache
    if cached is not None:
        return cached
    n = ptg.num_tasks
    out_degree = np.fromiter(
        (len(ptg.successors(v)) for v in range(n)),
        dtype=np.int64,
        count=n,
    )
    in_degree = np.fromiter(
        (len(ptg.predecessors(v)) for v in range(n)),
        dtype=np.int64,
        count=n,
    )
    succ_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_degree, out=succ_indptr[1:])
    pred_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(in_degree, out=pred_indptr[1:])
    e = int(succ_indptr[-1])
    succ_indices = np.fromiter(
        (w for v in range(n) for w in ptg.successors(v)),
        dtype=np.int64,
        count=e,
    )
    pred_indices = np.fromiter(
        (u for v in range(n) for u in ptg.predecessors(v)),
        dtype=np.int64,
        count=e,
    )
    edge_src = np.repeat(np.arange(n, dtype=np.int64), out_degree)
    csr = CSRAdjacency(
        succ_indptr=succ_indptr,
        succ_indices=succ_indices,
        pred_indptr=pred_indptr,
        pred_indices=pred_indices,
        in_degree=in_degree,
        out_degree=out_degree,
        edge_src=edge_src,
        edge_dst=succ_indices,
    )
    for arr in (
        succ_indptr,
        succ_indices,
        pred_indptr,
        pred_indices,
        in_degree,
        out_degree,
        edge_src,
    ):
        arr.setflags(write=False)
    ptg._csr_cache = csr
    return csr


def _check_times(ptg: PTG, times: np.ndarray) -> np.ndarray:
    times = np.asarray(times, dtype=np.float64)
    if times.shape != (ptg.num_tasks,):
        raise ValidationError(
            f"times has shape {times.shape}, expected ({ptg.num_tasks},)"
        )
    if not np.all(np.isfinite(times)) or np.any(times < 0):
        raise ValidationError("times must be finite and non-negative")
    return times


class _LayerStructure:
    """Cached per-PTG layering used to vectorize level computations.

    Bottom/top levels are longest-path recursions; instead of iterating
    node by node in topological order (a Python-level loop executed once
    per CPA iteration and once per EA fitness evaluation — the measured
    hot spot of the whole library), we process whole *depth layers* at a
    time: for any edge ``u -> v``, ``depth(u) < depth(v)``, so when layers
    are visited in (reverse) depth order every dependency of the layer is
    already final and the layer updates become NumPy scatter-max calls.
    The number of Python-level iterations drops from ``V + E`` to the DAG
    depth.
    """

    __slots__ = (
        "depth",
        "num_layers",
        "nodes_by_layer",
        "edges_by_dst_layer",
        "edges_by_src_layer",
    )

    def __init__(self, ptg: PTG) -> None:
        self.depth = precedence_levels(ptg)
        self.num_layers = int(self.depth.max()) + 1
        self.nodes_by_layer = [
            np.flatnonzero(self.depth == k)
            for k in range(self.num_layers)
        ]
        # edge arrays come from the shared CSR analysis: the compiled
        # scheduling kernel and the CPA-family heuristics walk the exact
        # same index arrays (order differences are irrelevant here — the
        # layer updates below are scatter-*maxima*)
        csr = csr_adjacency(ptg)
        src, dst = csr.edge_src, csr.edge_dst
        d_dst = self.depth[dst] if dst.size else dst
        d_src = self.depth[src] if src.size else src
        self.edges_by_dst_layer = [
            (src[d_dst == k], dst[d_dst == k])
            for k in range(self.num_layers)
        ]
        self.edges_by_src_layer = [
            (src[d_src == k], dst[d_src == k])
            for k in range(self.num_layers)
        ]


def _layers(ptg: PTG) -> _LayerStructure:
    cached = ptg._layer_cache
    if cached is None:
        cached = _LayerStructure(ptg)
        ptg._layer_cache = cached
    return cached


def bottom_levels(ptg: PTG, times: np.ndarray) -> np.ndarray:
    """Bottom level of every task.

    ``bl(v) = times[v] + max(bl(w) for w in successors(v))`` with the
    convention ``max() == 0`` for sinks.  Computed layer by layer from the
    deepest precedence level upwards (see :class:`_LayerStructure`).
    """
    times = _check_times(ptg, times)
    ls = _layers(ptg)
    best = np.zeros(ptg.num_tasks, dtype=np.float64)
    bl = times.copy()
    for k in range(ls.num_layers - 1, -1, -1):
        nodes = ls.nodes_by_layer[k]
        bl[nodes] += best[nodes]
        src, dst = ls.edges_by_dst_layer[k]
        if src.size:
            np.maximum.at(best, src, bl[dst])
    return bl


def top_levels(ptg: PTG, times: np.ndarray) -> np.ndarray:
    """Top level of every task (longest path from a source, excluding v)."""
    times = _check_times(ptg, times)
    ls = _layers(ptg)
    tl = np.zeros(ptg.num_tasks, dtype=np.float64)
    for k in range(ls.num_layers):
        src, dst = ls.edges_by_src_layer[k]
        if src.size:
            np.maximum.at(tl, dst, tl[src] + times[src])
    return tl


def precedence_levels(ptg: PTG) -> np.ndarray:
    """Depth of each task from the sources, in hops.

    Sources are level 0; any other task sits one level below its deepest
    predecessor.  The result is cached on the PTG (it depends only on
    structure, never on execution times).
    """
    cached = ptg._levels
    if cached is not None:
        return cached
    lv = np.zeros(ptg.num_tasks, dtype=np.int64)
    for v in ptg.topological_order:
        preds = ptg.predecessors(int(v))
        if preds:
            lv[v] = max(lv[u] for u in preds) + 1
    ptg._levels = lv
    return lv


def level_members(ptg: PTG) -> list[np.ndarray]:
    """Indices of the tasks on each precedence level.

    ``level_members(g)[k]`` is an int64 array with the tasks whose
    precedence level is ``k``.
    """
    lv = precedence_levels(ptg)
    depth = int(lv.max()) + 1
    return [np.flatnonzero(lv == k) for k in range(depth)]


def critical_path_length(ptg: PTG, times: np.ndarray) -> float:
    """Length of the critical path, ``T_CP = max_v bl(v)``."""
    return float(bottom_levels(ptg, times).max())


def critical_path(ptg: PTG, times: np.ndarray) -> list[int]:
    """One concrete critical path as a list of task indices.

    Starts at the source with the maximum bottom level and greedily follows
    the successor that realizes ``bl(v) = times[v] + bl(w)``.
    """
    bl = bottom_levels(ptg, times)
    sources = ptg.sources
    v = max(sources, key=lambda s: bl[s])
    path = [v]
    while True:
        succs = ptg.successors(v)
        if not succs:
            break
        target = bl[v] - times[v]
        nxt = None
        for w in succs:
            if np.isclose(bl[w], target, rtol=1e-12, atol=1e-12):
                nxt = w
                break
        if nxt is None:  # numerical fallback: follow the largest bl
            nxt = max(succs, key=lambda w: bl[w])
        path.append(nxt)
        v = nxt
    return path


def delta_critical_sets(
    ptg: PTG, times: np.ndarray, delta: float = 0.9
) -> list[np.ndarray]:
    """Δ-critical tasks per precedence level (paper Section III-B).

    For each precedence level ``k``, returns the indices of the tasks whose
    bottom level satisfies ``bl(v) >= delta * max(bl(w) for w in level k)``.
    ``delta=0.9`` means tasks whose criticality is at most 10 % below the
    level maximum count as critical.
    """
    if not (0.0 <= delta <= 1.0):
        raise ValidationError(f"delta must lie in [0, 1], got {delta}")
    bl = bottom_levels(ptg, times)
    out: list[np.ndarray] = []
    for members in level_members(ptg):
        level_max = bl[members].max()
        crit = members[bl[members] >= delta * level_max]
        out.append(crit)
    return out


def graph_width(ptg: PTG) -> int:
    """Maximum number of tasks on any precedence level.

    An easy upper bound on exploitable task parallelism, used in reports
    and by the MCPA2 heuristic.
    """
    lv = precedence_levels(ptg)
    return int(np.bincount(lv).max())
