"""Serialization of parallel task graphs.

Two formats are supported:

* **JSON** — lossless round-trip of every task attribute; the library's
  native interchange format (used by the CLI to save generated corpora).
* **DOT** — Graphviz export for visual inspection of generated PTGs
  (write-only; reading arbitrary DOT is out of scope).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..exceptions import GraphError
from .ptg import PTG, Task

__all__ = [
    "ptg_to_dict",
    "ptg_from_dict",
    "save_ptg",
    "load_ptg",
    "ptg_to_dot",
    "save_corpus",
    "load_corpus",
]

_FORMAT_VERSION = 1


def ptg_to_dict(ptg: PTG) -> dict[str, Any]:
    """Convert a PTG into a JSON-serializable dictionary."""
    return {
        "format": "repro-ptg",
        "version": _FORMAT_VERSION,
        "name": ptg.name,
        "tasks": [
            {
                "name": t.name,
                "work": t.work,
                "alpha": t.alpha,
                "data_size": t.data_size,
                "kind": t.kind,
            }
            for t in ptg.tasks
        ],
        "edges": [[u, v] for u, v in ptg.edges],
    }


def ptg_from_dict(data: dict[str, Any]) -> PTG:
    """Inverse of :func:`ptg_to_dict`."""
    if data.get("format") != "repro-ptg":
        raise GraphError(
            f"not a repro PTG document (format={data.get('format')!r})"
        )
    if int(data.get("version", -1)) != _FORMAT_VERSION:
        raise GraphError(
            f"unsupported PTG format version {data.get('version')!r}"
        )
    tasks = [
        Task(
            name=str(t["name"]),
            work=float(t["work"]),
            alpha=float(t.get("alpha", 0.0)),
            data_size=float(t.get("data_size", 0.0)),
            kind=str(t.get("kind", "task")),
        )
        for t in data["tasks"]
    ]
    edges = [(int(u), int(v)) for u, v in data["edges"]]
    return PTG(tasks, edges, name=str(data.get("name", "ptg")))


def save_ptg(ptg: PTG, path: str | Path) -> None:
    """Write one PTG to a JSON file."""
    Path(path).write_text(
        json.dumps(ptg_to_dict(ptg), indent=2), encoding="utf-8"
    )


def load_ptg(path: str | Path) -> PTG:
    """Read one PTG from a JSON file."""
    return ptg_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def save_corpus(ptgs: list[PTG], path: str | Path) -> None:
    """Write a list of PTGs into a single JSON file."""
    doc = {
        "format": "repro-ptg-corpus",
        "version": _FORMAT_VERSION,
        "ptgs": [ptg_to_dict(p) for p in ptgs],
    }
    Path(path).write_text(json.dumps(doc), encoding="utf-8")


def load_corpus(path: str | Path) -> list[PTG]:
    """Read a corpus file written by :func:`save_corpus`."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != "repro-ptg-corpus":
        raise GraphError(
            f"not a repro corpus document (format={doc.get('format')!r})"
        )
    return [ptg_from_dict(d) for d in doc["ptgs"]]


def ptg_to_dot(ptg: PTG, label_work: bool = True) -> str:
    """Render a PTG as a Graphviz DOT string."""
    lines = [f'digraph "{ptg.name}" {{', "  rankdir=TB;"]
    for i, t in enumerate(ptg.tasks):
        if label_work:
            label = f"{t.name}\\n{t.work:.3g} FLOP"
        else:
            label = t.name
        lines.append(f'  n{i} [label="{label}", shape=box];')
    for u, v in ptg.edges:
        lines.append(f"  n{u} -> n{v};")
    lines.append("}")
    return "\n".join(lines) + "\n"
