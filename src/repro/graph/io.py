"""Serialization of parallel task graphs.

Two formats are supported:

* **JSON** — lossless round-trip of every task attribute; the library's
  native interchange format (used by the CLI to save generated corpora).
* **DOT** — Graphviz export for visual inspection of generated PTGs
  (write-only; reading arbitrary DOT is out of scope).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..exceptions import GraphError
from .ptg import PTG, Task

__all__ = [
    "ptg_to_dict",
    "ptg_from_dict",
    "save_ptg",
    "load_ptg",
    "ptg_to_dot",
    "save_corpus",
    "load_corpus",
]

_FORMAT_VERSION = 1


def ptg_to_dict(ptg: PTG) -> dict[str, Any]:
    """Convert a PTG into a JSON-serializable dictionary."""
    return {
        "format": "repro-ptg",
        "version": _FORMAT_VERSION,
        "name": ptg.name,
        "tasks": [
            {
                "name": t.name,
                "work": t.work,
                "alpha": t.alpha,
                "data_size": t.data_size,
                "kind": t.kind,
            }
            for t in ptg.tasks
        ],
        "edges": [[u, v] for u, v in ptg.edges],
    }


def ptg_from_dict(data: dict[str, Any]) -> PTG:
    """Inverse of :func:`ptg_to_dict`."""
    if data.get("format") != "repro-ptg":
        raise GraphError(
            f"not a repro PTG document (format={data.get('format')!r})"
        )
    try:
        version = int(data.get("version", -1))
    except (TypeError, ValueError):
        version = -1
    if version != _FORMAT_VERSION:
        raise GraphError(
            f"unsupported PTG format version {data.get('version')!r}"
        )
    try:
        task_entries = data["tasks"]
        edge_entries = data["edges"]
    except KeyError as exc:
        raise GraphError(
            f"PTG document is missing the {exc.args[0]!r} section"
        ) from None
    tasks = []
    for i, t in enumerate(task_entries):
        try:
            tasks.append(
                Task(
                    name=str(t["name"]),
                    work=float(t["work"]),
                    alpha=float(t.get("alpha", 0.0)),
                    data_size=float(t.get("data_size", 0.0)),
                    kind=str(t.get("kind", "task")),
                )
            )
        except KeyError as exc:
            raise GraphError(
                f"task {i} is missing required field {exc.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise GraphError(f"task {i} is malformed: {exc}") from exc
    edges = []
    for i, entry in enumerate(edge_entries):
        try:
            u, v = entry
            edges.append((int(u), int(v)))
        except (TypeError, ValueError) as exc:
            raise GraphError(
                f"edge {i} must be a [src, dst] index pair, got "
                f"{entry!r} ({exc})"
            ) from exc
    return PTG(tasks, edges, name=str(data.get("name", "ptg")))


def save_ptg(ptg: PTG, path: str | Path) -> None:
    """Write one PTG to a JSON file."""
    Path(path).write_text(
        json.dumps(ptg_to_dict(ptg), indent=2), encoding="utf-8"
    )


def _read_json(path: Path, what: str) -> Any:
    """Read and parse a JSON file, folding failures into GraphError."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise GraphError(f"could not read {what} {path}: {exc}") from exc
    try:
        return json.loads(text)
    except ValueError as exc:
        raise GraphError(
            f"{what} {path} is not valid JSON: {exc}"
        ) from exc


def load_ptg(path: str | Path) -> PTG:
    """Read one PTG from a JSON file.

    All failure modes — unreadable file, invalid JSON, missing or
    malformed fields — surface as :class:`~repro.exceptions.GraphError`
    carrying the file path.
    """
    path = Path(path)
    doc = _read_json(path, "PTG file")
    try:
        return ptg_from_dict(doc)
    except GraphError as exc:
        raise GraphError(f"{path}: {exc}") from None


def save_corpus(ptgs: list[PTG], path: str | Path) -> None:
    """Write a list of PTGs into a single JSON file."""
    doc = {
        "format": "repro-ptg-corpus",
        "version": _FORMAT_VERSION,
        "ptgs": [ptg_to_dict(p) for p in ptgs],
    }
    Path(path).write_text(json.dumps(doc), encoding="utf-8")


def load_corpus(path: str | Path) -> list[PTG]:
    """Read a corpus file written by :func:`save_corpus`.

    All failure modes surface as
    :class:`~repro.exceptions.GraphError` carrying the file path and,
    for malformed entries, the index of the offending PTG.
    """
    path = Path(path)
    doc = _read_json(path, "corpus file")
    if not isinstance(doc, dict) or doc.get("format") != "repro-ptg-corpus":
        fmt = doc.get("format") if isinstance(doc, dict) else None
        raise GraphError(
            f"{path}: not a repro corpus document (format={fmt!r})"
        )
    ptgs = []
    for i, d in enumerate(doc.get("ptgs", [])):
        try:
            ptgs.append(ptg_from_dict(d))
        except GraphError as exc:
            raise GraphError(f"{path}: PTG {i}: {exc}") from None
    return ptgs


def ptg_to_dot(ptg: PTG, label_work: bool = True) -> str:
    """Render a PTG as a Graphviz DOT string."""
    lines = [f'digraph "{ptg.name}" {{', "  rankdir=TB;"]
    for i, t in enumerate(ptg.tasks):
        if label_work:
            label = f"{t.name}\\n{t.work:.3g} FLOP"
        else:
            label = t.name
        lines.append(f'  n{i} [label="{label}", shape=box];')
    for u, v in ptg.edges:
        lines.append(f"  n{u} -> n{v};")
    lines.append("}")
    return "\n".join(lines) + "\n"
