"""Cross-process trace assembly: JSONL shards → causal span trees.

The serving stack writes one trace shard per process-ish unit of work:
``server.jsonl`` (append-mode, survives restarts) carries the HTTP
front-end's ``request``/``drain`` events, and one ``job-<trace>-a<n>``
shard per worker execution attempt carries that attempt's
``queue_wait`` + ``service_run_start``..``service_run_end`` span with
the EMTS run events nested inside.  Every event's ``ctx`` mirror
(:class:`~repro.obs.trace.TraceContext`-derived hex ids) says where it
belongs in the *global* tree; this module does the join.

Crash tolerance is the point: a worker killed mid-span leaves a
truncated shard and an unclosed ``service_run_start``.  The assembler
recovers the valid prefix, marks the span ``complete: false`` and the
tree ``crashed``, and still renders — an exception would be the
postmortem eating itself.  Genuinely malformed nesting (an event whose
parent id is not explainable by any emitted span, the synthesized
request root, or a truncation wound) still raises
:class:`~repro.exceptions.TraceError`, which ``report-trace`` turns
into a non-zero exit.

Determinism: ids are derived, shard names are derived, and child
ordering uses (shard, file-local span) — all deterministic — so
:func:`canonical_tree` of two same-seed round trips is bit-identical
once timestamps and process-volatile attrs are stripped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..exceptions import TraceError
from .trace import (
    TraceEvent,
    read_trace_prefix,
    strip_timestamps,
)

__all__ = [
    "SpanNode",
    "TraceTree",
    "assemble_traces",
    "canonical_tree",
    "load_shards",
    "render_service_report",
]

#: Attr keys that vary per process/run without changing semantics:
#: uuid-based job ids, the compiled-vs-numpy engine choice, thread and
#: process identity, and the client's random idempotency key.  Stripped
#: by :func:`canonical_tree` alongside the timestamp keys.
VOLATILE_ATTRS = frozenset(
    {
        "job_id",
        "engine",
        "pid",
        "thread",
        "worker",
        "idempotency_key",
        "host",
    }
)

#: ``*_end`` kinds that close a span and fold into their ``*_start``.
_SPAN_END_TO_START = {
    "run_end": "run_start",
    "service_run_end": "service_run_start",
    "campaign_end": "campaign_start",
}


@dataclass
class SpanNode:
    """One node of an assembled trace tree.

    ``*_start``/``*_end`` pairs fold into a single node: ``kind`` is
    the start kind, ``end_attrs``/``dur`` come from the matching end
    event, and ``complete`` says whether that end was ever written.
    Instantaneous events are nodes with ``complete=True`` and no
    children of their own (usually).
    """

    span_id: str
    kind: str
    shard: str
    local_span: int
    t: float | None = None
    dur: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    end_attrs: dict[str, Any] = field(default_factory=dict)
    complete: bool = True
    synthetic: bool = False
    children: list["SpanNode"] = field(default_factory=list)

    def sort_key(self) -> tuple[int, str, int]:
        # server shard first (the request precedes its execution),
        # then job shards in attempt order via their derived names;
        # within a shard, file-local emission order.
        rank = 0 if self.shard == "server" else 1
        return (rank, self.shard, self.local_span)

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceTree:
    """The assembled causal tree of one trace id."""

    trace_id: str
    root: SpanNode
    shards: tuple[str, ...]
    truncated_shards: tuple[str, ...]

    @property
    def crashed(self) -> bool:
        """True when a writer died mid-trace (torn shard or open span)."""
        if self.truncated_shards:
            return True
        return any(not node.complete for node in self.root.walk())


def load_shards(
    trace_dir: str | Path,
) -> tuple[list[tuple[str, TraceEvent]], dict[str, bool]]:
    """Read every ``*.jsonl`` shard under ``trace_dir``.

    Returns ``(tagged_events, truncated)``: events tagged with their
    shard stem (in deterministic shard-name order), and a per-shard
    truncation flag from :func:`read_trace_prefix`.
    """
    trace_dir = Path(trace_dir)
    if not trace_dir.exists():
        raise TraceError(f"trace directory {trace_dir} does not exist")
    if trace_dir.is_file():
        files = [trace_dir]
    else:
        files = sorted(trace_dir.glob("*.jsonl"))
    if not files:
        raise TraceError(
            f"trace directory {trace_dir} contains no *.jsonl shards"
        )
    tagged: list[tuple[str, TraceEvent]] = []
    truncated: dict[str, bool] = {}
    for path in files:
        events, torn = read_trace_prefix(path)
        truncated[path.stem] = torn
        tagged.extend((path.stem, event) for event in events)
    return tagged, truncated


def assemble_traces(
    trace_dir: str | Path, strict: bool = False
) -> list[TraceTree]:
    """Join all shards under ``trace_dir`` into one tree per trace id.

    ``strict=True`` refuses crash damage too (truncated shards, spans
    left open); the default forgives it and flags it, raising only on
    structural breaks no crash can explain — an event parenting to an
    id that no shard emitted while its own shard is intact.
    """
    tagged, truncated = load_shards(trace_dir)
    by_trace: dict[str, list[tuple[str, TraceEvent]]] = {}
    for shard, event in tagged:
        ctx = event.ctx
        if not ctx or not ctx.get("trace"):
            continue  # context-free event (e.g. ``drain``): not in a tree
        by_trace.setdefault(ctx["trace"], []).append((shard, event))

    trees: list[TraceTree] = []
    for trace_id in sorted(by_trace):
        trees.append(
            _assemble_one(
                trace_id, by_trace[trace_id], truncated, strict
            )
        )
    if not trees:
        raise TraceError(
            f"no context-carrying events in {trace_dir}: nothing to "
            "assemble (was the daemon started with --trace-dir?)"
        )
    return trees


def _assemble_one(
    trace_id: str,
    tagged: list[tuple[str, TraceEvent]],
    truncated: Mapping[str, bool],
    strict: bool,
) -> TraceTree:
    shards = tuple(sorted({shard for shard, _ in tagged}))
    torn = tuple(s for s in shards if truncated.get(s))
    if strict and torn:
        raise TraceError(
            f"trace {trace_id}: shard(s) {', '.join(torn)} are "
            "truncated (crash-torn tail); re-run without strict mode "
            "to assemble the partial tree"
        )

    nodes: dict[str, SpanNode] = {}
    parent_of: dict[str, str | None] = {}
    pending_end: list[tuple[str, TraceEvent]] = []
    for shard, event in tagged:
        ctx = event.ctx or {}
        span_id = ctx.get("span", "")
        if event.kind in _SPAN_END_TO_START:
            pending_end.append((shard, event))
            continue
        parent_of[span_id] = ctx.get("parent")
        if span_id in nodes:
            raise TraceError(
                f"trace {trace_id}: duplicate span id {span_id} "
                f"({nodes[span_id].kind} in shard "
                f"{nodes[span_id].shard} vs {event.kind} in shard "
                f"{shard}) — shards overlap or ids collide"
            )
        nodes[span_id] = SpanNode(
            span_id=span_id,
            kind=event.kind,
            shard=shard,
            local_span=event.span,
            t=event.t,
            attrs=dict(event.attrs),
            complete=event.kind not in (
                "run_start",
                "service_run_start",
                "campaign_start",
            ),
            dur=event.dur,
        )

    # fold ``*_end`` events into the span they close
    for shard, event in pending_end:
        ctx = event.ctx or {}
        opener = nodes.get(ctx.get("parent", ""))
        expected = _SPAN_END_TO_START[event.kind]
        if opener is None or opener.kind != expected:
            raise TraceError(
                f"trace {trace_id}: {event.kind} in shard {shard} "
                f"closes span {ctx.get('parent')!r}, but no open "
                f"{expected} matches — span nesting is structurally "
                "broken"
            )
        opener.end_attrs = dict(event.attrs)
        opener.dur = event.dur
        opener.complete = True

    # link children; parents outside the emitted set are "anchors" —
    # spans that live only as derived ids (the client-minted request
    # root), or wounds where truncation ate the opener.
    anchors: dict[str, list[SpanNode]] = {}
    for node in nodes.values():
        parent_id = parent_of.get(node.span_id)
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            anchors.setdefault(parent_id or "", []).append(node)

    if len(anchors) > 1 and not torn:
        detail = ", ".join(
            f"{pid or '<none>'} ({len(kids)} events)"
            for pid, kids in sorted(anchors.items())
        )
        raise TraceError(
            f"trace {trace_id}: events parent under {len(anchors)} "
            f"distinct unknown spans [{detail}] with no truncated "
            "shard to explain it — span nesting is structurally broken"
        )

    root_id = min(anchors) if anchors else trace_id
    root = SpanNode(
        span_id=root_id or trace_id,
        kind="request_root",
        shard="",
        local_span=0,
        synthetic=True,
    )
    for _, orphans in sorted(anchors.items()):
        root.children.extend(orphans)
    for node in nodes.values():
        node.children.sort(key=SpanNode.sort_key)
    root.children.sort(key=SpanNode.sort_key)

    tree = TraceTree(
        trace_id=trace_id,
        root=root,
        shards=shards,
        truncated_shards=torn,
    )
    if strict and tree.crashed:
        open_spans = [
            n.kind for n in root.walk() if not n.complete
        ]
        raise TraceError(
            f"trace {trace_id}: span(s) {', '.join(open_spans)} never "
            "closed (writer died mid-span); re-run without strict "
            "mode to assemble the partial tree"
        )
    return tree


# ----------------------------------------------------------------------
def _canonical_attrs(attrs: Mapping[str, Any]) -> dict[str, Any]:
    stripped = strip_timestamps({"attrs": dict(attrs)}).get("attrs", {})
    return {
        k: v for k, v in stripped.items() if k not in VOLATILE_ATTRS
    }


def _canonical_node(node: SpanNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "kind": node.kind,
        "complete": node.complete,
    }
    attrs = _canonical_attrs(node.attrs)
    if attrs:
        out["attrs"] = attrs
    end_attrs = _canonical_attrs(node.end_attrs)
    if end_attrs:
        out["end_attrs"] = end_attrs
    if node.children:
        out["children"] = [
            _canonical_node(child) for child in node.children
        ]
    return out


def canonical_tree(tree: TraceTree) -> dict[str, Any]:
    """The tree's deterministic skeleton, for cross-run comparison.

    Drops timestamps (the :func:`~repro.obs.trace.strip_timestamps`
    contract), span ids (redundant with structure), and
    :data:`VOLATILE_ATTRS`; keeps the trace id, which is itself
    derived and must reproduce.  Two same-seed ``serve → submit``
    round trips yield identical canonical trees.
    """
    return {
        "trace_id": tree.trace_id,
        "crashed": tree.crashed,
        "spans": [
            _canonical_node(child) for child in tree.root.children
        ],
    }


# ----------------------------------------------------------------------
def _fmt_dur(dur: float | None) -> str:
    return "   -    " if dur is None else f"{dur:8.3f}s"


_WATERFALL_KINDS = {
    "request": "request",
    "queue_wait": "queue wait",
    "service_run_start": "run attempt",
    "run_start": "emts run",
    "online_start": "online run",
    "verify": "verify",
    "checkpoint": "checkpoint",
    "fault": "fault",
    "reschedule": "reschedule",
}


def _render_node(node: SpanNode, depth: int, lines: list[str]) -> None:
    label = _WATERFALL_KINDS.get(node.kind)
    if label is None and node.kind not in (
        "generation",
        "evaluation",
        "seed",
    ):
        label = node.kind
    if label is not None:
        indent = "  " * depth
        detail = _node_detail(node)
        flag = "" if node.complete else "  [UNCLOSED — crash?]"
        lines.append(
            f"  {_fmt_dur(node.dur)}  {indent}{label}"
            f"{':  ' + detail if detail else ''}{flag}"
        )
        depth += 1
    # generations/evaluations are summarized, not listed
    gens = sum(1 for c in node.children if c.kind == "generation")
    evals = sum(
        c.attrs.get("genomes", 0)
        for c in node.children
        if c.kind == "evaluation"
    )
    if gens or evals:
        indent = "  " * depth
        lines.append(
            f"  {'':>9}  {indent}· {gens} generations, "
            f"{int(evals)} genomes evaluated"
        )
    for child in node.children:
        if child.kind in ("generation", "evaluation"):
            continue
        _render_node(child, depth, lines)


def _node_detail(node: SpanNode) -> str:
    a, z = node.attrs, node.end_attrs
    if node.kind == "request":
        return (
            f"{a.get('outcome', '?')} status={a.get('status', '?')} "
            f"tenant={a.get('tenant', '?')} "
            f"priority={a.get('priority', '?')}"
        )
    if node.kind == "queue_wait":
        return (
            f"priority={a.get('priority', '?')} "
            f"tenant={a.get('tenant', '?')}"
        )
    if node.kind == "service_run_start":
        parts = [f"attempt={a.get('attempt', '?')}"]
        if z.get("served_from"):
            parts.append(f"served_from={z['served_from']}")
        if z.get("state"):
            parts.append(f"state={z['state']}")
        if z.get("warm_hit") is not None:
            parts.append(f"warm_hit={z['warm_hit']}")
        return " ".join(parts)
    if node.kind == "run_start":
        problem = a.get("problem", {})
        parts = [a.get("algorithm", "?")]
        if problem:
            parts.append(
                f"{problem.get('ptg_name', '?')}"
                f"/{problem.get('cluster_name', '?')}"
            )
        if z.get("makespan") is not None:
            parts.append(f"makespan={z['makespan']:.6g}")
        if a.get("resumed"):
            parts.append("resumed")
        if z.get("interrupted"):
            parts.append("interrupted")
        return " ".join(parts)
    if node.kind == "verify":
        return f"{a.get('verified', 0)} evaluations re-verified"
    if node.kind == "checkpoint":
        return f"generation {a.get('generation', '?')}"
    return ""


def render_service_report(trace_dir: str | Path) -> str:
    """The ``report-trace --service`` text: one waterfall per trace."""
    trees = assemble_traces(trace_dir, strict=False)
    blocks: list[str] = [
        f"service trace: {trace_dir} — {len(trees)} request "
        f"trace{'s' if len(trees) != 1 else ''}"
    ]
    for tree in trees:
        header = f"trace {tree.trace_id}"
        notes = []
        if tree.truncated_shards:
            notes.append(
                "torn shard(s): " + ", ".join(tree.truncated_shards)
            )
        if tree.crashed:
            notes.append("CRASHED — partial tree")
        if notes:
            header += f"  [{'; '.join(notes)}]"
        lines = [header, f"  shards: {', '.join(tree.shards)}"]
        for child in tree.root.children:
            _render_node(child, 0, lines)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
