"""Structured run tracing: a schema-versioned JSONL event stream.

One trace file holds the chronological event stream of one (or more)
observed runs: ``run_start`` .. ``run_end`` spans with ``generation``,
``evaluation``, ``checkpoint`` and ``verify`` events in between, or a
campaign's ``campaign_start``/``campaign_trial``/``campaign_end``
sequence.  Every line is one JSON object — the documented
:class:`TraceEvent` schema (``docs/TRACE_SCHEMA.md``):

``v``
    Schema version (currently 1).
``kind``
    Event kind, one of :data:`EVENT_KINDS`.
``span``
    Sequential event/span id, unique within the trace (starts at 1).
``parent``
    Span id of the enclosing span (``null`` at top level).  An
    ``*_end`` event's parent is the span of its matching ``*_start``.
``t``
    Monotonic seconds since the tracer was created
    (:func:`time.perf_counter` based — comparable within a trace,
    meaningless across traces).
``dur``
    Optional duration in seconds (span-closing and phase events).
``attrs``
    Kind-specific payload (problem fingerprint, generation statistics,
    phase breakdown, ...).

Determinism contract: for a fixed seed and configuration the event
*sequence* — kinds, span ids, parents, and every ``attrs`` entry except
wall-clock quantities — is bit-identical across runs.  All wall-clock
quantities live in ``t``, ``dur``, or attr keys ending in ``_seconds``
or ``_per_sec``, which :func:`strip_timestamps` removes; the stripped
sequences of two same-seed runs compare equal.

Each event line is flushed on write, so a crash leaves a readable
prefix of complete events (the same crash-only stance as the
checkpoint files written alongside).  :func:`read_trace` mirrors the
checkpoint loader's error discipline: truncated or corrupt files raise
:class:`~repro.exceptions.TraceError` naming the file and line.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..exceptions import TraceError

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "read_trace",
    "validate_event",
    "strip_timestamps",
    "canonical_events",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Every kind a version-1 trace may contain.  The ``online_*``, ``fault``
#: and ``reschedule`` kinds are emitted by the reactive execution runtime
#: (:mod:`repro.online`): an ``online_start`` .. ``online_end`` span with
#: one ``fault`` event per injected/observed fault and one ``reschedule``
#: event per frontier re-optimization.
EVENT_KINDS = (
    "run_start",
    "run_end",
    "seed",
    "generation",
    "evaluation",
    "checkpoint",
    "verify",
    "campaign_start",
    "campaign_trial",
    "campaign_end",
    "online_start",
    "online_end",
    "fault",
    "reschedule",
)


@dataclass(frozen=True)
class TraceEvent:
    """One parsed trace line (see the module docstring for the schema)."""

    kind: str
    span: int
    t: float
    parent: int | None = None
    dur: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    v: int = TRACE_VERSION

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "v": self.v,
            "kind": self.kind,
            "span": self.span,
            "parent": self.parent,
            "t": self.t,
        }
        if self.dur is not None:
            data["dur"] = self.dur
        if self.attrs:
            data["attrs"] = self.attrs
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            kind=data["kind"],
            span=int(data["span"]),
            t=float(data["t"]),
            parent=(
                None if data.get("parent") is None else int(data["parent"])
            ),
            dur=(
                None if data.get("dur") is None else float(data["dur"])
            ),
            attrs=dict(data.get("attrs", {})),
            v=int(data["v"]),
        )


class Tracer:
    """Appends schema-versioned events to a JSONL trace file.

    Span ids are assigned sequentially in emission order, so they are a
    deterministic function of the event sequence — only the ``t``/``dur``
    timestamps vary between same-seed runs.  Events nest through an
    explicit span stack: :meth:`begin` pushes, :meth:`end` pops, and
    :meth:`event` records an instantaneous event under the innermost
    open span.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._file = open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise TraceError(
                f"cannot open trace file {self.path}: {exc}"
            ) from exc
        self._t0 = time.perf_counter()
        self._next_span = 1
        # (span id, kind, start time) of every open span, outermost first
        self._stack: list[tuple[int, str, float]] = []

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _write(
        self,
        kind: str,
        span: int,
        parent: int | None,
        t: float,
        dur: float | None,
        attrs: Mapping[str, Any] | None,
    ) -> None:
        if self._file is None:
            raise TraceError(
                f"trace file {self.path} is already closed"
            )
        if kind not in EVENT_KINDS:
            raise TraceError(
                f"unknown trace event kind {kind!r}; known kinds: "
                f"{', '.join(EVENT_KINDS)}"
            )
        data: dict[str, Any] = {
            "v": TRACE_VERSION,
            "kind": kind,
            "span": span,
            "parent": parent,
            "t": round(t, 6),
        }
        if dur is not None:
            data["dur"] = round(dur, 6)
        if attrs:
            data["attrs"] = dict(attrs)
        try:
            self._file.write(
                json.dumps(data, sort_keys=True, default=_jsonable)
                + "\n"
            )
            self._file.flush()
        except (OSError, TypeError, ValueError) as exc:
            raise TraceError(
                f"cannot write {kind!r} event to {self.path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def event(
        self,
        kind: str,
        attrs: Mapping[str, Any] | None = None,
        dur: float | None = None,
    ) -> int:
        """Record an instantaneous event; returns its span id."""
        span = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        self._write(kind, span, parent, self._now(), dur, attrs)
        return span

    def begin(
        self, kind: str, attrs: Mapping[str, Any] | None = None
    ) -> int:
        """Open a span: emit its ``*_start`` event and push it.

        ``kind`` is the start event's kind (``"run_start"``,
        ``"campaign_start"``); subsequent events nest under the new span
        until the matching :meth:`end`.
        """
        span = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        t = self._now()
        self._write(kind, span, parent, t, None, attrs)
        self._stack.append((span, kind, t))
        return span

    def end(
        self, kind: str, attrs: Mapping[str, Any] | None = None
    ) -> int:
        """Close the innermost span with a ``kind`` event.

        The closing event's ``parent`` is the span it closes and its
        ``dur`` the span's wall-clock extent.
        """
        if not self._stack:
            raise TraceError(
                f"cannot emit {kind!r}: no open span in {self.path}"
            )
        opened_span, _, opened_t = self._stack.pop()
        span = self._next_span
        self._next_span += 1
        t = self._now()
        self._write(kind, span, opened_span, t, t - opened_t, attrs)
        return span

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return f"Tracer({str(self.path)!r}, {state})"


def _jsonable(value):
    """Coerce numpy scalars (and other oddballs) to plain JSON types."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(
        f"trace attr of type {type(value).__name__} is not "
        "JSON-serializable"
    )


# ----------------------------------------------------------------------
def validate_event(
    data: Any, line: int | None = None, path: str | Path | None = None
) -> None:
    """Check one decoded trace line against the version-1 schema.

    Raises :class:`~repro.exceptions.TraceError` naming the offending
    file/line and field on any violation.
    """

    def bad(reason: str) -> TraceError:
        where = ""
        if path is not None:
            where += str(path)
        if line is not None:
            where += f", line {line}"
        prefix = f"invalid trace event ({where}): " if where else (
            "invalid trace event: "
        )
        return TraceError(prefix + reason)

    if not isinstance(data, dict):
        raise bad(f"expected a JSON object, got {type(data).__name__}")
    version = data.get("v")
    if version != TRACE_VERSION:
        raise bad(
            f"unsupported trace version {version!r} "
            f"(this reader understands version {TRACE_VERSION})"
        )
    kind = data.get("kind")
    if kind not in EVENT_KINDS:
        raise bad(
            f"unknown event kind {kind!r}; known kinds: "
            f"{', '.join(EVENT_KINDS)}"
        )
    span = data.get("span")
    if not isinstance(span, int) or isinstance(span, bool) or span < 1:
        raise bad(f"span must be a positive integer, got {span!r}")
    parent = data.get("parent")
    if parent is not None and (
        not isinstance(parent, int)
        or isinstance(parent, bool)
        or parent < 1
    ):
        raise bad(
            f"parent must be null or a positive integer, got {parent!r}"
        )
    t = data.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        raise bad(f"t must be a non-negative number, got {t!r}")
    dur = data.get("dur")
    if dur is not None and (
        not isinstance(dur, (int, float))
        or isinstance(dur, bool)
        or dur < 0
    ):
        raise bad(
            f"dur must be absent or a non-negative number, got {dur!r}"
        )
    attrs = data.get("attrs")
    if attrs is not None and not isinstance(attrs, dict):
        raise bad(
            f"attrs must be a JSON object, got {type(attrs).__name__}"
        )


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Parse and validate a JSONL trace file.

    Mirrors the checkpoint loader's contract: missing, truncated or
    corrupt files raise :class:`~repro.exceptions.TraceError` with
    enough context (file, line number, reason) to act on.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(
            f"cannot read trace file {path}: {exc}"
        ) from exc
    events: list[TraceEvent] = []
    lines = text.split("\n")
    # a complete trace ends with a newline: the final split element is
    # empty.  Anything else means the last write was torn mid-line.
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        raise TraceError(
            f"trace file {path} is truncated: line {len(lines)} ends "
            "without a newline (the writing process likely died "
            "mid-event)"
        )
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            raise TraceError(
                f"trace file {path}, line {lineno}: blank line in "
                "event stream (file corrupt?)"
            )
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"trace file {path}, line {lineno}: not valid JSON "
                f"({exc})"
            ) from exc
        validate_event(data, line=lineno, path=path)
        events.append(TraceEvent.from_dict(data))
    if not events:
        raise TraceError(f"trace file {path} contains no events")
    return events


# ----------------------------------------------------------------------
_TIMESTAMP_KEYS = ("t", "dur")
_TIMESTAMP_SUFFIXES = ("_seconds", "_per_sec")


def _strip_value(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            k: _strip_value(v)
            for k, v in value.items()
            if not any(k.endswith(s) for s in _TIMESTAMP_SUFFIXES)
        }
    if isinstance(value, list):
        return [_strip_value(v) for v in value]
    return value


def strip_timestamps(event: Mapping[str, Any]) -> dict[str, Any]:
    """A copy of the event with every wall-clock quantity removed.

    Drops the top-level ``t``/``dur`` fields and, recursively, any
    attr whose key ends in ``_seconds`` or ``_per_sec``.  What remains
    is the deterministic part of the event: two same-seed runs produce
    identical stripped sequences.
    """
    out = {
        k: _strip_value(v)
        for k, v in event.items()
        if k not in _TIMESTAMP_KEYS
    }
    return out


def canonical_events(path: str | Path) -> list[dict[str, Any]]:
    """The trace's deterministic skeleton (for cross-run comparison)."""
    return [strip_timestamps(e.to_dict()) for e in read_trace(path)]
