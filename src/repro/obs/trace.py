"""Structured run tracing: a schema-versioned JSONL event stream.

One trace file holds the chronological event stream of one (or more)
observed runs: ``run_start`` .. ``run_end`` spans with ``generation``,
``evaluation``, ``checkpoint`` and ``verify`` events in between, or a
campaign's ``campaign_start``/``campaign_trial``/``campaign_end``
sequence.  Every line is one JSON object — the documented
:class:`TraceEvent` schema (``docs/TRACE_SCHEMA.md``):

``v``
    Schema version (currently 2; version-1 files remain readable).
``kind``
    Event kind, one of :data:`EVENT_KINDS`.
``span``
    Sequential event/span id, unique within the trace (starts at 1).
``parent``
    Span id of the enclosing span (``null`` at top level).  An
    ``*_end`` event's parent is the span of its matching ``*_start``.
``t``
    Monotonic seconds since the tracer was created
    (:func:`time.perf_counter` based — comparable within a trace,
    meaningless across traces).
``dur``
    Optional duration in seconds (span-closing and phase events).
``attrs``
    Kind-specific payload (problem fingerprint, generation statistics,
    phase breakdown, ...).
``ctx``
    Version 2, optional: the distributed-trace mirror of ``span`` /
    ``parent`` — ``{"trace": <hex>, "span": <hex>, "parent": <hex|null>}``
    with globally unique ids derived from the request fingerprint (see
    :class:`TraceContext`).  ``span``/``parent`` stay file-local; ``ctx``
    lets :mod:`repro.obs.assemble` join shards written by different
    processes into one causal tree.

Determinism contract: for a fixed seed and configuration the event
*sequence* — kinds, span ids, parents, and every ``attrs`` entry except
wall-clock quantities — is bit-identical across runs.  All wall-clock
quantities live in ``t``, ``dur``, or attr keys ending in ``_seconds``
or ``_per_sec``, which :func:`strip_timestamps` removes; the stripped
sequences of two same-seed runs compare equal.

Each event line is flushed on write, so a crash leaves a readable
prefix of complete events (the same crash-only stance as the
checkpoint files written alongside).  :func:`read_trace` mirrors the
checkpoint loader's error discipline: truncated or corrupt files raise
:class:`~repro.exceptions.TraceError` naming the file and line.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..exceptions import TraceError

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "SUPPORTED_TRACE_VERSIONS",
    "EVENT_KINDS",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "current_context",
    "derive_span_id",
    "derive_trace_id",
    "read_trace",
    "read_trace_prefix",
    "use_context",
    "validate_event",
    "strip_timestamps",
    "canonical_events",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 2
#: Versions :func:`validate_event` accepts.  Version 2 added the
#: optional ``ctx`` distributed-trace mirror and the ``request`` /
#: ``queue_wait`` / ``service_run_*`` / ``drain`` kinds; version-1
#: files are a strict subset and stay readable.
SUPPORTED_TRACE_VERSIONS = (1, 2)

#: Every kind a version-2 trace may contain.  The ``online_*``, ``fault``
#: and ``reschedule`` kinds are emitted by the reactive execution runtime
#: (:mod:`repro.online`): an ``online_start`` .. ``online_end`` span with
#: one ``fault`` event per injected/observed fault and one ``reschedule``
#: event per frontier re-optimization.  The ``request``, ``queue_wait``,
#: ``service_run_start``/``service_run_end`` and ``drain`` kinds are
#: emitted by the serving stack (:mod:`repro.service`): one ``request``
#: per HTTP submission outcome, one ``queue_wait`` + ``service_run_*``
#: span per worker execution attempt, one ``drain`` per shutdown.
EVENT_KINDS = (
    "run_start",
    "run_end",
    "seed",
    "generation",
    "evaluation",
    "checkpoint",
    "verify",
    "campaign_start",
    "campaign_trial",
    "campaign_end",
    "online_start",
    "online_end",
    "fault",
    "reschedule",
    "request",
    "queue_wait",
    "service_run_start",
    "service_run_end",
    "drain",
)

# ----------------------------------------------------------------------
_TRACE_ID_BYTES = 16  # 32 hex chars
_SPAN_ID_BYTES = 8    # 16 hex chars


def derive_trace_id(*parts: str) -> str:
    """A deterministic 32-hex-char trace id from string parts.

    Same-seed requests hash the same canonical fingerprint, so their
    trace ids — and every span id derived below them — are bit-identical
    across runs.  That is what lets the golden-trace CI check diff an
    assembled tree against a committed fixture.
    """
    digest = hashlib.sha256(
        ("repro-trace\x00" + "\x00".join(parts)).encode("utf-8")
    )
    return digest.hexdigest()[: _TRACE_ID_BYTES * 2]


def derive_span_id(trace_id: str, name: str) -> str:
    """A deterministic 16-hex-char span id scoped to one trace."""
    digest = hashlib.sha256(
        (trace_id + "\x00" + name).encode("utf-8")
    )
    return digest.hexdigest()[: _SPAN_ID_BYTES * 2]


@dataclass(frozen=True)
class TraceContext:
    """One node of a distributed trace: where new spans should parent.

    ``trace_id`` names the whole request journey; ``span_id`` the span
    this context represents; ``parent_id`` its parent (``None`` at the
    root).  Ids are *derived*, not random — see :func:`derive_trace_id`
    — so the same request produces the same context every run.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self, name: str) -> "TraceContext":
        """A context for a deterministic child span named ``name``."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(
                self.trace_id, f"{self.span_id}/{name}"
            ),
            parent_id=self.span_id,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace"]),
            span_id=str(data["span"]),
            parent_id=(
                None if data.get("parent") is None
                else str(data["parent"])
            ),
        )


#: The active request/run context, if any.  ``contextvars`` gives each
#: worker thread (and each asyncio task) its own slot, so concurrent
#: jobs never see each other's ids.  The JSON log formatter reads this
#: to stamp ``trace_id`` onto log records.
_CURRENT_CONTEXT: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_context() -> TraceContext | None:
    """The :class:`TraceContext` active on this thread/task, if any."""
    return _CURRENT_CONTEXT.get()


@contextmanager
def use_context(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Activate ``ctx`` as :func:`current_context` for the block."""
    token = _CURRENT_CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT_CONTEXT.reset(token)


@dataclass(frozen=True)
class TraceEvent:
    """One parsed trace line (see the module docstring for the schema)."""

    kind: str
    span: int
    t: float
    parent: int | None = None
    dur: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    ctx: dict[str, Any] | None = None
    v: int = TRACE_VERSION

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "v": self.v,
            "kind": self.kind,
            "span": self.span,
            "parent": self.parent,
            "t": self.t,
        }
        if self.dur is not None:
            data["dur"] = self.dur
        if self.attrs:
            data["attrs"] = self.attrs
        if self.ctx is not None:
            data["ctx"] = self.ctx
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        ctx = data.get("ctx")
        return cls(
            kind=data["kind"],
            span=int(data["span"]),
            t=float(data["t"]),
            parent=(
                None if data.get("parent") is None else int(data["parent"])
            ),
            dur=(
                None if data.get("dur") is None else float(data["dur"])
            ),
            attrs=dict(data.get("attrs", {})),
            ctx=None if ctx is None else dict(ctx),
            v=int(data["v"]),
        )


class Tracer:
    """Appends schema-versioned events to a JSONL trace file.

    Span ids are assigned sequentially in emission order, so they are a
    deterministic function of the event sequence — only the ``t``/``dur``
    timestamps vary between same-seed runs.  Events nest through an
    explicit span stack: :meth:`begin` pushes, :meth:`end` pops, and
    :meth:`event` records an instantaneous event under the innermost
    open span.

    With a ``context`` every event also carries the ``ctx`` mirror:
    the file-local integer ids are translated into globally unique,
    deterministic hex ids under the context's span, so a multi-process
    assembler can join this shard into the request's causal tree.
    ``append=True`` opens the file in append mode (per-process shards
    that must survive a daemon restart, e.g. the server shard).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        context: TraceContext | None = None,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        self.context = context
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        next_span = 1
        if append:
            next_span = self._seal_existing(self.path)
        try:
            self._file = open(
                self.path, "a" if append else "w", encoding="utf-8"
            )
        except OSError as exc:
            raise TraceError(
                f"cannot open trace file {self.path}: {exc}"
            ) from exc
        self._t0 = time.perf_counter()
        self._next_span = next_span
        # (span id, kind, start time) of every open span, outermost first
        self._stack: list[tuple[int, str, float]] = []

    @staticmethod
    def _seal_existing(path: Path) -> int:
        """Prepare an existing shard for appending across restarts.

        A previous process may have died mid-write, leaving a torn
        final line; appending after it would weld two events into one
        corrupt line, so the tear is truncated away (it was never a
        complete event — the same unacked-state stance as quarantining
        an orphaned spool temp file).  Returns the next free span id,
        one past the largest already in the file, so restart never
        reuses ids within the shard.
        """
        try:
            raw = path.read_bytes()
        except OSError:
            return 1
        if raw and not raw.endswith(b"\n"):
            cut = raw.rfind(b"\n") + 1
            raw = raw[:cut]
            try:
                path.write_bytes(raw)
            except OSError as exc:
                raise TraceError(
                    f"cannot seal torn trace file {path}: {exc}"
                ) from exc
        next_span = 1
        for line in raw.decode("utf-8", "replace").splitlines():
            try:
                data = json.loads(line)
            except ValueError:
                continue
            span = data.get("span")
            if isinstance(span, int) and span >= next_span:
                next_span = span + 1
        return next_span

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _ctx_span(self, span: int) -> str:
        """The deterministic hex mirror of a file-local span id."""
        ctx = self.context
        return derive_span_id(ctx.trace_id, f"{ctx.span_id}#e{span}")

    def _write(
        self,
        kind: str,
        span: int,
        parent: int | None,
        t: float,
        dur: float | None,
        attrs: Mapping[str, Any] | None,
        ctx: Mapping[str, Any] | None = None,
    ) -> None:
        if self._file is None:
            raise TraceError(
                f"trace file {self.path} is already closed"
            )
        if kind not in EVENT_KINDS:
            raise TraceError(
                f"unknown trace event kind {kind!r}; known kinds: "
                f"{', '.join(EVENT_KINDS)}"
            )
        data: dict[str, Any] = {
            "v": TRACE_VERSION,
            "kind": kind,
            "span": span,
            "parent": parent,
            "t": round(t, 6),
        }
        if dur is not None:
            data["dur"] = round(dur, 6)
        if attrs:
            data["attrs"] = dict(attrs)
        if ctx is not None:
            data["ctx"] = dict(ctx)
        elif self.context is not None:
            data["ctx"] = {
                "trace": self.context.trace_id,
                "span": self._ctx_span(span),
                "parent": (
                    self.context.span_id
                    if parent is None
                    else self._ctx_span(parent)
                ),
            }
        try:
            self._file.write(
                json.dumps(data, sort_keys=True, default=_jsonable)
                + "\n"
            )
            self._file.flush()
        except (OSError, TypeError, ValueError) as exc:
            raise TraceError(
                f"cannot write {kind!r} event to {self.path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def event(
        self,
        kind: str,
        attrs: Mapping[str, Any] | None = None,
        dur: float | None = None,
        ctx: TraceContext | None = None,
    ) -> int:
        """Record an instantaneous event; returns its span id.

        ``ctx`` overrides the tracer-wide context for this one event —
        the server shard uses this to stamp each ``request`` event with
        that request's own trace id.
        """
        span = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        self._write(
            kind,
            span,
            parent,
            self._now(),
            dur,
            attrs,
            ctx=None if ctx is None else ctx.to_dict(),
        )
        return span

    def begin(
        self, kind: str, attrs: Mapping[str, Any] | None = None
    ) -> int:
        """Open a span: emit its ``*_start`` event and push it.

        ``kind`` is the start event's kind (``"run_start"``,
        ``"campaign_start"``); subsequent events nest under the new span
        until the matching :meth:`end`.
        """
        span = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        t = self._now()
        self._write(kind, span, parent, t, None, attrs)
        self._stack.append((span, kind, t))
        return span

    def end(
        self, kind: str, attrs: Mapping[str, Any] | None = None
    ) -> int:
        """Close the innermost span with a ``kind`` event.

        The closing event's ``parent`` is the span it closes and its
        ``dur`` the span's wall-clock extent.
        """
        if not self._stack:
            raise TraceError(
                f"cannot emit {kind!r}: no open span in {self.path}"
            )
        opened_span, _, opened_t = self._stack.pop()
        span = self._next_span
        self._next_span += 1
        t = self._now()
        self._write(kind, span, opened_span, t, t - opened_t, attrs)
        return span

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """How many spans are currently open (stack depth)."""
        return len(self._stack)

    @property
    def next_span(self) -> int:
        """The file-local id the next emitted event will receive.

        Restart-unique in append mode (see :meth:`_seal_existing`), so
        deriving an explicit-ctx span id from it — as the server shard
        does for ``request`` events — never collides across daemon
        generations.
        """
        return self._next_span

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return f"Tracer({str(self.path)!r}, {state})"


def _jsonable(value):
    """Coerce numpy scalars (and other oddballs) to plain JSON types."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(
        f"trace attr of type {type(value).__name__} is not "
        "JSON-serializable"
    )


# ----------------------------------------------------------------------
_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex_id(value: str) -> bool:
    """True for non-empty lowercase hex strings of sane length."""
    return (
        0 < len(value) <= 64
        and all(c in _HEX_DIGITS for c in value)
    )


def validate_event(
    data: Any, line: int | None = None, path: str | Path | None = None
) -> None:
    """Check one decoded trace line against the trace schema.

    Accepts any version in :data:`SUPPORTED_TRACE_VERSIONS`.  Raises
    :class:`~repro.exceptions.TraceError` naming the offending
    file/line and field on any violation.
    """

    def bad(reason: str) -> TraceError:
        where = ""
        if path is not None:
            where += str(path)
        if line is not None:
            where += f", line {line}"
        prefix = f"invalid trace event ({where}): " if where else (
            "invalid trace event: "
        )
        return TraceError(prefix + reason)

    if not isinstance(data, dict):
        raise bad(f"expected a JSON object, got {type(data).__name__}")
    version = data.get("v")
    if version not in SUPPORTED_TRACE_VERSIONS or isinstance(
        version, bool
    ):
        supported = ", ".join(str(v) for v in SUPPORTED_TRACE_VERSIONS)
        raise bad(
            f"unsupported trace version {version!r} "
            f"(this reader understands versions {supported})"
        )
    kind = data.get("kind")
    if kind not in EVENT_KINDS:
        raise bad(
            f"unknown event kind {kind!r}; known kinds: "
            f"{', '.join(EVENT_KINDS)}"
        )
    span = data.get("span")
    if not isinstance(span, int) or isinstance(span, bool) or span < 1:
        raise bad(f"span must be a positive integer, got {span!r}")
    parent = data.get("parent")
    if parent is not None and (
        not isinstance(parent, int)
        or isinstance(parent, bool)
        or parent < 1
    ):
        raise bad(
            f"parent must be null or a positive integer, got {parent!r}"
        )
    t = data.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        raise bad(f"t must be a non-negative number, got {t!r}")
    dur = data.get("dur")
    if dur is not None and (
        not isinstance(dur, (int, float))
        or isinstance(dur, bool)
        or dur < 0
    ):
        raise bad(
            f"dur must be absent or a non-negative number, got {dur!r}"
        )
    attrs = data.get("attrs")
    if attrs is not None and not isinstance(attrs, dict):
        raise bad(
            f"attrs must be a JSON object, got {type(attrs).__name__}"
        )
    ctx = data.get("ctx")
    if ctx is not None:
        if version < 2:
            raise bad("ctx requires trace version 2")
        if not isinstance(ctx, dict):
            raise bad(
                f"ctx must be a JSON object, got {type(ctx).__name__}"
            )
        for key in ("trace", "span"):
            value = ctx.get(key)
            if not isinstance(value, str) or not _is_hex_id(value):
                raise bad(
                    f"ctx.{key} must be a lowercase hex id, "
                    f"got {value!r}"
                )
        parent_ctx = ctx.get("parent")
        if parent_ctx is not None and (
            not isinstance(parent_ctx, str)
            or not _is_hex_id(parent_ctx)
        ):
            raise bad(
                "ctx.parent must be null or a lowercase hex id, "
                f"got {parent_ctx!r}"
            )


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Parse and validate a JSONL trace file.

    Mirrors the checkpoint loader's contract: missing, truncated or
    corrupt files raise :class:`~repro.exceptions.TraceError` with
    enough context (file, line number, reason) to act on.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(
            f"cannot read trace file {path}: {exc}"
        ) from exc
    events: list[TraceEvent] = []
    lines = text.split("\n")
    # a complete trace ends with a newline: the final split element is
    # empty.  Anything else means the last write was torn mid-line.
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        raise TraceError(
            f"trace file {path} is truncated: line {len(lines)} ends "
            "without a newline (the writing process likely died "
            "mid-event)"
        )
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            raise TraceError(
                f"trace file {path}, line {lineno}: blank line in "
                "event stream (file corrupt?)"
            )
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"trace file {path}, line {lineno}: not valid JSON "
                f"({exc})"
            ) from exc
        validate_event(data, line=lineno, path=path)
        events.append(TraceEvent.from_dict(data))
    if not events:
        raise TraceError(f"trace file {path} contains no events")
    return events


def read_trace_prefix(
    path: str | Path,
) -> tuple[list[TraceEvent], bool]:
    """The valid leading prefix of a possibly crash-torn trace file.

    Where :func:`read_trace` refuses a truncated file outright, this
    reader returns ``(events, truncated)``: every complete, valid event
    before the first torn or corrupt line, plus a flag saying whether
    anything had to be dropped.  This is the assembler's entry point —
    a worker killed mid-span leaves a readable prefix, and the partial
    tree (crash flagged) is exactly what the postmortem needs.

    Structural violations *within* a complete line (bad schema, unknown
    kind) still raise: corruption is only forgiven at the torn tail.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(
            f"cannot read trace file {path}: {exc}"
        ) from exc
    lines = text.split("\n")
    truncated = False
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        # final line torn mid-write: drop it, remember the wound
        lines.pop()
        truncated = True
    events: list[TraceEvent] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            raise TraceError(
                f"trace file {path}, line {lineno}: blank line in "
                "event stream (file corrupt?)"
            )
        try:
            data = json.loads(line)
        except ValueError:
            if lineno == len(lines):
                # a torn line that happened to end in "\n" content-wise
                truncated = True
                break
            raise TraceError(
                f"trace file {path}, line {lineno}: not valid JSON"
            ) from None
        validate_event(data, line=lineno, path=path)
        events.append(TraceEvent.from_dict(data))
    return events, truncated


# ----------------------------------------------------------------------
_TIMESTAMP_KEYS = ("t", "dur")
_TIMESTAMP_SUFFIXES = ("_seconds", "_per_sec")


def _strip_value(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            k: _strip_value(v)
            for k, v in value.items()
            if not any(k.endswith(s) for s in _TIMESTAMP_SUFFIXES)
        }
    if isinstance(value, list):
        return [_strip_value(v) for v in value]
    return value


def strip_timestamps(event: Mapping[str, Any]) -> dict[str, Any]:
    """A copy of the event with every wall-clock quantity removed.

    Drops the top-level ``t``/``dur`` fields and, recursively, any
    attr whose key ends in ``_seconds`` or ``_per_sec``.  What remains
    is the deterministic part of the event: two same-seed runs produce
    identical stripped sequences.
    """
    out = {
        k: _strip_value(v)
        for k, v in event.items()
        if k not in _TIMESTAMP_KEYS
    }
    return out


def canonical_events(path: str | Path) -> list[dict[str, Any]]:
    """The trace's deterministic skeleton (for cross-run comparison)."""
    return [strip_timestamps(e.to_dict()) for e in read_trace(path)]
