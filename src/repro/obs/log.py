"""Single logging configuration point for the :mod:`repro` package.

Every module obtains its logger through :func:`get_logger`, which keeps
the whole package under the ``repro`` hierarchy (``repro.core.emts``,
``repro.ea``, ``repro.mapping.ckernel``, ...), so one call to
:func:`configure_logging` controls all of them.

:func:`configure_logging` is **idempotent**: it installs exactly one
handler on the ``repro`` root logger and replaces — never duplicates —
a handler installed by a previous call.  This matters for the CLI,
which may run ``main()`` several times in one process (tests, notebook
loops): naive ``addHandler`` calls would emit every record once per
invocation.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import TextIO

from .trace import current_context

__all__ = [
    "get_logger",
    "configure_logging",
    "reset_logging",
    "JsonFormatter",
    "LOG_LEVELS",
]

#: Name of the package root logger every repro logger descends from.
ROOT_LOGGER = "repro"

#: Accepted ``--log-level`` names, in increasing severity.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Attribute stamped on handlers this module installs, so repeated
#: configuration replaces them instead of stacking duplicates.
_HANDLER_TAG = "_repro_obs_handler"


class JsonFormatter(logging.Formatter):
    """One JSON object per log record (machine-readable log stream).

    Fields: ``level``, ``logger``, ``message``, plus ``exc`` when the
    record carries exception info and ``trace_id``/``span_id`` when a
    request/run :class:`~repro.obs.trace.TraceContext` is active on the
    emitting thread — every log line a worker writes while executing a
    job joins that job's distributed trace.  Timestamps are
    deliberately kept in a separate ``ts`` field so log lines can be
    compared across runs by dropping it.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        ctx = current_context()
        if ctx is not None:
            payload["trace_id"] = ctx.trace_id
            payload["span_id"] = ctx.span_id
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``name`` may be the dotted path below the package root
    (``"core.emts"``) or an already-qualified ``repro.*`` name; both
    resolve to the same logger.
    """
    if name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def _level_value(level: int | str) -> int:
    if isinstance(level, int):
        return level
    try:
        return getattr(logging, level.upper())
    except AttributeError:
        known = ", ".join(LOG_LEVELS)
        raise ValueError(
            f"unknown log level {level!r}; known levels: {known}"
        ) from None


def configure_logging(
    level: int | str = "warning",
    json_output: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install (or replace) the package log handler; returns the root.

    Safe to call any number of times in one process: handlers this
    function previously installed are removed first, so the ``repro``
    logger always ends up with exactly one handler.  Handlers installed
    by the application itself (no :data:`_HANDLER_TAG`) are left alone.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(_level_value(level))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_output:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    # records are handled here; the lastResort/stderr default would
    # print them a second time if they kept propagating
    root.propagate = False
    return root


def reset_logging() -> None:
    """Remove every handler this module installed (tests)."""
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
            handler.close()
    root.propagate = True
    root.setLevel(logging.NOTSET)
