"""Zero-dependency metrics registry: counters, gauges, timers, histograms.

Design constraints, in order:

* **cheap** — instruments are plain attribute updates behind one
  registry lock; the hot path (fitness batches) touches them once per
  *batch*, never per genome;
* **mergeable** — :meth:`MetricsRegistry.snapshot` produces a plain
  dict that :meth:`MetricsRegistry.merge` folds back into any other
  registry.  Worker processes keep a local registry and ship
  :meth:`~MetricsRegistry.drain` output back with each finished chunk,
  so cross-process aggregation happens at chunk boundaries with no
  shared state;
* **exportable** — text, JSON, and Prometheus exposition renderings,
  all derived from the same snapshot.

Metric names are dotted (``emts.evaluations``, ``phase.fitness_batch``);
the Prometheus exporter mangles them to ``repro_emts_evaluations``-style
identifiers.
"""

from __future__ import annotations

import json
import math
import os
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Default fixed bucket upper bounds for duration histograms (seconds).
#: Decade-stepped from 100 us to 100 s; values above the last bound land
#: in the implicit +inf bucket.
DEFAULT_SECONDS_BUCKETS = (
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    100.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, data: Mapping[str, Any]) -> None:
        self.value += data["value"]

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can move both ways (last write wins on merge)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, data: Mapping[str, Any]) -> None:
        self.value = data["value"]

    def reset(self) -> None:
        self.value = 0.0


class Timer:
    """Accumulated durations: count, total, min and max seconds."""

    kind = "timer"
    __slots__ = ("name", "help", "count", "total", "min", "max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(
                f"timer {self.name!r} got a negative duration {seconds}"
            )
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def merge(self, data: Mapping[str, Any]) -> None:
        incoming = int(data["count"])
        if incoming == 0:
            return
        self.count += incoming
        self.total += data["total"]
        self.min = min(self.min, data["min"])
        self.max = max(self.max, data["max"])

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0


class Histogram:
    """Fixed-bucket histogram (cumulative on export, like Prometheus).

    ``buckets`` are the finite upper bounds; an implicit ``+inf`` bucket
    catches everything above the last bound.  Counts are stored
    per-bucket (non-cumulative) internally, which makes merging a plain
    element-wise sum.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "total", "sum")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf bucket
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Prometheus-style linear interpolation inside the bucket that
        crosses the target rank; values in the implicit ``+inf`` bucket
        clamp to the last finite bound (the estimate is then a lower
        bound).  Returns 0.0 for an empty histogram.  Used by the
        scheduling service to derive p50/p99 request latencies from the
        live histogram without storing raw samples.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            prev_cumulative = cumulative
            cumulative += self.counts[i]
            if cumulative >= rank:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                if self.counts[i] == 0:  # pragma: no cover - defensive
                    return bound
                fraction = (rank - prev_cumulative) / self.counts[i]
                return lower + (bound - lower) * fraction
        return self.buckets[-1]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    def merge(self, data: Mapping[str, Any]) -> None:
        if tuple(data["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"buckets {tuple(data['buckets'])} into {self.buckets}"
            )
        self.counts = [
            a + b for a, b in zip(self.counts, data["counts"])
        ]
        self.total += data["total"]
        self.sum += data["sum"]

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.sum = 0.0


_INSTRUMENT_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "timer": Timer,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Named instruments with thread-safe creation and merge.

    One registry lives in the driving process per observed run; worker
    processes build their own and return :meth:`drain` snapshots with
    each finished chunk, which the parent :meth:`merge`\\ s — per-worker
    local registries merged at chunk boundaries, no cross-process
    locking.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    # -- instrument factories (get-or-create) --------------------------
    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{inst.kind}, not {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get(name, Timer, help=help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(name, Histogram, buckets=buckets, help=help)

    # -- introspection -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name`` (or ``None``)."""
        return self._instruments.get(name)

    def value(self, name: str):
        """Shortcut: the scalar value of a counter/gauge."""
        return self._instruments[name].value

    # -- aggregation ---------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict state of every instrument (JSON-serializable)."""
        with self._lock:
            return {
                name: inst.to_dict()
                for name, inst in sorted(self._instruments.items())
            }

    def drain(self) -> dict[str, dict[str, Any]]:
        """:meth:`snapshot`, then reset every instrument to zero.

        Worker-side primitive: each chunk ships only the *delta* since
        the previous chunk, so the parent's :meth:`merge` never double
        counts.
        """
        with self._lock:
            snap = {
                name: inst.to_dict()
                for name, inst in sorted(self._instruments.items())
            }
            for inst in self._instruments.values():
                inst.reset()
            return snap

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` dict into this registry.

        Unknown metrics are created with the snapshot's kind, so the
        parent does not need to pre-register everything its workers
        might measure.
        """
        for name, data in snapshot.items():
            kind = data.get("kind")
            cls = _INSTRUMENT_KINDS.get(kind)
            if cls is None:
                raise ValueError(
                    f"snapshot metric {name!r} has unknown kind "
                    f"{kind!r}"
                )
            if cls is Histogram:
                inst = self._get(name, cls, buckets=data["buckets"])
            else:
                inst = self._get(name, cls)
            with self._lock:
                inst.merge(data)

    # -- exporters -----------------------------------------------------
    def render_text(self) -> str:
        """Human-readable one-metric-per-line rendering."""
        lines = []
        for name, data in self.snapshot().items():
            kind = data["kind"]
            if kind in ("counter", "gauge"):
                value = data["value"]
                shown = (
                    f"{value:g}" if isinstance(value, float) else value
                )
                lines.append(f"{name:<36} {kind:<9} {shown}")
            elif kind == "timer":
                lines.append(
                    f"{name:<36} {kind:<9} count={data['count']} "
                    f"total={data['total']:.6f}s "
                    f"min={data['min']:.6f}s max={data['max']:.6f}s"
                )
            else:  # histogram
                lines.append(
                    f"{name:<36} {kind:<9} total={data['total']} "
                    f"sum={data['sum']:.6f}"
                )
        return "\n".join(lines)

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        out: list[str] = []
        for name, data in self.snapshot().items():
            metric = _prom_name(prefix, name)
            kind = data["kind"]
            if kind == "counter":
                out.append(f"# TYPE {metric} counter")
                out.append(f"{metric} {_prom_value(data['value'])}")
            elif kind == "gauge":
                out.append(f"# TYPE {metric} gauge")
                out.append(f"{metric} {_prom_value(data['value'])}")
            elif kind == "timer":
                # timers are always in seconds; don't double the unit
                # suffix when the metric name already carries it
                if not metric.endswith("_seconds"):
                    metric += "_seconds"
                out.append(f"# TYPE {metric} summary")
                out.append(f"{metric}_count {data['count']}")
                out.append(
                    f"{metric}_sum {_prom_value(data['total'])}"
                )
            else:  # histogram
                out.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for bound, count in zip(
                    data["buckets"], data["counts"]
                ):
                    cumulative += count
                    out.append(
                        f'{metric}_bucket{{le="{_prom_value(bound)}"}} '
                        f"{cumulative}"
                    )
                out.append(
                    f'{metric}_bucket{{le="+Inf"}} {data["total"]}'
                )
                out.append(f"{metric}_count {data['total']}")
                out.append(f"{metric}_sum {_prom_value(data['sum'])}")
        return "\n".join(out) + ("\n" if out else "")

    def to_json(self) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def dump(self, path: str | Path) -> Path:
        """Write the registry to ``path`` atomically.

        ``.prom`` paths get the Prometheus exposition; anything else
        gets the JSON snapshot.
        """
        path = Path(path)
        if path.suffix == ".prom":
            text = self.render_prometheus()
        else:
            text = self.to_json() + "\n"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self)} metrics)"


def _prom_name(prefix: str, name: str) -> str:
    mangled = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}_{mangled}"


def _prom_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)
