"""Instrumentation glue between the observability layer and the engine.

Two pieces live here:

* :class:`ObservedEvaluator` — the duck-typed evaluator wrapper
  (``evaluate`` / ``stats`` / ``genome_key`` / ``close``, same contract
  as :class:`~repro.verify.VerifyingEvaluator`) that records one
  ``evaluation`` trace event and one batch-duration histogram sample
  per fitness batch.  It is only ever constructed when tracing or
  metrics are enabled, so the disabled path carries no wrapper at all.
* :func:`run_metrics` / :func:`run_snapshot` — the canonical
  metrics-registry projection of one finished EMTS run.  This is the
  single source of truth for eval-stat summaries: the experiment
  harness (:mod:`repro.experiments.harness`) and the runtime tables
  (:mod:`repro.experiments.runtime`) both consume it, so their
  "interrupted"/evaluations/cache columns can never drift apart again.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Any, Sequence

from .metrics import MetricsRegistry
from .profiler import NULL_PROFILER
from .trace import Tracer

__all__ = ["ObservedEvaluator", "run_metrics", "run_snapshot"]


class ObservedEvaluator:
    """Record per-batch trace events and metrics around any evaluator.

    Sits outermost in the evaluator stack (outside verification and
    memoization), so the recorded batch durations include the whole
    stack's cost — which is what the run's phase breakdown attributes
    to fitness evaluation.
    """

    def __init__(
        self,
        inner,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler=NULL_PROFILER,
    ) -> None:
        self.inner = inner
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        #: Profiler phase batch durations are charged to.  EMTS swaps
        #: this to ``"seed_fitness"`` around the seed-baseline batch so
        #: the phase breakdown separates seeding cost from the EA loop.
        self.phase = "fitness_batch"

    # -- evaluator interface -------------------------------------------
    @property
    def stats(self):
        """The wrapped evaluator's counters."""
        return self.inner.stats

    def genome_key(self, genome) -> bytes:
        """Delegate cache-key computation down the wrapped stack."""
        obj = self.inner
        while obj is not None:
            key_fn = getattr(obj, "genome_key", None)
            if key_fn is not None:
                return key_fn(genome)
            obj = getattr(obj, "inner", None)
        raise AttributeError(
            "no evaluator in the wrapped stack exposes genome_key"
        )

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "ObservedEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __call__(self, genome) -> float:
        return self.evaluate([genome])[0]

    @contextmanager
    def phase_as(self, name: str):
        """Charge batches inside the block to phase ``name``."""
        previous, self.phase = self.phase, name
        try:
            yield self
        finally:
            self.phase = previous

    # ------------------------------------------------------------------
    def _record(
        self,
        values: list[float],
        abort_above: float | None,
        dt: float,
    ) -> None:
        self.profiler.add(self.phase, dt)
        rejected = sum(1 for v in values if math.isinf(v))
        if self.tracer is not None:
            self.tracer.event(
                "evaluation",
                attrs={
                    "genomes": len(values),
                    "bounded": abort_above is not None,
                    "rejected": rejected,
                },
                dur=dt,
            )
        if self.metrics is not None:
            self.metrics.counter("evaluation.batches").inc()
            self.metrics.counter("evaluation.genomes").inc(
                len(values)
            )
            if rejected:
                self.metrics.counter("evaluation.rejected").inc(
                    rejected
                )
            self.metrics.histogram(
                "evaluation.batch_seconds"
            ).observe(dt)

    def evaluate(
        self,
        genomes: Sequence,
        abort_above: float | None = None,
    ) -> list[float]:
        genomes = list(genomes)
        t0 = time.perf_counter()
        values = self.inner.evaluate(genomes, abort_above=abort_above)
        self._record(values, abort_above, time.perf_counter() - t0)
        return values

    def evaluate_batch(
        self,
        genome_block,
        abort_above: float | None = None,
    ) -> list[float]:
        """Block-path analogue of :meth:`evaluate`, same telemetry."""
        t0 = time.perf_counter()
        values = self.inner.evaluate_batch(
            genome_block, abort_above=abort_above
        )
        self._record(values, abort_above, time.perf_counter() - t0)
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObservedEvaluator({self.inner!r})"


# ----------------------------------------------------------------------
def run_metrics(
    result, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Project one finished EMTS run onto the metrics registry.

    ``result`` is an :class:`~repro.core.emts.EMTSResult` (duck-typed:
    anything with ``evaluation_stats``, ``log``, ``elapsed_seconds``,
    ``makespan`` and ``interrupted`` works).  Fills ``registry`` (a new
    one when ``None``) with the canonical ``emts.*`` metrics and
    returns it.
    """
    reg = registry if registry is not None else MetricsRegistry()
    stats = result.evaluation_stats
    if stats is not None:
        reg.counter(
            "emts.evaluations", help="genomes submitted for evaluation"
        ).inc(stats.evaluations)
        reg.counter(
            "emts.mapper_calls", help="list-scheduler runs executed"
        ).inc(stats.mapper_calls)
        reg.counter("emts.cache_hits").inc(stats.cache_hits)
        reg.counter("emts.cache_misses").inc(stats.cache_misses)
        reg.counter("emts.cache_evictions").inc(stats.evictions)
        reg.counter(
            "emts.retries", help="chunks re-dispatched after failure"
        ).inc(stats.retries)
        reg.counter("emts.pool_rebuilds").inc(stats.pool_rebuilds)
        reg.counter("emts.eval_batches").inc(stats.batches)
        reg.timer("emts.eval_seconds").observe(stats.wall_seconds)
        reg.gauge(
            "emts.cache_hit_rate",
            help="memoization hits / submitted genomes",
        ).set(
            stats.cache_hits / stats.evaluations
            if stats.evaluations
            else 0.0
        )
    reg.counter(
        "emts.generations", help="completed evolutionary steps"
    ).inc(max(0, result.log.generations - 1))
    reg.timer("emts.run_seconds").observe(result.elapsed_seconds)
    reg.gauge("emts.makespan").set(float(result.makespan))
    reg.gauge("emts.interrupted").set(
        1.0 if result.interrupted else 0.0
    )
    return reg


def run_snapshot(result) -> dict[str, Any]:
    """Flat canonical eval-stat summary of one EMTS run.

    Derived from the :func:`run_metrics` registry snapshot, so every
    consumer (harness records, runtime tables, CLI summaries) reads the
    same field names and the same values.
    """
    snap = run_metrics(result).snapshot()

    def value(name: str, default=0):
        data = snap.get(name)
        return data["value"] if data is not None else default

    def timer_total(name: str) -> float:
        data = snap.get(name)
        return float(data["total"]) if data is not None else 0.0

    evaluations = int(value("emts.evaluations"))
    cache_hits = int(value("emts.cache_hits"))
    return {
        "evaluations": evaluations,
        "mapper_calls": int(value("emts.mapper_calls")),
        "cache_hits": cache_hits,
        "cache_misses": int(value("emts.cache_misses")),
        "cache_evictions": int(value("emts.cache_evictions")),
        "hit_rate": (
            cache_hits / evaluations if evaluations else 0.0
        ),
        "retries": int(value("emts.retries")),
        "pool_rebuilds": int(value("emts.pool_rebuilds")),
        "eval_seconds": timer_total("emts.eval_seconds"),
        "elapsed_seconds": timer_total("emts.run_seconds"),
        "generations": int(value("emts.generations")),
        "makespan": float(value("emts.makespan", math.nan)),
        "interrupted": bool(value("emts.interrupted")),
    }
