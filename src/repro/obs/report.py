"""Human-readable summaries of trace files (``repro-emts report-trace``).

Renders, per run span found in the trace: the problem and engine
configuration, throughput (evaluations/sec, generations/sec), cache
effectiveness, the per-phase wall-time breakdown with the kernel's
share of wall time, and an ASCII convergence curve.  Campaign spans get
a per-trial digest.

All functions raise :class:`~repro.exceptions.TraceError` with file and
line context for truncated or corrupt traces (the parsing itself lives
in :func:`repro.obs.trace.read_trace`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..exceptions import TraceError
from .trace import TraceEvent, read_trace

__all__ = ["summarize_runs", "render_trace_report"]

#: Phases counted as kernel time in the "kernel share" figure: the
#: fitness batches (which run the compiled C loop or its numpy
#: fallback) plus the seed-baseline evaluations.
_KERNEL_PHASES = ("fitness_batch", "seed_fitness")


def summarize_runs(events: list[TraceEvent]) -> list[dict[str, Any]]:
    """One summary dict per ``run_start``..``run_end`` span.

    Tolerates a missing ``run_end`` (an interrupted writer): the
    summary is then flagged ``"incomplete": True`` and derived from the
    events seen so far.
    """
    runs: list[dict[str, Any]] = []
    open_runs: dict[int, dict[str, Any]] = {}
    seen_spans: set[int] = set()
    for event in events:
        seen_spans.add(event.span)
        if event.kind == "run_start":
            open_runs[event.span] = {
                "start": event,
                "generations": [],
                "evaluations": [],
                "checkpoints": 0,
                "verify": None,
                "seed": None,
                "end": None,
            }
        elif event.kind == "run_end":
            run = open_runs.pop(event.parent, None)
            if run is None:
                raise TraceError(
                    f"run_end event (span {event.span}) closes span "
                    f"{event.parent}, but no matching run_start is "
                    "open — trace out of order or corrupt"
                )
            run["end"] = event
            runs.append(run)
        elif event.kind in (
            "generation",
            "evaluation",
            "checkpoint",
            "verify",
            "seed",
        ):
            run = open_runs.get(event.parent)
            if run is None:
                # mixed traces are normal — campaigns nest these under
                # trial events, service shards under service_run spans,
                # and the worker's acceptance verify lands after
                # run_end — but a parent *nobody emitted* is not a
                # mixture, it is broken nesting, and report-trace must
                # exit non-zero rather than shrug it off
                if (
                    event.parent is None
                    or event.parent not in seen_spans
                ):
                    raise TraceError(
                        f"{event.kind} event (span {event.span}) "
                        f"parents to span {event.parent!r}, which no "
                        "event in this trace emitted — span nesting "
                        "is structurally broken"
                    )
                continue
            if event.kind == "generation":
                run["generations"].append(event)
            elif event.kind == "evaluation":
                run["evaluations"].append(event)
            elif event.kind == "checkpoint":
                run["checkpoints"] += 1
            elif event.kind == "verify":
                run["verify"] = event
            elif event.kind == "seed":
                run["seed"] = event
    for run in open_runs.values():  # writer died mid-run
        run["incomplete"] = True
        runs.append(run)
    return [_digest(run) for run in runs]


def _digest(run: dict[str, Any]) -> dict[str, Any]:
    start: TraceEvent = run["start"]
    end: TraceEvent | None = run["end"]
    attrs = start.attrs
    end_attrs = end.attrs if end is not None else {}
    eval_stats = end_attrs.get("eval_stats", {})
    phases: dict[str, float] = dict(
        end_attrs.get("phase_seconds", {})
    )
    dur = end.dur if end is not None and end.dur is not None else None
    generations = end_attrs.get(
        "generations", max(0, len(run["generations"]) - 1)
    )
    evaluations = eval_stats.get(
        "evaluations",
        sum(e.attrs.get("genomes", 0) for e in run["evaluations"]),
    )
    cache_hits = eval_stats.get("cache_hits", 0)
    kernel_seconds = sum(phases.get(p, 0.0) for p in _KERNEL_PHASES)
    curve = [
        (e.attrs.get("generation", i), e.attrs.get("best"))
        for i, e in enumerate(run["generations"])
        if e.attrs.get("best") is not None
    ]
    return {
        "algorithm": attrs.get("algorithm", "?"),
        "problem": attrs.get("problem", {}),
        "engine": attrs.get("engine", end_attrs.get("engine", "?")),
        "workers": attrs.get("workers", 0),
        "resumed": attrs.get("resumed", False),
        "incomplete": bool(run.get("incomplete", False)),
        "interrupted": bool(end_attrs.get("interrupted", False)),
        "makespan": end_attrs.get("makespan"),
        "seed_makespans": (
            run["seed"].attrs.get("makespans", {})
            if run["seed"] is not None
            else {}
        ),
        "generations": int(generations),
        "evaluations": int(evaluations),
        "cache_hits": int(cache_hits),
        "hit_rate": (
            cache_hits / evaluations if evaluations else 0.0
        ),
        "batches": len(run["evaluations"]),
        "checkpoints": run["checkpoints"],
        "verified": (
            run["verify"].attrs.get("verified", 0)
            if run["verify"] is not None
            else 0
        ),
        "run_seconds": dur,
        "evals_per_sec": (evaluations / dur) if dur else None,
        "generations_per_sec": (
            (generations / dur) if dur and generations else None
        ),
        "phase_seconds": phases,
        "kernel_seconds": kernel_seconds,
        "kernel_share": (kernel_seconds / dur) if dur else None,
        "convergence": curve,
    }


# ----------------------------------------------------------------------
def _fmt_opt(value, fmt: str = "{:.6g}", missing: str = "-") -> str:
    return missing if value is None else fmt.format(value)


def _render_run(summary: dict[str, Any], index: int, total: int) -> str:
    lines: list[str] = []
    if total > 1:
        lines.append(f"=== run {index + 1} of {total} ===")
    problem = summary["problem"]
    where = (
        f"{problem.get('ptg_name', '?')} "
        f"({problem.get('num_tasks', '?')} tasks) on "
        f"{problem.get('cluster_name', '?')} "
        f"({problem.get('num_processors', '?')} processors)"
        if problem
        else "unknown problem"
    )
    flags = []
    if summary["resumed"]:
        flags.append("resumed")
    if summary["interrupted"]:
        flags.append("interrupted")
    if summary["incomplete"]:
        flags.append("trace incomplete (no run_end)")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    lines.append(f"run       : {summary['algorithm']} — {where}{suffix}")
    lines.append(
        f"engine    : {summary['engine']} kernel, "
        f"workers={summary['workers']}"
    )
    lines.append(
        f"result    : makespan "
        f"{_fmt_opt(summary['makespan'])} s after "
        f"{summary['generations']} generations"
    )
    if summary["seed_makespans"]:
        best_seed = min(summary["seed_makespans"].values())
        lines.append(
            f"seeds     : best heuristic {best_seed:.6g} s "
            f"({', '.join(sorted(summary['seed_makespans']))})"
        )
    lines.append(
        f"throughput: {summary['evaluations']} evaluations in "
        f"{_fmt_opt(summary['run_seconds'], '{:.3f}')} s — "
        f"{_fmt_opt(summary['evals_per_sec'], '{:.1f}')} evals/s, "
        f"{_fmt_opt(summary['generations_per_sec'], '{:.2f}')} "
        "generations/s"
    )
    lines.append(
        f"cache     : {summary['cache_hits']}/"
        f"{summary['evaluations']} hits "
        f"({summary['hit_rate']:.1%} hit rate)"
    )
    extras = []
    if summary["checkpoints"]:
        extras.append(f"{summary['checkpoints']} checkpoints")
    if summary["verified"]:
        extras.append(
            f"{summary['verified']} evaluations differentially "
            "verified"
        )
    if extras:
        lines.append(f"robustness: {', '.join(extras)}")
    phases = summary["phase_seconds"]
    if phases:
        lines.append("phases    :")
        dur = summary["run_seconds"]
        width = max(len(name) for name in phases)
        for name, seconds in sorted(
            phases.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = f"{seconds / dur:>6.1%}" if dur else "     -"
            lines.append(
                f"  {name:<{width}}  {seconds:>9.4f} s  {share}"
            )
        lines.append(
            f"kernel share of wall time: "
            f"{_fmt_opt(summary['kernel_share'], '{:.1%}')} "
            f"({' + '.join(_KERNEL_PHASES)})"
        )
    curve = summary["convergence"]
    if curve:
        lines.append("convergence (best makespan per generation):")
        worst = max(v for _, v in curve)
        for gen, best in curve:
            bar = "#" * max(1, round(40 * best / worst)) if worst else ""
            lines.append(f"  gen {gen:>3}  {best:>12.6g}  {bar}")
    return "\n".join(lines)


def _render_campaign(events: list[TraceEvent]) -> str:
    trials = [e for e in events if e.kind == "campaign_trial"]
    if not trials:
        return ""
    by_status: dict[str, int] = {}
    for t in trials:
        status = t.attrs.get("status", "?")
        by_status[status] = by_status.get(status, 0) + 1
    parts = ", ".join(
        f"{count} {status}" for status, count in sorted(by_status.items())
    )
    lines = [f"campaign  : {len(trials)} trials ({parts})"]
    end = next(
        (e for e in events if e.kind == "campaign_end"), None
    )
    if end is not None and end.dur is not None:
        lines.append(f"            total {end.dur:.3f} s")
    return "\n".join(lines)


def _render_online(events: list[TraceEvent]) -> str:
    """Digest of ``online_start``..``online_end`` reactive executions.

    Online runtimes (:func:`repro.online.execute_online`) emit flat
    events rather than spans; runs are paired up in file order, and a
    start without a matching end is reported as incomplete.
    """
    starts = [e for e in events if e.kind == "online_start"]
    if not starts:
        return ""
    lines: list[str] = []
    run_no = 0
    current: TraceEvent | None = None
    faults: dict[str, int] = {}
    replans = 0
    for event in events:
        if event.kind == "online_start":
            current = event
            faults = {}
            replans = 0
            run_no += 1
        elif current is None:
            continue
        elif event.kind == "fault":
            name = event.attrs.get("event", "?")
            faults[name] = faults.get(name, 0) + 1
        elif event.kind == "reschedule":
            if event.attrs.get("event") == "reschedule-applied":
                replans += 1
        elif event.kind == "online_end":
            a, z = current.attrs, event.attrs
            deadline = a.get("deadline")
            bound = (
                f", deadline {deadline:.6g} s"
                if deadline is not None
                else ""
            )
            lines.append(
                f"online    : {a.get('tasks', '?')} tasks on "
                f"{a.get('processors', '?')} processors — planned "
                f"{_fmt_opt(a.get('planned_makespan'))} s{bound}"
            )
            if faults:
                detail = ", ".join(
                    f"{n} {k}" for k, n in sorted(faults.items())
                )
                lines.append(
                    f"  faults  : {z.get('faults_injected', 0)} "
                    f"injected ({detail}), "
                    f"{z.get('retries', 0)} retries"
                )
            lines.append(
                f"  replans : {replans} applied, budget used "
                f"{z.get('budget_used', 0)} evaluations"
            )
            verified = " (verified)" if z.get("verified") else ""
            lines.append(
                f"  outcome : {z.get('outcome', '?')} — makespan "
                f"{_fmt_opt(z.get('makespan'))} s{verified}"
            )
            current = None
    if current is not None:  # writer died mid-run
        lines.append(
            f"online    : run {run_no} incomplete (no online_end)"
        )
    return "\n".join(lines)


def render_trace_report(path: str | Path) -> str:
    """The full ``report-trace`` text for one trace file."""
    path = Path(path)
    events = read_trace(path)
    summaries = summarize_runs(events)
    campaign = _render_campaign(events)
    online = _render_online(events)
    if not summaries and not campaign and not online:
        raise TraceError(
            f"trace file {path} contains no run, campaign or online "
            f"spans ({len(events)} events of other kinds)"
        )
    blocks = [f"trace     : {path} ({len(events)} events)"]
    if campaign:
        blocks.append(campaign)
    if online:
        blocks.append(online)
    for i, summary in enumerate(summaries):
        blocks.append(_render_run(summary, i, len(summaries)))
    return "\n".join(blocks)
