"""repro.obs — unified observability: tracing, metrics, profiling, logs.

A zero-dependency observability layer threaded through every layer of
the scheduler:

* :mod:`repro.obs.metrics` — counters, gauges, timers and fixed-bucket
  histograms in a :class:`MetricsRegistry` with text/JSON/Prometheus
  exporters; process-safe through per-worker registries whose
  :meth:`~MetricsRegistry.drain` snapshots merge at chunk boundaries.
* :mod:`repro.obs.trace` — a schema-versioned JSONL event stream
  (:class:`TraceEvent`) of run/generation/evaluation/checkpoint/verify
  and campaign-trial spans; same-seed traces are bit-identical after
  :func:`strip_timestamps`.
* :mod:`repro.obs.profiler` — per-phase wall-time accumulation for the
  hot path, off by default via :data:`NULL_PROFILER`.
* :mod:`repro.obs.log` — the package's single logging configuration
  point (hierarchical ``repro.*`` loggers, optional JSON formatter,
  idempotent handler installation).
* :mod:`repro.obs.report` — the ``repro-emts report-trace`` renderer.
* :mod:`repro.obs.assemble` — joins the serving stack's per-process
  trace shards into causal per-request span trees
  (``report-trace --service``).
* :mod:`repro.obs.slo` — declarative SLO specs evaluated continuously
  from the metrics registry with multi-window burn-rate alerting.
* :mod:`repro.obs.flight` — a bounded crash flight recorder ring,
  dumped atomically beside quarantined spool records and on armed
  crash-point exits.

Instrumentation is **off by default** and adds <2 % overhead when
disabled (gated by ``benchmarks/check_perf.py``); enable it per run via
``EMTS.schedule(trace=..., metrics=...)`` or the ``--trace`` /
``--metrics-out`` CLI flags.
"""

from .assemble import (
    SpanNode,
    TraceTree,
    assemble_traces,
    canonical_tree,
    render_service_report,
)
from .flight import (
    FlightRecorder,
    arm_crash_dump,
    flight_recorder,
    read_flight_dump,
    reset_flight_recorder,
)
from .instrument import ObservedEvaluator, run_metrics, run_snapshot
from .log import (
    JsonFormatter,
    LOG_LEVELS,
    configure_logging,
    get_logger,
    reset_logging,
)
from .metrics import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .profiler import NULL_PROFILER, NullProfiler, PhaseProfiler
from .report import render_trace_report, summarize_runs
from .slo import (
    SLOEngine,
    SLOSpec,
    default_service_slos,
    evaluate_bench,
)
from .trace import (
    EVENT_KINDS,
    SUPPORTED_TRACE_VERSIONS,
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceContext,
    TraceEvent,
    Tracer,
    canonical_events,
    current_context,
    derive_span_id,
    derive_trace_id,
    read_trace,
    read_trace_prefix,
    strip_timestamps,
    use_context,
    validate_event,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    # trace
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "SUPPORTED_TRACE_VERSIONS",
    "EVENT_KINDS",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "current_context",
    "derive_span_id",
    "derive_trace_id",
    "read_trace",
    "read_trace_prefix",
    "use_context",
    "validate_event",
    "strip_timestamps",
    "canonical_events",
    # assembly
    "SpanNode",
    "TraceTree",
    "assemble_traces",
    "canonical_tree",
    "render_service_report",
    # slo
    "SLOSpec",
    "SLOEngine",
    "default_service_slos",
    "evaluate_bench",
    # flight recorder
    "FlightRecorder",
    "flight_recorder",
    "arm_crash_dump",
    "read_flight_dump",
    "reset_flight_recorder",
    # profiling
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    # logging
    "get_logger",
    "configure_logging",
    "reset_logging",
    "JsonFormatter",
    "LOG_LEVELS",
    # instrumentation + reporting
    "ObservedEvaluator",
    "run_metrics",
    "run_snapshot",
    "render_trace_report",
    "summarize_runs",
]
