"""repro.obs — unified observability: tracing, metrics, profiling, logs.

A zero-dependency observability layer threaded through every layer of
the scheduler:

* :mod:`repro.obs.metrics` — counters, gauges, timers and fixed-bucket
  histograms in a :class:`MetricsRegistry` with text/JSON/Prometheus
  exporters; process-safe through per-worker registries whose
  :meth:`~MetricsRegistry.drain` snapshots merge at chunk boundaries.
* :mod:`repro.obs.trace` — a schema-versioned JSONL event stream
  (:class:`TraceEvent`) of run/generation/evaluation/checkpoint/verify
  and campaign-trial spans; same-seed traces are bit-identical after
  :func:`strip_timestamps`.
* :mod:`repro.obs.profiler` — per-phase wall-time accumulation for the
  hot path, off by default via :data:`NULL_PROFILER`.
* :mod:`repro.obs.log` — the package's single logging configuration
  point (hierarchical ``repro.*`` loggers, optional JSON formatter,
  idempotent handler installation).
* :mod:`repro.obs.report` — the ``repro-emts report-trace`` renderer.

Instrumentation is **off by default** and adds <2 % overhead when
disabled (gated by ``benchmarks/check_perf.py``); enable it per run via
``EMTS.schedule(trace=..., metrics=...)`` or the ``--trace`` /
``--metrics-out`` CLI flags.
"""

from .instrument import ObservedEvaluator, run_metrics, run_snapshot
from .log import (
    JsonFormatter,
    LOG_LEVELS,
    configure_logging,
    get_logger,
    reset_logging,
)
from .metrics import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .profiler import NULL_PROFILER, NullProfiler, PhaseProfiler
from .report import render_trace_report, summarize_runs
from .trace import (
    EVENT_KINDS,
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceEvent,
    Tracer,
    canonical_events,
    read_trace,
    strip_timestamps,
    validate_event,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    # trace
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "read_trace",
    "validate_event",
    "strip_timestamps",
    "canonical_events",
    # profiling
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    # logging
    "get_logger",
    "configure_logging",
    "reset_logging",
    "JsonFormatter",
    "LOG_LEVELS",
    # instrumentation + reporting
    "ObservedEvaluator",
    "run_metrics",
    "run_snapshot",
    "render_trace_report",
    "summarize_runs",
]
