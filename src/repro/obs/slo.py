"""Declarative SLOs evaluated live from the metrics registry.

An :class:`SLOSpec` states an objective over metrics the serving stack
already records — "99.9 % of submissions succeed", "99 % of requests
finish within 5 s" — and the :class:`SLOEngine` turns a stream of
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts into
compliance, error-budget burn, and multi-window burn-rate alerts.

Two spec kinds cover everything the stack needs:

``ratio``
    good events / (good + bad events), each side summing one or more
    counters.  No traffic means no verdict, which scores as compliant
    (an idle service has burned no budget).
``latency``
    the fraction of histogram samples at or below ``threshold``
    seconds, interpolated inside the crossing bucket exactly like
    :meth:`~repro.obs.metrics.Histogram.quantile`.  An objective of
    0.99 with threshold 5.0 is the declarative form of "p99 <= 5 s".

Burn rate is the SRE-workbook quantity: (1 - compliance) / (1 -
objective) over a trailing window — 1.0 means the error budget is
being spent exactly at the sustainable rate, N means N× too fast.  The
engine keeps a bounded deque of timestamped samples and evaluates each
spec over *both* a fast and a slow window; the alert fires only when
both burn above the spec's threshold, which is what keeps one bad
second from paging while still catching sustained burn quickly.

The default specs mirror the budgets already pinned in
``benchmarks/check_perf.py`` so the live service alerts on exactly the
regressions CI would reject.  :func:`evaluate_bench` closes that loop
from the other side: it re-states a committed ``BENCH_*.json`` in SLO
terms so the perf-smoke job runs one evaluator over both worlds.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "SLOSpec",
    "SLOEngine",
    "DEFAULT_WINDOWS",
    "default_service_slos",
    "evaluate_bench",
    "latency_compliance",
]

#: (fast, slow) trailing windows in seconds.  The page-worthy pair from
#: the multiwindow burn-rate recipe, scaled to a daemon whose whole
#: life is usually minutes: 1 minute catches a cliff, 10 minutes
#: confirms it is not a blip.
DEFAULT_WINDOWS = (60.0, 600.0)


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over already-recorded metrics."""

    name: str
    description: str
    objective: float          # target fraction of good events, e.g. 0.999
    kind: str = "ratio"       # "ratio" | "latency"
    good: tuple[str, ...] = ()    # ratio: counters of good events
    bad: tuple[str, ...] = ()     # ratio: counters of bad events
    histogram: str = ""           # latency: histogram metric name
    threshold: float = 0.0        # latency: "good" means <= this (s)
    #: both windows must burn at or above this rate to alert.  14.4 =
    #: "a 99.9 % budget gone in ~2 h" — the classic fast-burn page.
    burn_alert: float = 14.4

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"slo {self.name!r}: objective must lie in (0, 1), "
                f"got {self.objective}"
            )
        if self.kind not in ("ratio", "latency"):
            raise ValueError(
                f"slo {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.kind == "ratio" and not self.good:
            raise ValueError(
                f"slo {self.name!r}: ratio specs need >= 1 good counter"
            )
        if self.kind == "latency" and not self.histogram:
            raise ValueError(
                f"slo {self.name!r}: latency specs need a histogram"
            )

    # -- sampling ------------------------------------------------------
    def sample(
        self, snapshot: Mapping[str, Mapping[str, Any]]
    ) -> tuple[float, float]:
        """Extract ``(good, total)`` cumulative event counts."""
        if self.kind == "ratio":
            good = _counter_sum(snapshot, self.good)
            bad = _counter_sum(snapshot, self.bad)
            return good, good + bad
        hist = snapshot.get(self.histogram)
        if hist is None or hist.get("kind") != "histogram":
            return 0.0, 0.0
        total = float(hist.get("total", 0))
        return latency_compliance(hist, self.threshold) * total, total

    def compliance(self, good: float, total: float) -> float:
        return good / total if total > 0 else 1.0


def _counter_sum(
    snapshot: Mapping[str, Mapping[str, Any]],
    names: tuple[str, ...],
) -> float:
    out = 0.0
    for name in names:
        data = snapshot.get(name)
        if data is not None and data.get("kind") in (
            "counter",
            "gauge",
        ):
            out += float(data.get("value", 0))
    return out


def latency_compliance(
    hist: Mapping[str, Any], threshold: float
) -> float:
    """Fraction of histogram samples at or below ``threshold`` seconds.

    Linear interpolation inside the bucket containing the threshold —
    the same estimator the service's p50/p99 figures use, so "p99
    <= 5 s" and "99 % within 5 s" agree with each other.
    """
    total = float(hist.get("total", 0))
    if total <= 0:
        return 1.0
    buckets = list(hist.get("buckets", ()))
    counts = list(hist.get("counts", ()))
    below = 0.0
    lower = 0.0
    for bound, count in zip(buckets, counts):
        if threshold >= bound:
            below += count
        else:
            if threshold > lower:
                below += count * (threshold - lower) / (bound - lower)
            break
        lower = bound
    else:
        # threshold beyond the last finite bound: +inf samples are
        # conservatively counted as violations
        pass
    return min(1.0, below / total)


# ----------------------------------------------------------------------
@dataclass
class _Sample:
    t: float
    # spec name -> (good, total) cumulative counts at time t
    values: dict[str, tuple[float, float]] = field(
        default_factory=dict
    )


class SLOEngine:
    """Continuous SLO evaluation with multi-window burn-rate alerting.

    Feed it :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts
    via :meth:`observe` (the daemon does this from a background
    sampler); read :meth:`report` any time.  History is bounded: only
    what the slowest window needs is retained.
    """

    def __init__(
        self,
        specs: tuple[SLOSpec, ...] | list[SLOSpec],
        windows: tuple[float, float] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slo names in {names}")
        self.specs = tuple(specs)
        self.windows = tuple(sorted(windows))
        self._clock = clock
        self._samples: deque[_Sample] = deque()

    # ------------------------------------------------------------------
    def observe(
        self,
        snapshot: Mapping[str, Mapping[str, Any]],
        now: float | None = None,
    ) -> None:
        """Record one cumulative metrics snapshot."""
        t = self._clock() if now is None else now
        sample = _Sample(t=t)
        for spec in self.specs:
            sample.values[spec.name] = spec.sample(snapshot)
        self._samples.append(sample)
        horizon = t - self.windows[-1] - 1.0
        while (
            len(self._samples) > 2 and self._samples[1].t < horizon
        ):
            self._samples.popleft()

    def _window_delta(
        self, spec: SLOSpec, window: float, now: float
    ) -> tuple[float, float]:
        """(good, total) accrued over the trailing ``window`` seconds."""
        if not self._samples:
            return 0.0, 0.0
        newest = self._samples[-1]
        base = None
        for sample in self._samples:
            if sample.t >= now - window:
                break
            base = sample
        if base is None:
            base = self._samples[0]
        g0, t0 = base.values.get(spec.name, (0.0, 0.0))
        g1, t1 = newest.values.get(spec.name, (0.0, 0.0))
        # counters only move forward; a negative delta means the
        # registry was reset (drain) — start the window over
        if t1 < t0 or g1 < g0:
            return g1, t1
        return g1 - g0, t1 - t0

    def report(self, now: float | None = None) -> list[dict[str, Any]]:
        """One status dict per spec (compliance, burn, alert)."""
        t = self._clock() if now is None else now
        out: list[dict[str, Any]] = []
        for spec in self.specs:
            if self._samples:
                good, total = self._samples[-1].values.get(
                    spec.name, (0.0, 0.0)
                )
            else:
                good, total = 0.0, 0.0
            compliance = spec.compliance(good, total)
            budget = 1.0 - spec.objective
            burn_rates: dict[str, float] = {}
            alerting = True
            for window in self.windows:
                wg, wt = self._window_delta(spec, window, t)
                w_compliance = spec.compliance(wg, wt)
                burn = (1.0 - w_compliance) / budget
                burn_rates[f"{int(window)}s"] = burn
                if burn < spec.burn_alert:
                    alerting = False
            out.append(
                {
                    "name": spec.name,
                    "description": spec.description,
                    "kind": spec.kind,
                    "objective": spec.objective,
                    "compliance": compliance,
                    "events": total,
                    "budget_remaining": (
                        max(0.0, 1.0 - (1.0 - compliance) / budget)
                    ),
                    "burn_rates": burn_rates,
                    "burn_alert_threshold": spec.burn_alert,
                    "alerting": alerting,
                    "ok": compliance >= spec.objective,
                }
            )
        return out

    def alerts(self, now: float | None = None) -> list[str]:
        """Names of specs currently burning past their alert threshold."""
        return [
            row["name"] for row in self.report(now) if row["alerting"]
        ]


# ----------------------------------------------------------------------
def default_service_slos() -> tuple[SLOSpec, ...]:
    """The daemon's built-in objectives.

    Thresholds mirror the pinned budgets in
    ``benchmarks/check_perf.py`` (`--service`, `--online`,
    `--recovery`): the live alerts and the CI gates disagree about
    nothing.
    """
    return (
        SLOSpec(
            name="availability",
            description=(
                "submissions that end done (not failed/rejected)"
            ),
            objective=0.999,
            kind="ratio",
            good=("service.jobs.completed",),
            bad=("service.jobs.failed", "service.jobs.rejected"),
        ),
        SLOSpec(
            name="submit-latency",
            description="requests finishing within 5 s (p99 budget)",
            objective=0.99,
            kind="latency",
            histogram="service.request_seconds",
            threshold=5.0,
        ),
        SLOSpec(
            name="online-reaction",
            description=(
                "online reschedule reactions within 500 ms "
                "(p99 budget)"
            ),
            objective=0.99,
            kind="latency",
            histogram="online.reaction.seconds",
            threshold=0.5,
        ),
        SLOSpec(
            name="recovery",
            description=(
                "completions not preceded by a requeue or a "
                "quarantined spool record (recovery budget)"
            ),
            objective=0.99,
            kind="ratio",
            good=("service.jobs.completed",),
            bad=(
                "service.jobs.requeued",
                "service.spool.quarantined",
            ),
        ),
    )


# ----------------------------------------------------------------------
#: BENCH_*.json field -> SLO-style row, per bench kind.  Each entry is
#: (row name, value key, budget key in the file's own "budgets"
#: section); values are milliseconds and must stay at or below budget.
_BENCH_LATENCY_ROWS = {
    "service": (
        ("service-p99", "p99_ms", "p99_ms"),
        ("service-warm-p99", "loaded_warm_p99_ms", "warm_p99_ms"),
    ),
    "online": (
        ("online-reaction-p50", "reaction_p50_ms", "reaction_p50_ms"),
        ("online-reaction-p99", "reaction_p99_ms", "reaction_p99_ms"),
    ),
    "recovery": (
        ("recovery-restart-p99", "restart_p99_ms", "restart_p99_ms"),
    ),
}

#: BENCH fields that must be exactly zero (correctness budgets).
_BENCH_ZERO_ROWS = {
    "recovery": (
        ("recovery-jobs-lost", "jobs_lost"),
        ("recovery-jobs-duplicated", "jobs_duplicated"),
    ),
    "online": (("online-unverified-runs", "unverified_runs"),),
}


def _bench_kind(doc: Mapping[str, Any], path: str) -> str | None:
    lowered = str(path).lower()
    for kind in ("service", "online", "recovery"):
        if kind in lowered:
            return kind
    if "restart_p99_ms" in doc:
        return "recovery"
    if "reaction_p99_ms" in doc:
        return "online"
    if "warm_p99_ms" in doc.get("budgets", {}):
        return "service"
    return None


def evaluate_bench(
    doc: Mapping[str, Any], path: str = ""
) -> list[dict[str, Any]]:
    """Re-state one committed bench baseline as SLO verdict rows.

    Returns ``[]`` for bench kinds with no SLO mapping (obs, batch).
    Each row: ``{"name", "value", "budget", "ok"}`` — ``ok`` false
    means the committed baseline itself violates its pinned budget,
    which the perf-smoke job treats as a failure.
    """
    kind = _bench_kind(doc, path)
    if kind is None:
        return []
    budgets = doc.get("budgets", {})
    rows: list[dict[str, Any]] = []
    for name, value_key, budget_key in _BENCH_LATENCY_ROWS.get(
        kind, ()
    ):
        value = doc.get(value_key)
        budget = budgets.get(budget_key)
        if value is None or budget is None:
            continue
        rows.append(
            {
                "name": name,
                "value": float(value),
                "budget": float(budget),
                "ok": float(value) <= float(budget),
            }
        )
    for name, value_key in _BENCH_ZERO_ROWS.get(kind, ()):
        value = doc.get(value_key)
        if value is None:
            continue
        rows.append(
            {
                "name": name,
                "value": float(value),
                "budget": 0.0,
                "ok": float(value) == 0.0,
            }
        )
    return rows
